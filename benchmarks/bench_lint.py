"""Analyzer overhead — what ``repro lint`` costs on top of a checked run.

The path-qualified analyzer reuses the pipeline's qualified results, so its
marginal cost should be the lint passes themselves, not a second pipeline.
This bench runs the ``gen-1k`` preset (the largest generated corpus the CI
gate lints) through a fully checked pipeline with and without the analyzer,
asserts the analyzer adds at most 15% wall-clock, and writes
``BENCH_lint.json`` so ``bench_diff`` can track the overhead mechanically.
"""

import time

from repro.checks.runner import PipelineChecker
from repro.evaluation import format_table
from repro.evaluation.harness import WorkloadRun
from repro.workloads.matrix import resolve_target

from conftest import once

TARGET = "gen-1k"
CA = 0.97
CR = 0.95
#: The analyzer may add at most this fraction of wall-clock on top of a
#: plain checked run (compile, profiled runs, qualification, invariant
#: checkers).  The lint passes reuse the run's qualified results, so the
#: marginal cost is bounded by the data-flow solves the passes add.
MAX_LINT_OVERHEAD = 0.15


def _best_of(n, fn):
    """Best wall-clock of ``n`` runs (discards scheduler noise)."""
    best = None
    result = None
    for _ in range(n):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def compute_bench_lint():
    """Checked gen-1k pipeline vs. the same pipeline plus ``run.lint``."""
    workload = resolve_target(TARGET)

    def checked():
        run = WorkloadRun(workload, checker=PipelineChecker())
        run.qualified(CA, CR)
        return 0

    def linted():
        run = WorkloadRun(workload, checker=PipelineChecker())
        run.qualified(CA, CR)
        return len(run.lint(CA, CR, min_mass=0.0))

    checked_seconds, _ = _best_of(2, checked)
    lint_seconds, findings = _best_of(2, linted)
    return {
        "target": TARGET,
        "checked_seconds": checked_seconds,
        "lint_seconds": lint_seconds,
        "findings": findings,
        "overhead": lint_seconds / checked_seconds,
    }


def test_bench_lint(benchmark, record, record_json):
    data = once(benchmark, compute_bench_lint)
    record(
        "BENCH_lint",
        format_table(
            ["target", "checked ms", "lint ms", "findings", "overhead"],
            [
                [
                    data["target"],
                    f"{data['checked_seconds'] * 1000:.1f}",
                    f"{data['lint_seconds'] * 1000:.1f}",
                    data["findings"],
                    f"{data['overhead']:.3f}x",
                ]
            ],
            title="Analyzer overhead over a checked pipeline (best of 2)",
        ),
    )
    record_json("BENCH_lint", data)
    assert data["overhead"] <= 1 + MAX_LINT_OVERHEAD, (
        f"checked+lint takes {data['lint_seconds'] * 1000:.1f} ms vs "
        f"{data['checked_seconds'] * 1000:.1f} ms checked-only on {TARGET} "
        f"— the analyzer costs more than {MAX_LINT_OVERHEAD:.0%}"
    )
