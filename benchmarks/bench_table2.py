"""Table 2 — effect of path-qualified constant propagation on running time.

Paper columns: Base (seconds after Wegman–Zadek folding), Optimized (after
path-qualified folding at CA = 0.97, CR = 0.95), Speedup.  Our stand-in for
seconds is the interpreter's deterministic cycle cost; both builds get the
same DCE and profile-guided layout, so the comparison isolates what
qualification adds.

Paper shape: effects are small (within roughly ±10%) and need not correlate
perfectly with the number of constants found — duplication itself has a cost
(extra non-fall-through jumps), which our cost model charges explicitly.
"""

from repro.evaluation import format_table
from repro.workloads import WORKLOAD_NAMES

from conftest import once


def compute_table2(runs):
    return [runs[name].table2(0.97) for name in WORKLOAD_NAMES]


def test_table2(benchmark, runs, record):
    table = once(benchmark, compute_table2, runs)
    rows = [
        [row.name, row.base_cost, row.optimized_cost, f"{row.speedup:.3f}x"]
        for row in table
    ]
    record(
        "table2",
        format_table(
            ["Program", "Base (cycles)", "Optimized (cycles)", "Speedup"],
            rows,
            title="Table 2: running cost after constant propagation (ref input)",
        ),
    )
    for row in table:
        # Behaviour equality is asserted inside table2(); here we check the
        # magnitudes stay in the paper's "small effect" regime.
        assert 0.7 < row.speedup < 2.0, row
