"""Dataflow engines on *organic* suite targets: the 1k-vertex gate.

``bench_dataflow.py`` reaches paper scale by tiling li95 — structurally
honest, but every tile repeats the same blocks.  This bench instead runs
the engines over the workload matrix's organic targets: the generated
``gen-1k`` preset (16 functions, ~1300 CFG vertices, fact universes that
grow with the code like real programs) and the hand-written ``sieve``.
Cases cover both graph regimes the pipeline actually solves over: the raw
per-function CFGs and the hot-path graphs the qualified analysis builds at
the default coverage.

The ``gen-1k`` CFG and HPG cases gate a speedup floor and a memory ceiling;
``sieve`` (13 blocks — below the kernel's ``AUTO_MIN_VERTICES`` crossover)
is reported for honesty but not gated.  Ratios land in
``BENCH_suite.json`` for :mod:`bench_diff` to track across commits.
"""

import time
import tracemalloc

from repro.core.qualified import run_qualified
from repro.dataflow.framework import solve
from repro.dataflow.graph_view import GraphView
from repro.dataflow.problems import (
    AvailableExpressions,
    CopyPropagation,
    LiveVariables,
    ReachingDefinitions,
    VeryBusyExpressions,
)
from repro.evaluation import format_table
from repro.frontend import compile_program
from repro.interp import Interpreter
from repro.profiles.path_profile import PathProfile
from repro.workloads.matrix import resolve_target

from conftest import once

ENGINES = ("generic", "compiled")
#: Gated floor for the organic 1k-vertex generated target (CFG and HPG).
#: Lower than the tiled-graph floor in bench_dataflow: organic graphs pay
#: for wide, per-vertex-distinct fact sets at the decode boundary.
MIN_GEN1K_SPEEDUP = 1.15
#: Tracemalloc peak ceilings for the kernel, per gated case.  On the raw
#: CFGs the kernel's bitsets undercut the generic frozensets outright; on
#: the much larger hot-path graphs the decoded per-vertex solutions carry
#: a real premium (measured ~1.4x), bounded here.
MAX_MEM_RATIO = {"gen_1k_cfg": 1.25, "gen_1k_hpg": 1.6}

PROBLEMS = (
    ("reaching_defs", lambda v: ReachingDefinitions(v.params, v.cfg.entry)),
    ("liveness", lambda v: LiveVariables()),
    ("available_exprs", lambda v: AvailableExpressions()),
    ("very_busy", lambda v: VeryBusyExpressions()),
    ("copy_prop", lambda v: CopyPropagation()),
)


def _best_of(n, fn):
    best = None
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best


def _solve_all(views, engine):
    for view in views:
        for _, make in PROBLEMS:
            solve(make(view), view, engine=engine)


def _measure_case(views, repeats=3):
    case = {
        "vertices": sum(len(list(v.cfg.vertices)) for v in views),
        "solves": len(views) * len(PROBLEMS),
    }
    for engine in ENGINES:
        seconds = _best_of(repeats, lambda: _solve_all(views, engine))
        tracemalloc.start()
        _solve_all(views, engine)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        case[engine] = {
            "seconds": seconds,
            "peak_kb": round(peak / 1024.0, 1),
        }
    case["speedup"] = case["generic"]["seconds"] / case["compiled"]["seconds"]
    case["mem_ratio"] = case["compiled"]["peak_kb"] / case["generic"]["peak_kb"]
    return case


def _target_views(name):
    """(cfg views, hpg views) of one suite target at default coverage."""
    wl = resolve_target(name)
    module = compile_program(wl.source)
    profiles = Interpreter(
        module, profile_mode="bl", track_sites=False
    ).run(wl.train_args, wl.train_inputs).profiles
    cfg_views, hpg_views = [], []
    for fname, fn in module.functions.items():
        cfg_views.append(GraphView.from_function(fn))
        qa = run_qualified(fn, profiles.get(fname, PathProfile()), 0.97, 0.95)
        if qa.hpg is not None:
            hpg_views.append(qa.hpg.view())
    return cfg_views, hpg_views


def compute_bench_suite():
    gen_cfg, gen_hpg = _target_views("gen-1k")
    sieve_cfg, sieve_hpg = _target_views("sieve")
    return {
        "gen_1k_cfg": _measure_case(gen_cfg),
        "gen_1k_hpg": _measure_case(gen_hpg),
        "sieve_cfg": _measure_case(sieve_cfg + sieve_hpg),
    }


def test_bench_suite(benchmark, record, record_json):
    cases = once(benchmark, compute_bench_suite)
    assert cases["gen_1k_cfg"]["vertices"] >= 1000, (
        "gen-1k no longer reaches the 1k-vertex organic regime"
    )
    rows = []
    for case, data in cases.items():
        for engine in ENGINES:
            m = data[engine]
            rows.append(
                [
                    case,
                    engine,
                    data["vertices"],
                    f"{m['seconds'] * 1000:.1f}",
                    f"{m['peak_kb']:.0f}",
                    f"{data['speedup']:.2f}x" if engine == "compiled" else "",
                ]
            )
    record(
        "BENCH_suite",
        format_table(
            ["case", "engine", "vertices", "best ms", "peak KiB", "speedup"],
            rows,
            title=(
                "Dataflow engines on organic suite targets: 5 separable "
                "problems per view (best of 3)"
            ),
        ),
    )
    record_json("BENCH_suite", cases)
    for gated in ("gen_1k_cfg", "gen_1k_hpg"):
        data = cases[gated]
        assert data["speedup"] >= MIN_GEN1K_SPEEDUP, (
            f"compiled dataflow kernel is only {data['speedup']:.2f}x the "
            f"generic solver on {gated} (need >= {MIN_GEN1K_SPEEDUP}x)"
        )
        assert data["mem_ratio"] <= MAX_MEM_RATIO[gated], (
            f"compiled kernel peaks at {data['mem_ratio']:.2f}x the generic "
            f"solver's memory on {gated} (allowed <= {MAX_MEM_RATIO[gated]}x)"
        )
