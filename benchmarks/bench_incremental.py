"""Incremental re-analysis speedup — what a one-function edit costs warm.

The per-function cache keys of :mod:`repro.pipeline.cached_run` exist so
an edit to one function re-analyzes *only* that function.  This bench
measures the payoff on the ``gen-1k`` preset (the largest generated corpus
the CI gate lints): a full cold analysis vs. re-analyzing after the
deterministic seeded one-function edit against a warm cache.  The
acceptance gate is a >= 5x warm speedup; ``BENCH_incremental.json`` feeds
``bench_diff`` so the number is tracked mechanically.
"""

import time

from repro.evaluation import format_table
from repro.pipeline import ArtifactCache, edited_workload, make_run
from repro.workloads.matrix import resolve_target

from conftest import once

TARGET = "gen-1k"
CA = 0.97
CR = 0.95
MIN_MASS = 0.5
#: Re-analyzing after a one-function edit must beat a cold full analysis
#: by at least this factor (the ISSUE's acceptance criterion).
MIN_WARM_SPEEDUP = 5.0


def _analyze(workload, cache):
    """Full pipeline (compile, profile, qualify, lint) of one version."""
    run = make_run(workload, cache)
    run.qualified(CA, CR)
    run.lint(CA, CR, MIN_MASS)
    return run


def compute_bench_incremental():
    base = resolve_target(TARGET)
    edited = edited_workload(base)
    cache = ArtifactCache(None)

    t0 = time.perf_counter()
    _analyze(base, cache)
    cold_seconds = time.perf_counter() - t0

    # The edit-to-report path: everything except the edited function's
    # qualified pipeline and lint is served from the warm cache (the
    # edited module still recompiles and re-profiles, as an editor would).
    t0 = time.perf_counter()
    run = _analyze(edited, cache)
    warm_seconds = time.perf_counter() - t0

    fn_count = len(run.module.functions)
    stats = cache.stats
    return {
        "target": TARGET,
        "functions": fn_count,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "warm_qualified_misses": stats.misses.get("qualified", 0) - fn_count,
        "warm_qualified_hits": stats.hits.get("qualified", 0),
    }


def test_bench_incremental(benchmark, record, record_json):
    data = once(benchmark, compute_bench_incremental)
    record(
        "BENCH_incremental",
        format_table(
            ["target", "functions", "cold ms", "warm edit ms", "speedup"],
            [
                [
                    data["target"],
                    data["functions"],
                    f"{data['cold_seconds'] * 1000:.1f}",
                    f"{data['warm_seconds'] * 1000:.1f}",
                    f"{data['warm_speedup']:.1f}x",
                ]
            ],
            title="One-function edit vs. cold full analysis",
        ),
    )
    record_json("BENCH_incremental", data)
    # The warm run must have recomputed exactly the edited function.
    assert data["warm_qualified_misses"] == 1, (
        f"expected 1 recomputed function, got {data['warm_qualified_misses']}"
    )
    assert data["warm_qualified_hits"] == data["functions"] - 1
    assert data["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"one-function edit on {data['target']} re-analyzes in "
        f"{data['warm_seconds'] * 1000:.1f} ms vs {data['cold_seconds'] * 1000:.1f} ms cold "
        f"— {data['warm_speedup']:.1f}x, below the {MIN_WARM_SPEEDUP:.0f}x gate"
    )
