"""Figure 7 — cumulative distribution of dynamic non-local constant
executions by basic block.

The paper's point: constants are heavily concentrated — 11 vertices cover
virtually all non-local constants in compress, while go needs ~10,000.
Reduction exists precisely because most traced duplicates contribute
nothing.

We list, per workload, how many traced vertices carry any non-local
constants and how few of them cover 50% / 90% / 99% of the dynamic total.
Shape: the 90% column is a small handful everywhere except the go-like
outlier, which needs the most vertices.
"""

from repro.evaluation import format_table
from repro.stats import constant_distribution, cumulative_coverage
from repro.workloads import WORKLOAD_NAMES

from conftest import once


def vertices_for(coverage: list[float], goal: float) -> int:
    for i, c in enumerate(coverage):
        if c >= goal:
            return i + 1
    return len(coverage)


def compute_fig7(runs):
    rows = []
    for name in WORKLOAD_NAMES:
        run = runs[name]
        weights: dict = {}
        for fn_name, qa in run.qualified(1.0).items():
            if qa.reduction is None:
                continue
            for vertex, w in qa.reduction.weights.items():
                weights[(fn_name, vertex)] = w
        dist = constant_distribution(weights)
        cov = cumulative_coverage(dist)
        rows.append(
            [
                name,
                len(dist),
                vertices_for(cov, 0.5),
                vertices_for(cov, 0.9),
                vertices_for(cov, 0.99),
            ]
        )
    return rows


def test_fig7(benchmark, runs, record):
    rows = once(benchmark, compute_fig7, runs)
    record(
        "fig7",
        format_table(
            [
                "Program",
                "vertices w/ constants",
                "50% coverage",
                "90% coverage",
                "99% coverage",
            ],
            rows,
            title=(
                "Figure 7: concentration of dynamic non-local constant "
                "executions by traced vertex (CA = 1)"
            ),
        ),
    )
    by_name = {r[0]: r for r in rows}
    for name in WORKLOAD_NAMES:
        total, c50, c90, c99 = by_name[name][1:]
        assert 1 <= c50 <= c90 <= c99 <= total
    # go needs the most vertices, mirroring the paper's outlier.
    assert by_name["go95"][3] == max(r[3] for r in rows)
