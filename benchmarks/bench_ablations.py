"""Ablations of the design choices DESIGN.md calls out.

Not a paper table — these quantify what each ingredient of the system buys:

* **reduction** — optimize straight from the hot-path graph instead of the
  reduced graph: same constants, bigger code (the paper's §5 motivation);
* **DCE / straightening / layout** — the cleanup passes that turn discovered
  constants into actual cycles;
* **trivial vs. general failure function** — Theorem 2's engineering payoff:
  the qualification automaton stores only trie edges, while the general
  Aho–Corasick automaton also builds failure links.
"""

import time

from repro.automaton import DOT, AhoCorasick, QualificationAutomaton
from repro.evaluation import format_table
from repro.interp import Interpreter
from repro.opt import (
    eliminate_dead_code,
    layout_function,
    materialize,
    straighten,
)

from conftest import once

ABLATION_WORKLOADS = ("m88ksim95", "vortex95", "li95")


def _build(run, *, reduce=True, dce=True, straight=True, lay=True):
    """The optimized module with selected passes disabled."""
    out = run._fresh_module()
    for name, fn in run.module.functions.items():
        qa = run.qualified(0.97)[name]
        if qa.traced:
            graph = qa.reduced if reduce else qa.hpg
            analysis = qa.reduced_analysis if reduce else qa.hpg_analysis
            optimized = materialize(graph, analysis, fold=True)
        else:
            from repro.opt import fold_function

            optimized = fold_function(fn, qa.baseline)
        if dce:
            eliminate_dead_code(optimized)
        if straight:
            straighten(optimized)
        if lay:
            freqs = {
                (u, v): c
                for (u, v), c in run.train_profile(name)
                .edge_frequencies()
                .items()
                if u in optimized.blocks and v in optimized.blocks
            }
            layout_function(optimized, freqs)
        out.add_function(optimized)
    return out


def _cost(run, module):
    result = Interpreter(module, profile_mode=None, track_sites=False).run(
        run.workload.ref_args, run.workload.ref_inputs
    )
    assert result.output == run.ref.output, "ablation changed behaviour"
    return result.cost, sum(len(f.blocks) for f in module.functions.values())


def compute_pass_ablation(runs):
    rows = []
    for name in ABLATION_WORKLOADS:
        run = runs[name]
        full_cost, full_blocks = _cost(run, _build(run))
        for label, kwargs in (
            ("no reduction", {"reduce": False}),
            ("no DCE", {"dce": False}),
            ("no straighten", {"straight": False}),
            ("no layout", {"lay": False}),
        ):
            cost, blocks = _cost(run, _build(run, **kwargs))
            rows.append(
                [
                    name,
                    label,
                    blocks,
                    full_blocks,
                    f"{cost / full_cost:+.1%}".replace("+100.0%", "+0.0%"),
                    f"{(cost - full_cost) / full_cost:+.1%}",
                ]
            )
    return rows


def test_pass_ablations(benchmark, runs, record):
    rows = once(benchmark, compute_pass_ablation, runs)
    record(
        "ablation_passes",
        format_table(
            [
                "Program",
                "ablation",
                "blocks",
                "blocks (full)",
                "cost delta",
            ],
            [r[:4] + [r[5]] for r in rows],
            title=(
                "Ablations at CA = 0.97: each row disables one pass of the "
                "full pipeline (cost delta > 0 means the pass was saving "
                "cycles)"
            ),
        ),
    )
    by_key = {(r[0], r[1]): r for r in rows}
    for name in ABLATION_WORKLOADS:
        # DCE is the pass that actually converts discovered constants into
        # cycles: disabling it always costs.
        assert float(by_key[(name, "no DCE")][5].rstrip("%")) > 0.0
        # Straightening is what keeps the duplicated code compact: without
        # it the block count is strictly larger.
        assert by_key[(name, "no straighten")][2] > by_key[(name, "no straighten")][3]
    # Note: "no reduction" can come out slightly *cheaper* — folding on the
    # unreduced hot-path graph retains maximal per-duplicate precision, and
    # our cost model charges almost nothing for code size.  Reduction's
    # payoff is graph size (Figure 11), not cycles; the table records both.


def compute_failure_function_ablation(runs):
    rows = []
    for name in ABLATION_WORKLOADS:
        run = runs[name]
        for fn_name in run.module.functions:
            qa = run.qualified(0.97)[fn_name]
            if not qa.traced:
                continue
            hot = qa.hot_paths
            recording = qa.recording

            t0 = time.perf_counter()
            trivial = QualificationAutomaton(recording, hot)
            trivial_time = time.perf_counter() - t0

            keywords = [[DOT]] + [
                [DOT, *QualificationAutomaton.trim(p)] for p in hot
            ]
            alphabet = [DOT] + list(qa.cfg.edges)
            t0 = time.perf_counter()
            general = AhoCorasick(keywords, alphabet)
            general_time = time.perf_counter() - t0

            stored_failure_links = sum(
                1 for s in range(general.num_states) if s != general.root
            )
            rows.append(
                [
                    f"{name}:{fn_name}",
                    trivial.num_states,
                    general.num_states,
                    stored_failure_links,
                    f"{trivial_time * 1e6:.0f}us",
                    f"{general_time * 1e6:.0f}us",
                ]
            )
    return rows


def test_failure_function_ablation(benchmark, runs, record):
    rows = once(benchmark, compute_failure_function_ablation, runs)
    record(
        "ablation_failure_function",
        format_table(
            [
                "routine",
                "states (trivial)",
                "states (general)",
                "failure links avoided",
                "build (trivial)",
                "build (general)",
            ],
            rows,
            title=(
                "Theorem 2 ablation: the trivial failure function stores no "
                "failure links; the general Aho-Corasick automaton has the "
                "same states but builds one link per non-root state"
            ),
        ),
    )
    for row in rows:
        assert row[1] == row[2], "Theorem 2: identical state sets"
        assert row[3] == row[1] - 1


def compute_tracing_vs_tupling(runs):
    """Wall-clock and problem-size comparison of the two qualification
    methods of §4.3 on every traced routine."""
    rows = []
    for name in ABLATION_WORKLOADS:
        run = runs[name]
        for fn_name in run.module.functions:
            qa = run.qualified(0.97)[fn_name]
            if not qa.traced:
                continue
            from repro.core.tupling import tupled_analyze
            from repro.core.tracing import trace
            from repro.dataflow.wegman_zadek import analyze

            t0 = time.perf_counter()
            hpg = trace(qa.function, qa.cfg, qa.recording, qa.automaton)
            traced_solution = analyze(hpg.view())
            tracing_time = time.perf_counter() - t0

            t0 = time.perf_counter()
            tupled = tupled_analyze(
                qa.function, qa.cfg, qa.recording, qa.automaton
            )
            tupling_time = time.perf_counter() - t0

            pairs = sum(len(envs) for envs in tupled.in_values.values())
            rows.append(
                [
                    f"{name}:{fn_name}",
                    hpg.cfg.num_vertices,
                    pairs,
                    f"{tracing_time * 1e3:.2f}ms",
                    f"{tupling_time * 1e3:.2f}ms",
                ]
            )
    return rows


def test_tracing_vs_tupling(benchmark, runs, record):
    rows = once(benchmark, compute_tracing_vs_tupling, runs)
    record(
        "ablation_tupling",
        format_table(
            [
                "routine",
                "traced vertices",
                "tupled (v,q) pairs",
                "trace+solve",
                "tupling",
            ],
            rows,
            title=(
                "Tracing vs context tupling (Holley-Rosen's two methods, "
                "paper section 4.3): same solutions, comparable cost - the "
                "paper: 'Holley and Rosen did not find context tupling to be "
                "any more efficient than data-flow tracing'"
            ),
        ),
    )
    for row in rows:
        # Tupling visits only executable pairs, tracing all reachable ones.
        assert row[2] <= row[1]


def compute_train_input_sensitivity(runs):
    """How much benefit survives training on a different input?

    The paper's methodology trains on `train` and evaluates on `ref`.  This
    ablation compares that against the oracle that trains on `ref` itself:
    the closer the ratio to 1, the more stable the hot paths are across
    inputs (the paper's premise that hot paths generalize).
    """
    from repro.core import run_qualified
    from repro.stats import classify_constants

    rows = []
    for name in ABLATION_WORKLOADS:
        run = runs[name]
        normal = run.aggregate_classification(0.97).qualified_nonlocal
        oracle_total = 0
        for fn_name, fn in run.module.functions.items():
            qa = run_qualified(fn, run.ref_profile(fn_name), ca=0.97)
            c = classify_constants(qa, run.ref_profile(fn_name), run.ref.site_stats)
            oracle_total += c.qualified_nonlocal
        retention = normal / oracle_total if oracle_total else 1.0
        rows.append([name, normal, oracle_total, f"{retention:.1%}"])
    return rows


def test_train_input_sensitivity(benchmark, runs, record):
    rows = once(benchmark, compute_train_input_sensitivity, runs)
    record(
        "ablation_train_input",
        format_table(
            [
                "Program",
                "qualified constants (train-profile)",
                "qualified constants (ref-profile oracle)",
                "retention",
            ],
            rows,
            title=(
                "Training-input sensitivity at CA = 0.97: benefit on the ref "
                "input when the analysis was driven by the train profile vs "
                "by the ref profile itself"
            ),
        ),
    )
    for row in rows:
        # Hot paths generalize across inputs: most of the oracle benefit
        # survives training on the other data set.
        retention = float(row[3].rstrip("%")) / 100
        assert retention >= 0.7, row
