"""Mechanical bench-regression triage: current results vs committed baselines.

The perf-trajectory benches (``bench_interp.py``, ``bench_dataflow.py``)
write machine-readable ratios under ``benchmarks/results/``.  Raw wall
times are machine-bound, but the *ratios* — engine speedups, memory
ratios, overhead factors — compare the same code on the same machine in
the same process, so they transfer: a real regression moves them on any
host.  This script diffs the current JSON against the copy committed at a
baseline ref (``git show <ref>:benchmarks/results/<name>.json``) and exits
non-zero when any tracked ratio regresses by more than the threshold.

Only statistically meaningful ratios are tracked: the tiled (paper-scale)
dataflow cases, the li95 interpreter speedup, and the overhead factors.
The small-graph dataflow cases are reported in the bench table for honesty
but swing too much run-to-run to gate on.

Usage::

    python benchmarks/bench_diff.py [--results-dir DIR] [--baseline-ref REF]
                                    [--threshold FRACTION]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Per-file extractors: JSON payload -> {metric name: (value, direction)}
#: where direction is "higher" (bigger is better) or "lower".


def _interp_metrics(data):
    out = {}
    for case, rows in data.items():
        for row in rows:
            if row.get("engine") == "compiled" and "speedup" in row:
                out[f"{case}.speedup"] = (row["speedup"], "higher")
    return out


def _dataflow_metrics(data):
    out = {}
    for case, d in data.items():
        if "_x" not in case:  # untiled cases are too small to gate on
            continue
        out[f"{case}.speedup"] = (d["speedup"], "higher")
        out[f"{case}.mem_ratio"] = (d["mem_ratio"], "lower")
    return out


def _suite_metrics(data):
    """Organic suite targets (bench_suite.py): gate the gen-1k cases; the
    sieve case is below the kernel crossover and reported only."""
    out = {}
    for case, d in data.items():
        if not case.startswith("gen_1k"):
            continue
        out[f"{case}.speedup"] = (d["speedup"], "higher")
        out[f"{case}.mem_ratio"] = (d["mem_ratio"], "lower")
    return out


def _wz_metrics(data):
    """WZ engine cases (bench_wz.py): gate the organic gen-1k and the tiled
    paper-scale li95 cases; sieve is below the crossover and reported only."""
    out = {}
    for case, d in data.items():
        if not (case.startswith("gen_1k") or "_x" in case):
            continue
        out[f"{case}.speedup"] = (d["speedup"], "higher")
        out[f"{case}.mem_ratio"] = (d["mem_ratio"], "lower")
    return out


def _obs_metrics(data):
    return {"disabled_over_enabled": (data["disabled_over_enabled"], "higher")}


def _check_metrics(data):
    return {"enabled_over_disabled": (data["enabled_over_disabled"], "lower")}


def _lint_metrics(data):
    """Analyzer overhead (bench_lint.py): checked+lint over checked-only
    wall-clock on gen-1k; raw seconds are reported in the table only."""
    return {"overhead": (data["overhead"], "lower")}


def _incremental_metrics(data):
    """Incremental re-analysis (bench_incremental.py): cold-over-warm
    wall-clock ratio for a one-function edit on gen-1k; raw seconds are
    reported in the table only."""
    return {"warm_speedup": (data["warm_speedup"], "higher")}


def _serve_metrics(data):
    """Service daemon (bench_serve.py): the warm-cache amortization factor
    and the concurrent-over-serial throughput ratio are host-transferable;
    raw millisecond latencies are reported in the table only."""
    return {
        "warm_speedup": (data["warm_speedup"], "higher"),
        "concurrency_ratio": (data["concurrency_ratio"], "higher"),
    }


TRACKED = {
    "BENCH_interp": _interp_metrics,
    "BENCH_dataflow": _dataflow_metrics,
    "BENCH_suite": _suite_metrics,
    "BENCH_wz": _wz_metrics,
    "BENCH_obs_overhead": _obs_metrics,
    "BENCH_check_overhead": _check_metrics,
    "BENCH_serve": _serve_metrics,
    "BENCH_lint": _lint_metrics,
    "BENCH_incremental": _incremental_metrics,
}


def _baseline_json(ref: str, name: str):
    """The committed results file at ``ref``, or None if absent there."""
    rel = f"benchmarks/results/{name}.json"
    proc = subprocess.run(
        ["git", "show", f"{ref}:{rel}"],
        capture_output=True,
        text=True,
        cwd=pathlib.Path(__file__).parent.parent,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def diff_results(results_dir: pathlib.Path, ref: str, threshold: float):
    """(report rows, regression count) for every tracked results file."""
    rows = []
    regressions = 0
    for name, extract in TRACKED.items():
        current_path = results_dir / f"{name}.json"
        if not current_path.exists():
            rows.append((name, "-", "", "", "", "missing (bench not run)"))
            continue
        baseline_data = _baseline_json(ref, name)
        current = extract(json.loads(current_path.read_text()))
        baseline = extract(baseline_data) if baseline_data is not None else {}
        for metric, (value, direction) in sorted(current.items()):
            if metric not in baseline:
                rows.append((name, metric, "-", f"{value:.3f}", "", "new"))
                continue
            base = baseline[metric][0]
            delta = (value - base) / base if base else 0.0
            if direction == "higher":
                regressed = value < base * (1.0 - threshold)
            else:
                regressed = value > base * (1.0 + threshold)
            status = "REGRESSION" if regressed else "ok"
            regressions += regressed
            rows.append(
                (
                    name,
                    metric,
                    f"{base:.3f}",
                    f"{value:.3f}",
                    f"{delta:+.1%}",
                    status,
                )
            )
    return rows, regressions


def render(rows) -> str:
    headers = ("file", "metric", "baseline", "current", "delta", "status")
    table = [headers] + [tuple(str(c) for c in row) for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=pathlib.Path,
        default=RESULTS_DIR,
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref whose committed results are the baseline",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed fractional regression before failing (default 0.10)",
    )
    args = parser.parse_args(argv)
    rows, regressions = diff_results(
        args.results_dir, args.baseline_ref, args.threshold
    )
    print(
        f"bench diff vs {args.baseline_ref} "
        f"(threshold {args.threshold:.0%}):\n"
    )
    print(render(rows))
    if regressions:
        print(f"\n{regressions} regression(s) beyond {args.threshold:.0%}")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
