"""Interpreter engine throughput — the perf trajectory of the hot path.

Every figure and table above replays the workloads through the interpreter,
so its instructions-per-second is the number that bounds the whole harness.
This bench runs the ``li95`` ref input and the running example through both
execution engines, reports throughput, asserts the block-compiled fast path
is at least 3x the tree-walking reference on ``li95``, and writes
``BENCH_interp.json`` so future PRs can track the trajectory mechanically.
"""

import time

from repro.evaluation import format_table
from repro.frontend import compile_program
from repro.interp import Interpreter
from repro.obs import capture
from repro.workloads import (
    get_workload,
    running_example_module,
    training_run_inputs,
)

from conftest import once

ENGINES = ("reference", "compiled")
MIN_LI95_SPEEDUP = 3.0
#: The disabled-observability default (what every test and benchmark runs
#: under) may cost at most this fraction of throughput relative to a run
#: with full tracing+metrics enabled.  Disabled instrumentation being *no
#: faster* than enabled bounds its overhead from above: the per-run span
#: and counter work is the only difference between the two configurations.
MAX_OBS_OFF_REGRESSION = 0.05
#: Same bar for the checker layer: a pipeline built without ``--check``
#: (the NULL_CHECKER default) may lose at most this fraction of throughput
#: relative to one running every invariant checker, i.e. the disabled hooks
#: themselves must be free.
MAX_CHECK_OFF_REGRESSION = 0.05


def _best_of(n, fn):
    """Best wall-clock of ``n`` runs (discards scheduler noise)."""
    best = None
    result = None
    for _ in range(n):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _measure(module, args, inputs, engine):
    interp = Interpreter(
        module, profile_mode="bl", track_sites=True, engine=engine
    )
    seconds, result = _best_of(3, lambda: interp.run(args, inputs))
    return {
        "engine": engine,
        "seconds": seconds,
        "instructions": result.instr_count,
        "instructions_per_second": result.instr_count / seconds,
        "compile_seconds": interp.engine_compile_time,
    }


def compute_bench_interp():
    cases = {}
    li95 = get_workload("li95")
    li95_module = compile_program(li95.source)
    cases["li95"] = [
        _measure(li95_module, li95.ref_args, li95.ref_inputs, engine)
        for engine in ENGINES
    ]
    n, inputs = training_run_inputs()
    cases["running_example"] = [
        _measure(running_example_module(), [n], inputs, engine)
        for engine in ENGINES
    ]
    for rows in cases.values():
        by_engine = {r["engine"]: r for r in rows}
        speedup = (
            by_engine["compiled"]["instructions_per_second"]
            / by_engine["reference"]["instructions_per_second"]
        )
        for r in rows:
            r["speedup_vs_reference"] = (
                r["instructions_per_second"]
                / by_engine["reference"]["instructions_per_second"]
            )
        by_engine["compiled"]["speedup"] = speedup
    return cases


def compute_bench_obs_overhead():
    """Compiled-engine li95 throughput with observability disabled (the
    process default) vs. enabled (a full tracer + registry installed)."""
    li95 = get_workload("li95")
    module = compile_program(li95.source)

    def measure():
        return _measure(module, li95.ref_args, li95.ref_inputs, "compiled")

    disabled = measure()
    with capture():
        enabled = measure()
    return {
        "disabled": disabled,
        "enabled": enabled,
        "disabled_over_enabled": (
            disabled["instructions_per_second"]
            / enabled["instructions_per_second"]
        ),
    }


def compute_bench_check_overhead():
    """Full compress95 pipeline (compile, two profiled runs, qualification)
    with the default null checker vs. a live :class:`PipelineChecker`
    verifying every stage."""
    from repro.checks.runner import PipelineChecker
    from repro.evaluation.harness import WorkloadRun

    def measure(make_checker):
        def build():
            run = WorkloadRun(
                get_workload("compress95"), checker=make_checker()
            )
            run.qualified(0.97, 0.95)

        seconds, _ = _best_of(2, build)
        return seconds

    disabled = measure(lambda: None)
    enabled = measure(PipelineChecker)
    return {
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "enabled_over_disabled": enabled / disabled,
    }


def test_bench_interp(benchmark, record, record_json):
    cases = once(benchmark, compute_bench_interp)
    rows = []
    for case, measurements in cases.items():
        for m in measurements:
            rows.append(
                [
                    case,
                    m["engine"],
                    m["instructions"],
                    f"{m['seconds'] * 1000:.1f}",
                    f"{m['instructions_per_second'] / 1e6:.2f}",
                    f"{m['speedup_vs_reference']:.2f}x",
                ]
            )
    record(
        "BENCH_interp",
        format_table(
            [
                "workload",
                "engine",
                "instructions",
                "best ms",
                "M instr/s",
                "speedup",
            ],
            rows,
            title="Interpreter engine throughput (best of 3)",
        ),
    )
    record_json("BENCH_interp", cases)
    li95 = {m["engine"]: m for m in cases["li95"]}
    assert li95["compiled"]["speedup"] >= MIN_LI95_SPEEDUP, (
        f"compiled engine is only "
        f"{li95['compiled']['speedup']:.2f}x the reference on li95 "
        f"(need >= {MIN_LI95_SPEEDUP}x)"
    )


def test_bench_obs_overhead(benchmark, record_json):
    data = once(benchmark, compute_bench_obs_overhead)
    record_json("BENCH_obs_overhead", data)
    off = data["disabled"]["instructions_per_second"]
    on = data["enabled"]["instructions_per_second"]
    assert off >= (1 - MAX_OBS_OFF_REGRESSION) * on, (
        f"disabled observability runs at {off / 1e6:.2f} M instr/s vs "
        f"{on / 1e6:.2f} M instr/s enabled — the off-by-default "
        f"instrumentation costs more than {MAX_OBS_OFF_REGRESSION:.0%}"
    )


def test_bench_check_overhead(benchmark, record_json):
    data = once(benchmark, compute_bench_check_overhead)
    record_json("BENCH_check_overhead", data)
    off, on = data["disabled_seconds"], data["enabled_seconds"]
    assert off <= on / (1 - MAX_CHECK_OFF_REGRESSION), (
        f"pipeline without --check takes {off * 1000:.1f} ms vs "
        f"{on * 1000:.1f} ms with every checker on — the disabled hooks "
        f"cost more than {MAX_CHECK_OFF_REGRESSION:.0%}"
    )
