"""Table 1 — general information about the benchmarks.

Paper columns: Nodes (CFG nodes), Paths (Ball–Larus paths executed in the
training run), Hot Paths (paths covering 97% of training instructions),
Compile Time, and Anal. Time (constant propagation at CA = 0).

Paper shape to reproduce: path counts vary by two orders of magnitude with
``go`` the outlier; hot-path counts are far smaller than executed paths; the
CA = 0 analysis is cheap everywhere.
"""

from repro.evaluation import format_table
from repro.workloads import WORKLOAD_NAMES

from conftest import once


def compute_table1(runs):
    rows = []
    for name in WORKLOAD_NAMES:
        run = runs[name]
        rows.append(
            [
                name,
                run.cfg_nodes,
                run.executed_paths,
                run.hot_path_count(0.97),
                f"{run.compile_time * 1000:.1f}ms",
                f"{run.analysis_time(0.0) * 1000:.1f}ms",
            ]
        )
    return rows


def test_table1(benchmark, runs, record):
    rows = once(benchmark, compute_table1, runs)
    record(
        "table1",
        format_table(
            ["Program", "Nodes", "Paths", "Hot Paths", "Compile Time", "Anal. Time"],
            rows,
            title="Table 1: general information about the benchmarks",
        ),
    )
    # Shape assertions from the paper.
    by_name = {r[0]: r for r in rows}
    paths = {name: by_name[name][2] for name in WORKLOAD_NAMES}
    assert paths["go95"] == max(paths.values()), "go must execute the most paths"
    for name in WORKLOAD_NAMES:
        assert by_name[name][3] <= by_name[name][2], "hot paths <= executed paths"
