"""Figure 11 — CFG-node growth before and after reduction versus coverage.

Paper shape: the traced graph (before reduction) grows with coverage and
``go`` is the outlier (+184% at CA = 0.97, +722% at full coverage, vs at
most +80% for the rest); reduction cuts the growth by roughly an order of
magnitude (go +70% reduced, others ≤ +10% in the paper).
"""

from repro.evaluation import CA_SWEEP, format_table, render_series
from repro.workloads import WORKLOAD_NAMES

from conftest import once


def compute_fig11(runs):
    data = {}
    for name in WORKLOAD_NAMES:
        run = runs[name]
        data[name] = [run.graph_sizes(ca) for ca in CA_SWEEP]
    return data


def test_fig11(benchmark, runs, record):
    data = once(benchmark, compute_fig11, runs)
    header = ["Program"] + [f"CA={ca:g}" for ca in CA_SWEEP]
    before_rows = []
    after_rows = []
    for name, sizes in data.items():
        orig = sizes[0][0]
        before_rows.append(
            [name] + [f"{(hpg - orig) / orig:+.0%}" for (_, hpg, _) in sizes]
        )
        after_rows.append(
            [name] + [f"{(red - orig) / orig:+.0%}" for (_, _, red) in sizes]
        )
    record(
        "fig11",
        format_table(
            header,
            before_rows,
            title="Figure 11 (a/c): CFG-node growth BEFORE reduction vs coverage",
        )
        + "\n\n"
        + format_table(
            header,
            after_rows,
            title="Figure 11 (b/d): CFG-node growth AFTER reduction vs coverage",
        )
        + "\n\n"
        + render_series(
            {
                name: [(hpg - sizes[0][0]) / sizes[0][0] for (_, hpg, _) in sizes]
                for name, sizes in data.items()
            },
            [f"{ca:g}" for ca in CA_SWEEP],
            title="shape (before reduction):",
        ),
    )

    growth_before = {}
    growth_after = {}
    for name, sizes in data.items():
        orig = sizes[0][0]
        # Index 4 is CA = 0.97 in the sweep.
        growth_before[name] = (sizes[4][1] - orig) / orig
        growth_after[name] = (sizes[4][2] - orig) / orig
        # Reduction never grows the graph; coverage growth is monotone.
        for (_, hpg, red) in sizes:
            assert red <= hpg
        hpgs = [s[1] for s in sizes]
        assert hpgs == sorted(hpgs), name

    # go is the growth outlier, as in the paper.
    go_before = growth_before.pop("go95")
    assert go_before > max(growth_before.values())
    go_after = growth_after.pop("go95")
    assert go_after >= max(growth_after.values())
    # Reduction removes a substantial share of the duplication everywhere.
    for name in growth_after:
        if growth_before[name] > 0:
            assert growth_after[name] < growth_before[name]


BLOWUP_METRICS = ("hpg_blowup_factor", "reduced_blowup_factor")


def compute_fig11_blowup(runs):
    """Re-qualify every profiled routine at CA = 0.97 under a live metrics
    registry and collect the per-routine blow-up histograms the pipeline
    emits (the observability counterpart of the table above)."""
    from repro.core import run_qualified
    from repro.obs import capture

    with capture() as (_, registry):
        for name in WORKLOAD_NAMES:
            run = runs[name]
            for fn_name, fn in run.module.functions.items():
                profile = run.train.profiles.get(fn_name)
                if profile is None or not profile.total_count:
                    continue
                run_qualified(fn, profile, ca=0.97, cr=0.95)
        snapshot = registry.snapshot()
    return {
        metric: hist
        for (metric, _labels), hist in snapshot["histograms"].items()
        if metric in BLOWUP_METRICS
    }


def test_fig11_blowup_histogram(benchmark, runs, record, record_json):
    data = once(benchmark, compute_fig11_blowup, runs)
    hpg, red = (data[m] for m in BLOWUP_METRICS)
    edges = hpg["buckets"]
    labels = [f"<= {b:g}x" for b in edges] + [f"> {edges[-1]:g}x"]
    rows = [
        [label, h, r]
        for label, h, r in zip(labels, hpg["counts"], red["counts"])
    ]
    rows.append(
        [
            "mean",
            f"{hpg['sum'] / hpg['count']:.2f}x",
            f"{red['sum'] / red['count']:.2f}x",
        ]
    )
    record(
        "fig11_blowup",
        format_table(
            ["blow-up factor", "HPG routines", "reduced routines"],
            rows,
            title=(
                "Figure 11 (histogram view): traced routines by vertex "
                "blow-up at CA=0.97"
            ),
        ),
    )
    record_json("fig11_blowup", data)
    # Both histograms saw every traced routine exactly once.
    assert hpg["count"] == red["count"] > 0
    # Reduction only shrinks graphs, so its total blow-up mass is no larger.
    assert red["sum"] <= hpg["sum"]
