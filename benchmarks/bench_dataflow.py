"""Bitset-compiled dataflow kernel vs the generic oracle: time and memory.

The compiled kernel exists for paper-scale graphs — SPEC95 routines have
hundreds of blocks, and hot-path tracing multiplies them further — while
the MiniC workloads are miniatures whose per-solve lowering cost can hide
the win.  So this bench measures both regimes on ``li95``:

* the raw CFG and hot-path-graph views (the honest small-graph numbers,
  reported but not gated), and
* the same views tiled to paper scale with
  :func:`repro.dataflow.tiling.tile_view` (variables renamed per tile, so
  fact universes grow with the graph) — where the ``>= 3x`` floor is
  asserted for CFG and HPG alike.

A separate :mod:`tracemalloc` pass gates memory: the kernel's dense arrays
and decoded solutions must not cost more than a modest factor over the
generic solver's frozensets at the same scale.  Results land in
``BENCH_dataflow.json`` for :mod:`bench_diff` to track across commits.
"""

import time
import tracemalloc

from repro.core.qualified import run_qualified
from repro.dataflow.framework import solve
from repro.dataflow.graph_view import GraphView
from repro.dataflow.problems import (
    AvailableExpressions,
    CopyPropagation,
    LiveVariables,
    ReachingDefinitions,
    VeryBusyExpressions,
)
from repro.dataflow.tiling import tile_view
from repro.evaluation import format_table
from repro.frontend import compile_program
from repro.interp import Interpreter
from repro.profiles.path_profile import PathProfile
from repro.workloads import (
    get_workload,
    running_example_module,
    training_run_inputs,
)

from conftest import once

ENGINES = ("generic", "compiled")
#: Asserted floor for the tiled (paper-scale) li95 views, CFG and HPG both.
MIN_LI95_SPEEDUP = 3.0
#: Tracemalloc peak of the compiled kernel may cost at most this factor
#: over the generic solver on the gated (tiled) cases.
MAX_MEM_RATIO = 1.25
#: Tile counts chosen to land both gated views in the 1000-vertex regime.
CFG_COPIES = 48
HPG_COPIES = 12

#: The five separable problems the kernel compiles.
PROBLEMS = (
    ("reaching_defs", lambda v: ReachingDefinitions(v.params, v.cfg.entry)),
    ("liveness", lambda v: LiveVariables()),
    ("available_exprs", lambda v: AvailableExpressions()),
    ("very_busy", lambda v: VeryBusyExpressions()),
    ("copy_prop", lambda v: CopyPropagation()),
)


def _best_of(n, fn):
    """Best wall-clock of ``n`` runs (discards scheduler noise)."""
    best = None
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best


def _solve_all(views, engine):
    for view in views:
        for _, make in PROBLEMS:
            solve(make(view), view, engine=engine)


def _measure_case(views, repeats=2):
    """Per-engine best wall time and tracemalloc peak over ``views``."""
    case = {
        "vertices": sum(len(list(v.cfg.vertices)) for v in views),
        "solves": len(views) * len(PROBLEMS),
    }
    for engine in ENGINES:
        seconds = _best_of(repeats, lambda: _solve_all(views, engine))
        tracemalloc.start()
        _solve_all(views, engine)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        case[engine] = {
            "seconds": seconds,
            "peak_kb": round(peak / 1024.0, 1),
        }
    case["speedup"] = case["generic"]["seconds"] / case["compiled"]["seconds"]
    case["mem_ratio"] = case["compiled"]["peak_kb"] / case["generic"]["peak_kb"]
    return case


def _li95_views():
    """(cfg views, hpg views) of li95 at the default coverage."""
    li95 = get_workload("li95")
    module = compile_program(li95.source)
    profiles = Interpreter(
        module, profile_mode="bl", track_sites=False
    ).run(li95.train_args, li95.train_inputs).profiles
    cfg_views, hpg_views = [], []
    for name, fn in module.functions.items():
        cfg_views.append(GraphView.from_function(fn))
        qa = run_qualified(fn, profiles.get(name, PathProfile()), 0.97, 0.95)
        if qa.hpg is not None:
            hpg_views.append(qa.hpg.view())
    return cfg_views, hpg_views


def compute_bench_dataflow():
    cfg_views, hpg_views = _li95_views()
    n, inputs = training_run_inputs()
    example_views = [
        GraphView.from_function(fn)
        for fn in running_example_module().functions.values()
    ]
    return {
        "li95_cfg": _measure_case(cfg_views),
        "li95_hpg": _measure_case(hpg_views),
        f"li95_cfg_x{CFG_COPIES}": _measure_case(
            [tile_view(v, CFG_COPIES) for v in cfg_views]
        ),
        f"li95_hpg_x{HPG_COPIES}": _measure_case(
            [tile_view(v, HPG_COPIES) for v in hpg_views]
        ),
        "running_example_cfg": _measure_case(example_views),
    }


def test_bench_dataflow(benchmark, record, record_json):
    cases = once(benchmark, compute_bench_dataflow)
    rows = []
    for case, data in cases.items():
        for engine in ENGINES:
            m = data[engine]
            rows.append(
                [
                    case,
                    engine,
                    data["vertices"],
                    f"{m['seconds'] * 1000:.1f}",
                    f"{m['peak_kb']:.0f}",
                    f"{data['speedup']:.2f}x" if engine == "compiled" else "",
                ]
            )
    record(
        "BENCH_dataflow",
        format_table(
            ["case", "engine", "vertices", "best ms", "peak KiB", "speedup"],
            rows,
            title=(
                "Dataflow solver engines: 5 separable problems per view "
                "(best of 2)"
            ),
        ),
    )
    record_json("BENCH_dataflow", cases)
    for gated in (f"li95_cfg_x{CFG_COPIES}", f"li95_hpg_x{HPG_COPIES}"):
        data = cases[gated]
        assert data["speedup"] >= MIN_LI95_SPEEDUP, (
            f"compiled dataflow kernel is only {data['speedup']:.2f}x the "
            f"generic solver on {gated} (need >= {MIN_LI95_SPEEDUP}x)"
        )
        assert data["mem_ratio"] <= MAX_MEM_RATIO, (
            f"compiled kernel peaks at {data['mem_ratio']:.2f}x the generic "
            f"solver's memory on {gated} (allowed <= {MAX_MEM_RATIO}x)"
        )
