"""Figures 10 and 13 — classification of dynamic instructions at CA = 1.

Categories (see :mod:`repro.stats.classify`): Local, Unknowable, non-local
Iterative (Wegman–Zadek), non-local Qualified, and the Qualified breakdown
into Identical-beyond-WZ / Variable / mixed.

Paper shape to reproduce:

* Local and Unknowable dominate everywhere (Figure 10a);
* qualified analysis finds many times more non-local constants than
  Wegman–Zadek (2–112x in the paper);
* most qualified constants are *neither* Identical nor Variable — constant
  at some duplicates, unknown at others;
* Variable constants (different values at different duplicates) exist but
  are a small minority.
"""

from repro.evaluation import format_table
from repro.workloads import WORKLOAD_NAMES

from conftest import once


def compute_fig10(runs):
    return {
        name: runs[name].aggregate_classification(1.0)
        for name in WORKLOAD_NAMES
    }


def test_fig10(benchmark, runs, record):
    classes = once(benchmark, compute_fig10, runs)
    rows = []
    for name, c in classes.items():
        t = c.total_dynamic
        rows.append(
            [
                name,
                f"{c.local / t:.1%}",
                f"{c.unknowable / t:.1%}",
                c.iterative_nonlocal,
                c.qualified_nonlocal,
                c.identical_extra,
                c.variable,
                c.mixed,
                ("inf" if c.improvement_ratio == float("inf")
                 else f"{c.improvement_ratio:.1f}x"),
            ]
        )
    record(
        "fig10",
        format_table(
            [
                "Program",
                "Local",
                "Unknowable",
                "WZ nonlocal",
                "Qual nonlocal",
                "Identical+",
                "Variable",
                "Mixed",
                "Ratio",
            ],
            rows,
            title=(
                "Figure 10/13: dynamic instruction classification at CA = 1 "
                "(Local/Unknowable as fraction of all instructions; constant "
                "counts are dynamic executions)"
            ),
        ),
    )
    for name, c in classes.items():
        assert c.qualified_nonlocal > c.iterative_nonlocal, name
        assert c.improvement_ratio >= 2.0, (
            f"{name}: the paper's improvement range starts at 2x"
        )
        # The qualified breakdown is consistent.
        assert (
            c.identical_extra + c.variable + c.mixed
            <= c.qualified_nonlocal
        )
        # Unknowable instructions exist everywhere (loads, calls, params).
        assert c.unknowable > 0
