"""Figure 9 — increase in dynamic instructions with constant results versus
hot-path coverage (baseline: CA = 0, plain Wegman–Zadek).

Paper shape: the curve rises with coverage; most of the benefit arrives
before full coverage (virtually all of it by CA = 0.97); improvements at
full coverage range from small to several percent on SPEC-sized programs
(our kernels are tiny and constant-rich, so absolute percentages are much
larger — see EXPERIMENTS.md).
"""

from repro.evaluation import CA_SWEEP, format_table, render_series
from repro.workloads import WORKLOAD_NAMES

from conftest import once


def compute_fig9(runs):
    series = {}
    for name in WORKLOAD_NAMES:
        run = runs[name]
        series[name] = [
            run.aggregate_classification(ca).constant_increase
            for ca in CA_SWEEP
        ]
    return series


def test_fig9(benchmark, runs, record):
    series = once(benchmark, compute_fig9, runs)
    rows = [
        [name] + [f"{v:+.1%}" for v in values]
        for name, values in series.items()
    ]
    record(
        "fig9",
        format_table(
            ["Program"] + [f"CA={ca:g}" for ca in CA_SWEEP],
            rows,
            title=(
                "Figure 9: increase in dynamic constant instructions vs "
                "coverage (baseline CA = 0)"
            ),
        )
        + "\n\n"
        + render_series(
            series, [f"{ca:g}" for ca in CA_SWEEP], title="shape:"
        ),
    )
    for name, values in series.items():
        assert values[0] == 0.0, "CA = 0 is the baseline"
        assert max(values) > 0.0, f"{name} must benefit from qualification"
        # Most of the benefit by CA = 0.97 (index 4 in the sweep).
        assert values[4] >= 0.75 * max(values), name
