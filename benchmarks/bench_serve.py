"""Service throughput and warm-cache latency — the daemon's perf story.

The point of ``repro serve`` is amortization: after the first request has
populated the shared :class:`ArtifactCache`, subsequent identical requests
should cost orders of magnitude less than the cold analysis, and N
concurrent clients should share one warm process instead of N cold CLI
start-ups.  This bench measures both over a live daemon (real HTTP on a
loopback socket, real worker pool):

* ``warm_speedup`` — cold-request latency over best warm-request latency
  for the same configuration (gated: the cache must buy at least 3x);
* ``concurrent_throughput`` — requests/second with 4 clients hammering a
  warm daemon, and its ratio to serial warm throughput (reported; the gate
  only requires concurrency not to *lose* against serial).

Writes ``BENCH_serve.json`` for the mechanical diff in ``bench_diff.py``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.evaluation import format_table
from repro.service import AnalysisRequest, AnalysisService, ServiceClient, make_server

from conftest import once

TARGET = "gen-medium"
CLIENTS = 4
WARM_REQUESTS = 12
MIN_WARM_SPEEDUP = 3.0
#: Concurrent clients must at least match one serial client's throughput
#: (they share the worker pool; the gate catches an accidental global lock).
MIN_CONCURRENCY_RATIO = 0.9


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def compute_bench_serve(tmp_dir: str) -> dict:
    service = AnalysisService(jobs=CLIENTS, cache_dir=tmp_dir)
    server = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        client.wait_ready(timeout=10)
        request = AnalysisRequest(target=TARGET, check=False)

        cold_seconds, _ = _timed(lambda: client.analyze(request))

        warm_times = []
        for _ in range(WARM_REQUESTS):
            seconds, _ = _timed(lambda: client.analyze(request, timeout=120))
            warm_times.append(seconds)
        warm_best = min(warm_times)

        serial_seconds = sum(warm_times)
        serial_throughput = WARM_REQUESTS / serial_seconds

        def one_client(n: int) -> int:
            c = ServiceClient(f"http://{host}:{port}")
            for _ in range(WARM_REQUESTS // CLIENTS):
                c.analyze(request, timeout=120)
            return n

        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            concurrent_seconds, _ = _timed(
                lambda: list(pool.map(one_client, range(CLIENTS)))
            )
        concurrent_requests = CLIENTS * (WARM_REQUESTS // CLIENTS)
        concurrent_throughput = concurrent_requests / concurrent_seconds

        snap = service.cache.stats_snapshot()
        return {
            "target": TARGET,
            "clients": CLIENTS,
            "cold_ms": cold_seconds * 1000,
            "warm_best_ms": warm_best * 1000,
            "warm_mean_ms": serial_seconds / WARM_REQUESTS * 1000,
            "warm_speedup": cold_seconds / warm_best,
            "serial_throughput_rps": serial_throughput,
            "concurrent_throughput_rps": concurrent_throughput,
            "concurrency_ratio": concurrent_throughput / serial_throughput,
            "cache_computations": sum(snap.misses.values()),
            "cache_hits": snap.total_hits,
        }
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()
        thread.join(timeout=10)


def test_bench_serve(benchmark, record, record_json, tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("bench-serve-cache"))
    data = once(benchmark, compute_bench_serve, cache_dir)
    record(
        "BENCH_serve",
        format_table(
            ["metric", "value"],
            [
                ["target", data["target"]],
                ["cold request (ms)", f"{data['cold_ms']:.1f}"],
                ["warm best (ms)", f"{data['warm_best_ms']:.1f}"],
                ["warm mean (ms)", f"{data['warm_mean_ms']:.1f}"],
                ["warm speedup", f"{data['warm_speedup']:.1f}x"],
                ["serial warm rps", f"{data['serial_throughput_rps']:.1f}"],
                [
                    f"{CLIENTS}-client rps",
                    f"{data['concurrent_throughput_rps']:.1f}",
                ],
                ["concurrency ratio", f"{data['concurrency_ratio']:.2f}"],
                ["pipeline computations", data["cache_computations"]],
                ["cache hits", data["cache_hits"]],
            ],
            title=f"repro serve latency/throughput ({TARGET})",
        ),
    )
    record_json("BENCH_serve", data)
    assert data["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm requests only {data['warm_speedup']:.1f}x faster than cold "
        f"(need >= {MIN_WARM_SPEEDUP}x): the shared cache is not being hit"
    )
    assert data["concurrency_ratio"] >= MIN_CONCURRENCY_RATIO, (
        f"{CLIENTS} concurrent clients reach only "
        f"{data['concurrency_ratio']:.2f}x of serial throughput — "
        f"the daemon is serializing requests somewhere"
    )
