"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables or figures.  The
seven workload runs are built once per session and shared; per-coverage
pipeline results are cached inside each :class:`WorkloadRun`.

With ``--repro-cache-dir DIR`` (or the ``REPRO_CACHE_DIR`` environment
variable) the runs additionally go through the content-addressed artifact
cache of :mod:`repro.pipeline`, so the Figure 9/11/12 sweeps reuse compiled
modules, profiling runs, and per-coverage pipelines across *sessions* — a
warm second benchmark run performs zero recompiles and zero reprofiles (the
differential tests in ``tests/test_pipeline_cache.py`` assert exactly this).

Every bench both *prints* its table (run pytest with ``-s`` to see it
inline) and writes it under ``benchmarks/results/`` so the artifacts survive
the run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.evaluation import WorkloadRun
from repro.pipeline import ArtifactCache, CachedWorkloadRun
from repro.workloads import WORKLOAD_NAMES, get_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR") or None,
        help="persist pipeline artifacts here and reuse them across sessions",
    )


@pytest.fixture(scope="session")
def runs(request) -> dict[str, WorkloadRun]:
    """All seven profiled workloads (the expensive shared fixture)."""
    cache_dir = request.config.getoption("--repro-cache-dir")
    if cache_dir:
        cache = ArtifactCache(cache_dir)
        return {
            name: CachedWorkloadRun(get_workload(name), cache)
            for name in WORKLOAD_NAMES
        }
    return {name: WorkloadRun(get_workload(name)) for name in WORKLOAD_NAMES}


@pytest.fixture(scope="session")
def record():
    """Persist a rendered table under benchmarks/results/ and print it."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record


@pytest.fixture(scope="session")
def record_json():
    """Persist machine-readable results under benchmarks/results/.

    Perf-trajectory benchmarks (``bench_interp.py``) emit JSON so future PRs
    can diff numbers mechanically rather than re-parsing rendered tables.
    """
    import json

    def _record_json(name: str, payload) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\n# wrote {path}\n")

    return _record_json


def once(benchmark, fn, *args):
    """Run ``fn`` exactly once under pytest-benchmark's timer.

    The experiment computations are deterministic and expensive, so a single
    measured round is both sufficient and honest.
    """
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
