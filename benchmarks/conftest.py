"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables or figures.  The
seven workload runs are built once per session and shared; per-coverage
pipeline results are cached inside each :class:`WorkloadRun`.

Every bench both *prints* its table (run pytest with ``-s`` to see it
inline) and writes it under ``benchmarks/results/`` so the artifacts survive
the run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.evaluation import WorkloadRun
from repro.workloads import WORKLOAD_NAMES, get_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runs() -> dict[str, WorkloadRun]:
    """All seven profiled workloads (the expensive shared fixture)."""
    return {name: WorkloadRun(get_workload(name)) for name in WORKLOAD_NAMES}


@pytest.fixture(scope="session")
def record():
    """Persist a rendered table under benchmarks/results/ and print it."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record


def once(benchmark, fn, *args):
    """Run ``fn`` exactly once under pytest-benchmark's timer.

    The experiment computations are deterministic and expensive, so a single
    measured round is both sufficient and honest.
    """
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
