"""Dense env-array WZ engine vs the generic persistent-dict oracle.

Conditional constant propagation runs three times per routine in the
qualified pipeline (baseline CFG, hot-path graph, reduced graph), so the
Wegman–Zadek solver dominates pipeline time on paper-scale targets.  This
bench measures :func:`repro.dataflow.analyze` under both engines in the
regimes the pipeline actually solves over:

* the organic ``gen-1k`` generated target — per-function CFGs and the
  hot-path graphs built at the default coverage (both **gated**: the dense
  engine must hold a ``>= 3x`` floor and a modest memory ceiling);
* ``li95`` tiled to paper scale with
  :func:`repro.dataflow.tiling.tile_view` (gated the same way); and
* the hand-written ``sieve`` (13 blocks — below the engine's
  ``WZ_AUTO_MIN_VERTICES`` crossover, reported for honesty but not gated).

Ratios land in ``BENCH_wz.json`` for :mod:`bench_diff` to track across
commits.
"""

import time
import tracemalloc

from repro.core.qualified import run_qualified
from repro.dataflow import analyze
from repro.dataflow.graph_view import GraphView
from repro.dataflow.tiling import tile_view
from repro.evaluation import format_table
from repro.frontend import compile_program
from repro.interp import Interpreter
from repro.profiles.path_profile import PathProfile
from repro.workloads.matrix import resolve_target

from conftest import once

ENGINES = ("generic", "compiled")
#: Gated floor for every paper-scale case, organic and tiled alike.
MIN_WZ_SPEEDUP = 3.0
#: Tracemalloc peak of the dense engine may cost at most this factor over
#: the generic solver on the gated cases (it typically undercuts it: flat
#: int arrays vs one persistent dict per set()).
MAX_MEM_RATIO = 1.25
#: Tile counts matching bench_dataflow's paper-scale li95 regime.
CFG_COPIES = 48
HPG_COPIES = 12


def _best_of(n, fn):
    best = None
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best


def _analyze_all(views, engine):
    for view in views:
        analyze(view, engine=engine)


def _measure_case(views, repeats=3):
    """Per-engine best wall time and tracemalloc peak over ``views``."""
    case = {
        "vertices": sum(len(list(v.cfg.vertices)) for v in views),
        "solves": len(views),
    }
    for engine in ENGINES:
        seconds = _best_of(repeats, lambda: _analyze_all(views, engine))
        tracemalloc.start()
        _analyze_all(views, engine)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        case[engine] = {
            "seconds": seconds,
            "peak_kb": round(peak / 1024.0, 1),
        }
    case["speedup"] = case["generic"]["seconds"] / case["compiled"]["seconds"]
    case["mem_ratio"] = case["compiled"]["peak_kb"] / case["generic"]["peak_kb"]
    return case


def _target_views(name):
    """(cfg views, hpg views) of one suite target at default coverage."""
    wl = resolve_target(name)
    module = compile_program(wl.source)
    profiles = Interpreter(
        module, profile_mode="bl", track_sites=False
    ).run(wl.train_args, wl.train_inputs).profiles
    cfg_views, hpg_views = [], []
    for fname, fn in module.functions.items():
        cfg_views.append(GraphView.from_function(fn))
        qa = run_qualified(fn, profiles.get(fname, PathProfile()), 0.97, 0.95)
        if qa.hpg is not None:
            hpg_views.append(qa.hpg.view())
    return cfg_views, hpg_views


def compute_bench_wz():
    gen_cfg, gen_hpg = _target_views("gen-1k")
    sieve_cfg, sieve_hpg = _target_views("sieve")
    li95_cfg, li95_hpg = _target_views("li95")
    return {
        "gen_1k_cfg": _measure_case(gen_cfg),
        "gen_1k_hpg": _measure_case(gen_hpg),
        "sieve_cfg": _measure_case(sieve_cfg + sieve_hpg),
        # One timed pass each: a generic solve of the x48 tiling runs tens
        # of seconds, so best-of-3 would triple an already long-tail case
        # while the ratio it produces is stable to a few percent.
        f"li95_cfg_x{CFG_COPIES}": _measure_case(
            [tile_view(v, CFG_COPIES) for v in li95_cfg], repeats=1
        ),
        f"li95_hpg_x{HPG_COPIES}": _measure_case(
            [tile_view(v, HPG_COPIES) for v in li95_hpg], repeats=1
        ),
    }


GATED = ("gen_1k_cfg", "gen_1k_hpg", f"li95_cfg_x{CFG_COPIES}",
         f"li95_hpg_x{HPG_COPIES}")


def test_bench_wz(benchmark, record, record_json):
    cases = once(benchmark, compute_bench_wz)
    assert cases["gen_1k_cfg"]["vertices"] >= 1000, (
        "gen-1k no longer reaches the 1k-vertex organic regime"
    )
    rows = []
    for case, data in cases.items():
        for engine in ENGINES:
            m = data[engine]
            rows.append(
                [
                    case,
                    engine,
                    data["vertices"],
                    f"{m['seconds'] * 1000:.1f}",
                    f"{m['peak_kb']:.0f}",
                    f"{data['speedup']:.2f}x" if engine == "compiled" else "",
                ]
            )
    record(
        "BENCH_wz",
        format_table(
            ["case", "engine", "vertices", "best ms", "peak KiB", "speedup"],
            rows,
            title=(
                "Wegman-Zadek engines: conditional constants per view "
                "(best of 3; tiled li95 cases timed once)"
            ),
        ),
    )
    record_json("BENCH_wz", cases)
    for gated in GATED:
        data = cases[gated]
        assert data["speedup"] >= MIN_WZ_SPEEDUP, (
            f"dense WZ engine is only {data['speedup']:.2f}x the generic "
            f"solver on {gated} (need >= {MIN_WZ_SPEEDUP}x)"
        )
        assert data["mem_ratio"] <= MAX_MEM_RATIO, (
            f"dense WZ engine peaks at {data['mem_ratio']:.2f}x the generic "
            f"solver's memory on {gated} (allowed <= {MAX_MEM_RATIO}x)"
        )
