"""Figure 12 — qualified-analysis time versus coverage (baseline CA = 0).

Paper shape: analysis time grows with coverage, roughly tracking hot-path
graph size; ``go`` is the outlier (about 6x at CA = 0.97 in the paper) while
the others stay within a modest factor of the CA = 0 cost.

This bench also uses pytest-benchmark for what it is best at: wall-clock
timing of the full pipeline at the paper's operating point.
"""

from repro.core import run_qualified
from repro.evaluation import CA_SWEEP, format_table, render_series
from repro.workloads import WORKLOAD_NAMES

from conftest import once


def compute_fig12(runs):
    series = {}
    for name in WORKLOAD_NAMES:
        run = runs[name]
        base = run.analysis_time(0.0)
        series[name] = [run.analysis_time(ca) / base for ca in CA_SWEEP]
    return series


def test_fig12(benchmark, runs, record):
    series = once(benchmark, compute_fig12, runs)
    rows = [
        [name] + [f"{v:.1f}x" for v in values]
        for name, values in series.items()
    ]
    record(
        "fig12",
        format_table(
            ["Program"] + [f"CA={ca:g}" for ca in CA_SWEEP],
            rows,
            title=(
                "Figure 12: qualified-analysis time vs coverage "
                "(relative to CA = 0)"
            ),
        )
        + "\n\n"
        + render_series(
            series,
            [f"{ca:g}" for ca in CA_SWEEP],
            title="shape:",
            value_format="{:.1f}x",
        ),
    )
    for name, values in series.items():
        assert values[0] == 1.0
        assert max(values) >= 1.0
    # Analysis time tracks traced-graph size; wall-clock at this scale is
    # too noisy to rank reliably (and the paper itself notes perl's time was
    # dominated by two huge routines), so the deterministic shape assertion
    # is on the size driver: go's traced graph at CA = 0.97 is the largest.
    hpg_sizes = {name: runs[name].graph_sizes(0.97)[1] for name in series}
    go_size = hpg_sizes.pop("go95")
    assert go_size >= max(hpg_sizes.values())


def test_pipeline_wall_clock_go(benchmark, runs):
    """Wall-clock of one full qualified pipeline on the outlier workload."""
    run = runs["go95"]
    fn = run.module.function("evaluate")
    profile = run.train_profile("evaluate")
    result = benchmark(lambda: run_qualified(fn, profile, ca=0.97))
    assert result.traced


def test_pipeline_wall_clock_compress(benchmark, runs):
    """Wall-clock of one full qualified pipeline on a concentrated workload."""
    run = runs["compress95"]
    fn = run.module.function("compress")
    profile = run.train_profile("compress")
    result = benchmark(lambda: run_qualified(fn, profile, ca=0.97))
    assert result.traced
