"""Whole-module optimization driver.

Composes the paper's pipeline over every routine of a module:

    profile -> qualify (trace/analyze/reduce) -> materialize+fold -> DCE ->
    straighten -> profile-guided layout

Used by the CLI and available as a one-call public API::

    from repro.opt.driver import optimize_module
    optimized, report = optimize_module(module, run.profiles)

Routines without a profile (never called during training) are folded with
the Wegman–Zadek baseline only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..core.qualified import QualifiedAnalysis, run_qualified
from ..ir.function import Module
from ..ir.validate import validate_module
from ..profiles.path_profile import PathProfile
from .codegen import fold_function, materialize, vertex_labels
from .dce import eliminate_dead_code
from .layout import edge_frequencies_from_labels, layout_function
from .straighten import straighten


@dataclass
class RoutineReport:
    """What happened to one routine during optimization."""

    name: str
    traced: bool
    hot_paths: int
    blocks_before: int
    blocks_after: int
    analysis: QualifiedAnalysis


def optimize_module(
    module: Module,
    profiles: Mapping[str, PathProfile],
    ca: float = 0.97,
    cr: float = 0.95,
    *,
    dce: bool = True,
    straighten_blocks: bool = True,
    layout: bool = True,
) -> tuple[Module, list[RoutineReport]]:
    """Path-qualified optimization of every routine in ``module``.

    Returns a new module (the input is untouched) plus per-routine reports.
    The output module is validated before being returned.
    """
    out = Module()
    for decl in module.arrays.values():
        out.add_array(decl)

    reports: list[RoutineReport] = []
    for name, fn in module.functions.items():
        profile = profiles.get(name, PathProfile())
        qa = run_qualified(fn, profile, ca=ca, cr=cr)
        if qa.traced:
            optimized = materialize(qa.reduced, qa.reduced_analysis, fold=True)
            labels = vertex_labels(qa.reduced)
            freqs = edge_frequencies_from_labels(
                qa.reduced_profile.edge_frequencies(), labels
            )
        else:
            optimized = fold_function(fn, qa.baseline)
            freqs = {
                edge: count
                for edge, count in profile.edge_frequencies().items()
                if isinstance(edge[0], str)
            }
        if dce:
            eliminate_dead_code(optimized)
        if straighten_blocks:
            straighten(optimized)
        if layout:
            freqs = {
                (u, v): c
                for (u, v), c in freqs.items()
                if u in optimized.blocks and v in optimized.blocks
            }
            layout_function(optimized, freqs)
        out.add_function(optimized)
        reports.append(
            RoutineReport(
                name=name,
                traced=qa.traced,
                hot_paths=len(qa.hot_paths),
                blocks_before=len(fn.blocks),
                blocks_after=len(optimized.blocks),
                analysis=qa,
            )
        )
    validate_module(out)
    return out, reports
