"""Optimization passes: materialization of traced graphs, constant folding,
unreachable-code removal, dead-code elimination, and block layout."""

from .codegen import fold_function, materialize, remove_unreachable, vertex_labels
from .dce import eliminate_dead_code
from .driver import RoutineReport, optimize_module
from .layout import edge_frequencies_from_labels, layout_function
from .straighten import straighten

__all__ = [
    "edge_frequencies_from_labels",
    "eliminate_dead_code",
    "fold_function",
    "layout_function",
    "materialize",
    "optimize_module",
    "RoutineReport",
    "remove_unreachable",
    "straighten",
    "vertex_labels",
]
