"""Dead code elimination.

After constant folding, computations feeding only folded instructions (for
example a comparison whose branch became a jump) are dead; removing them is
what turns discovered constants into actual cycle savings.  Liveness comes
from the backward framework instance, so DCE also exercises the framework.

Only pure instructions are removed — loads, stores, calls and prints always
stay.
"""

from __future__ import annotations

from ..dataflow.framework import solve
from ..dataflow.graph_view import GraphView
from ..dataflow.problems.liveness import LiveVariables
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.operands import Var


def eliminate_dead_code(fn: Function) -> Function:
    """Iteratively remove pure instructions whose results are never used.

    Operates in place and returns ``fn``.  Runs to a fixpoint: removing one
    dead instruction can kill the uses that kept another alive.
    """
    while _eliminate_once(fn):
        pass
    return fn


def _eliminate_once(fn: Function) -> bool:
    view = GraphView.from_function(fn)
    solution = solve(LiveVariables(), view)
    changed = False
    for label, block in fn.blocks.items():
        # Liveness at block exit = meet over successors' entry liveness
        # (value_in for the backward problem).
        live = set(solution.value_in[label])
        if block.terminator is not None:
            for op in block.terminator.uses():
                if isinstance(op, Var):
                    live.add(op.name)
        kept: list = []
        for instr in reversed(block.instrs):
            if instr.is_pure and instr.dest is not None and instr.dest not in live:
                changed = True
                continue
            if instr.dest is not None:
                live.discard(instr.dest)
            for op in instr.uses():
                if isinstance(op, Var):
                    live.add(op.name)
            kept.append(instr)
        kept.reverse()
        if len(kept) != len(block.instrs):
            block.instrs[:] = kept
    return changed
