"""Profile-guided block layout.

The interpreter's cost model charges a penalty for control transfers that do
not fall through to the next block in layout order (see
:mod:`repro.interp.cost`).  This pass orders blocks into hot chains so that
the most frequent successor of each block follows it, which is the standard
way compilers pay for tail duplication.  Both the base and the optimized
builds in the experiments are laid out with the same algorithm, so Table 2
compares like with like.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..ir.function import Function

#: Edge frequency map: (source label, target label) -> count.
EdgeFreqs = Mapping[tuple[str, str], int]


def layout_function(fn: Function, edge_freqs: Optional[EdgeFreqs] = None) -> Function:
    """Reorder ``fn``'s blocks greedily along hottest edges (in place).

    Starting from the entry, repeatedly extend the current chain with the
    unplaced successor of highest edge frequency; when the chain cannot be
    extended, restart it at the unplaced block with the highest incoming
    frequency.  Without frequencies the original order is used for
    tie-breaking, making the pass deterministic either way.
    """
    freqs = dict(edge_freqs) if edge_freqs else {}
    original_order = {label: i for i, label in enumerate(fn.blocks)}

    placed: list[str] = []
    placed_set: set[str] = set()

    def place(label: str) -> None:
        placed.append(label)
        placed_set.add(label)

    def best_successor(label: str) -> Optional[str]:
        candidates = [
            s for s in fn.blocks[label].successors() if s not in placed_set
        ]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda s: (freqs.get((label, s), 0), -original_order[s]),
        )

    def hottest_unplaced() -> Optional[str]:
        unplaced = [l for l in fn.blocks if l not in placed_set]
        if not unplaced:
            return None
        incoming: dict[str, int] = {l: 0 for l in unplaced}
        for (u, v), c in freqs.items():
            if v in incoming:
                incoming[v] += c
        return max(unplaced, key=lambda l: (incoming[l], -original_order[l]))

    current: Optional[str] = fn.entry
    while current is not None:
        place(current)
        nxt = best_successor(current)
        current = nxt if nxt is not None else hottest_unplaced()

    fn.blocks = {label: fn.blocks[label] for label in placed}
    fn.entry = placed[0]
    return fn


def edge_frequencies_from_labels(
    profile_edge_freqs: Mapping, label_of: Mapping
) -> dict[tuple[str, str], int]:
    """Convert traced-graph edge frequencies to label-level frequencies.

    ``label_of`` maps traced vertices to generated block labels; edges
    touching virtual vertices are dropped.
    """
    result: dict[tuple[str, str], int] = {}
    for (u, v), count in profile_edge_freqs.items():
        lu, lv = label_of.get(u), label_of.get(v)
        if lu is not None and lv is not None:
            result[(lu, lv)] = result.get((lu, lv), 0) + count
    return result
