"""Block straightening: merge unconditional-jump chains.

Tracing and reduction leave many blocks whose only connection is an
unconditional jump to a single-predecessor successor (the paper notes
duplication necessarily introduces jumps because "a node can have at most
one fall-through predecessor").  Where the jump target has exactly one
predecessor, the two blocks can be fused, eliminating the transfer
entirely — one of the follow-ups the paper suggests ("PW could ... further
duplicate code to avoid jumps altogether").

Run after folding/DCE and before layout; used by the experiment harness for
both the base and the optimized builds so Table 2 stays a fair comparison.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import Jump


def straighten(fn: Function) -> Function:
    """Fuse ``a -> jump b`` pairs where ``b`` has ``a`` as its only
    predecessor (and ``b`` is not the entry).  In place; returns ``fn``."""
    while _straighten_once(fn):
        pass
    return fn


def _straighten_once(fn: Function) -> bool:
    preds: dict[str, list[str]] = {label: [] for label in fn.blocks}
    for label, block in fn.blocks.items():
        for succ in block.successors():
            preds[succ].append(label)

    for label, block in fn.blocks.items():
        term = block.terminator
        if not isinstance(term, Jump):
            continue
        target = term.target
        if target == fn.entry or target == label:
            continue
        if preds[target] != [label]:
            continue
        victim = fn.blocks[target]
        block.instrs.extend(victim.instrs)
        block.terminator = victim.terminator
        del fn.blocks[target]
        return True
    return False
