"""Materializing traced graphs back into executable functions.

The paper's PW pass generates optimized code from the reduced hot-path
graph; :func:`materialize` is that step.  Each traced vertex becomes a basic
block labelled ``<orig>`` (if it is the only copy) or ``<orig>.q<state>``;
terminators are retargeted along the traced edges, which is always possible
because tracing gives every vertex exactly one successor per original CFG
edge.

With ``analysis`` and ``fold=True``, constant folding happens during
materialization: pure instructions with constant results become constant
assignments, and branches with constant conditions become jumps (the other
leg is dropped; unreachable blocks are cleaned afterwards).
"""

from __future__ import annotations

from typing import Optional

from ..dataflow.lattice import UNREACHABLE
from ..dataflow.transfer import transfer_instr
from ..dataflow.wegman_zadek import CondConstResult
from ..dataflow.transfer import eval_operand
from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Assign, Branch, Jump, Ret, copy_instr
from ..ir.operands import Const
from ..core.hot_path_graph import HpgVertex, TracedGraph


def vertex_labels(graph: TracedGraph) -> dict[HpgVertex, str]:
    """Unique block labels for the real vertices of a traced graph."""
    copies: dict = {}
    for vertex in graph.cfg.vertices:
        if vertex[0] in graph.function.blocks:
            copies.setdefault(vertex[0], []).append(vertex)
    labels: dict[HpgVertex, str] = {}
    for orig, vertices in copies.items():
        if len(vertices) == 1:
            labels[vertices[0]] = orig
        else:
            for vertex in vertices:
                labels[vertex] = f"{orig}.q{vertex[1]}"
    return labels


def materialize(
    graph: TracedGraph,
    analysis: Optional[CondConstResult] = None,
    fold: bool = False,
    name: Optional[str] = None,
) -> Function:
    """Generate an executable function from a traced graph.

    Without folding, the produced function is observationally equivalent to
    the original (it executes the same instruction sequence, merely through
    duplicated blocks) — the property the semantics tests check.
    """
    if fold and analysis is None:
        raise ValueError("fold=True requires an analysis result")

    labels = vertex_labels(graph)
    fn = Function(
        name if name is not None else graph.function.name,
        graph.function.params,
    )

    entry_succs = graph.cfg.succs(graph.cfg.entry)
    if len(entry_succs) != 1:
        raise ValueError("traced graph entry must have exactly one successor")
    entry_vertex = entry_succs[0]

    # Emit blocks in traced-graph vertex order, entry first, so the layout is
    # deterministic (callers may re-lay-out for fall-through quality).
    ordered = [entry_vertex] + [
        v for v in graph.cfg.vertices if v in labels and v != entry_vertex
    ]
    for vertex in ordered:
        block = graph.function.blocks[vertex[0]]
        new_block = BasicBlock(labels[vertex])

        env = analysis.input_env(vertex) if analysis is not None else None
        for instr in block.instrs:
            folded = instr
            if env is not None and env is not UNREACHABLE:
                env, value = transfer_instr(instr, env)
                if (
                    fold
                    and instr.is_pure
                    and isinstance(value, int)
                    and not (
                        isinstance(instr, Assign)
                        and isinstance(instr.src, Const)
                    )
                ):
                    folded = Assign(instr.dest, Const(value))
            if folded is instr:
                folded = copy_instr(instr)
            new_block.append(folded)

        term = block.terminator
        targets = {}
        for succ in graph.cfg.succs(vertex):
            if succ[0] in graph.function.blocks:
                targets[succ[0]] = labels[succ]
        if isinstance(term, Ret):
            new_block.terminator = Ret(term.value)
        elif isinstance(term, Jump):
            new_block.terminator = Jump(targets[term.target])
        elif isinstance(term, Branch):
            new_term = None
            if fold and env is not None and env is not UNREACHABLE:
                cond = eval_operand(term.cond, env)
                if isinstance(cond, int):
                    taken = term.if_true if cond != 0 else term.if_false
                    new_term = Jump(targets[taken])
            if new_term is None:
                new_term = Branch(
                    term.cond, targets[term.if_true], targets[term.if_false]
                )
            new_block.terminator = new_term
        else:  # pragma: no cover - validated functions always terminate
            raise ValueError(f"block {vertex[0]} has no terminator")
        fn.add_block(new_block)

    fn.entry = labels[entry_vertex]
    return remove_unreachable(fn)


def remove_unreachable(fn: Function) -> Function:
    """Drop blocks not reachable from the entry (in place; returns ``fn``)."""
    reachable: set[str] = set()
    stack = [fn.entry]
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        stack.extend(fn.blocks[label].successors())
    for label in [l for l in fn.blocks if l not in reachable]:
        del fn.blocks[label]
    return fn


def fold_function(fn: Function, analysis: CondConstResult, name: Optional[str] = None) -> Function:
    """Constant-fold a plain (untraced) function using ``analysis``, which
    must be a result over ``GraphView.from_function(fn)``.

    This produces the paper's *Base* configuration for Table 2: original CFG,
    Wegman–Zadek folding only.
    """
    out = Function(name if name is not None else fn.name, fn.params)
    for label, block in fn.blocks.items():
        new_block = BasicBlock(label)
        env = analysis.input_env(label)
        for instr in block.instrs:
            folded = instr
            if env is not UNREACHABLE:
                env, value = transfer_instr(instr, env)
                if (
                    instr.is_pure
                    and isinstance(value, int)
                    and not (
                        isinstance(instr, Assign)
                        and isinstance(instr.src, Const)
                    )
                ):
                    folded = Assign(instr.dest, Const(value))
            if folded is instr:
                folded = copy_instr(instr)
            new_block.append(folded)
        term = block.terminator
        if isinstance(term, Branch) and env is not UNREACHABLE:
            cond = eval_operand(term.cond, env)
            if isinstance(cond, int):
                new_block.terminator = Jump(
                    term.if_true if cond != 0 else term.if_false
                )
            else:
                new_block.terminator = term.retargeted({})
        else:
            new_block.terminator = term.retargeted({})
        out.add_block(new_block)
    out.entry = fn.entry
    return remove_unreachable(out)
