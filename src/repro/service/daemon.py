"""The analysis daemon: job queue, worker pool, and HTTP front end.

:class:`AnalysisService` owns the process-wide shared state — one
:class:`~repro.pipeline.cache.ArtifactCache` every request worker reads and
writes, one always-enabled :class:`~repro.obs.MetricsRegistry` that
``/metrics`` scrapes — and a pool of worker threads draining a FIFO job
queue.  Identical concurrent submissions coalesce onto one job by request
:meth:`~repro.service.api.AnalysisRequest.fingerprint`, so a thundering
herd of the same analysis computes once and every client polls the same
job id.

Each job body runs under :func:`~repro.obs.request_scope`: the pipeline's
spans and counters land in a per-request tracer/registry (contextvar-
carried, so concurrent requests never interleave), which the worker then
merges into the service registry — that is how per-request cache hits and
solver visit counts accumulate into the Prometheus scrape without any
process-global mutation.

The HTTP layer is stdlib-only (:class:`http.server.ThreadingHTTPServer`):

========  =================  ==============================================
method    path               meaning
========  =================  ==============================================
GET       ``/healthz``       liveness + queue/worker/cache summary
GET       ``/metrics``       Prometheus text exposition (format 0.0.4)
POST      ``/v1/analyze``    submit an :class:`AnalysisRequest` → 202 + job
POST      ``/v1/lint``       submit a :class:`LintRequest` → 202 + job
POST      ``/v1/sweep``      submit a :class:`SweepRequest` → 202 + job
POST      ``/v1/diff``       submit a :class:`DiffRequest` → 202 + job
GET       ``/v1/jobs``       summaries of every known job
GET       ``/v1/jobs/<id>``  one job, including its result when done
========  =================  ==============================================

Request/response bodies are JSON; errors are ``{"error": ...}`` with 400
(bad request), 404 (unknown job/path), or 503 (shutting down).
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Union

from ..obs import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    Tracer,
    get_tracer,
    metrics_to_prometheus,
    request_scope,
)
from ..pipeline.cache import ArtifactCache
from .api import (
    AnalysisRequest,
    DiffRequest,
    LintRequest,
    SweepRequest,
    execute_diff,
    execute_lint,
    execute_request,
    execute_sweep,
)

Request = Union[AnalysisRequest, LintRequest, DiffRequest, SweepRequest]

#: Job lifecycle states, in order.
QUEUED, RUNNING, DONE, ERROR = "queued", "running", "done", "error"


class ServiceClosed(RuntimeError):
    """Raised by :meth:`AnalysisService.submit` once shutdown has begun."""


class Job:
    """One submitted request and its (eventual) outcome."""

    def __init__(self, job_id: str, request: Request) -> None:
        self.id = job_id
        self.request = request
        self.fingerprint = request.fingerprint()
        self.state = QUEUED
        #: How many *additional* identical submissions coalesced onto this
        #: job while it was queued or running.
        self.coalesced = 0
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        self.duration: Optional[float] = None
        self.finished = threading.Event()

    def payload(self, include_result: bool = True) -> dict:
        out = {
            "id": self.id,
            "kind": self.request.kind,
            "label": self.request.label(),
            "fingerprint": self.fingerprint,
            "state": self.state,
            "coalesced": self.coalesced,
            "error": self.error,
            "duration_s": None if self.duration is None else round(self.duration, 6),
        }
        if include_result:
            out["result"] = self.result
        return out


class AnalysisService:
    """Worker pool + shared cache + scrape registry behind the HTTP layer.

    Usable without HTTP (tests drive :meth:`submit`/:meth:`wait` directly);
    :func:`make_server` wires it to a :class:`ThreadingHTTPServer`.
    """

    def __init__(
        self,
        jobs: int = 2,
        cache_dir: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.cache_dir = cache_dir
        #: One cache shared by every request worker; ``memo`` single-flights
        #: concurrent identical artifacts, the disk layer (when configured)
        #: persists them across restarts and to sweep worker processes.
        self.cache = ArtifactCache(cache_dir)
        #: The scrape source: always enabled, service-owned — never the
        #: process global, so embedding the service in a test leaves ambient
        #: observability untouched.
        self.registry = MetricsRegistry(enabled=True)
        #: Optional span sink (``repro serve --trace``); disabled by default
        #: because span retention is unbounded while counters are not.
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._jobs: dict[str, Job] = {}
        #: fingerprint → queued-or-running job, the coalescing index.
        self._active: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        self._started = time.time()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{i}", daemon=True
            )
            for i in range(jobs)
        ]
        for w in self._workers:
            w.start()

    # -- submission --------------------------------------------------------

    def submit(self, request: Request) -> tuple[Job, bool]:
        """Queue a request; returns ``(job, coalesced)``.

        ``coalesced`` is True when an identical request was already queued
        or running — the caller shares that job instead of a new one.
        """
        request.validate_target()
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shutting down")
            existing = self._active.get(request.fingerprint())
            if existing is not None:
                existing.coalesced += 1
                self.registry.counter(
                    "service_coalesced", kind=request.kind
                ).inc()
                return existing, True
            self._next_id += 1
            job = Job(f"job-{self._next_id}", request)
            self._jobs[job.id] = job
            self._active[job.fingerprint] = job
            self.registry.counter("service_requests", kind=request.kind).inc()
        self._queue.put(job)
        return job, False

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[k] for k in sorted(self._jobs)]

    def wait(self, job: Job, timeout: Optional[float] = None) -> Job:
        if not job.finished.wait(timeout):
            raise TimeoutError(f"{job.id} still {job.state} after {timeout}s")
        return job

    # -- introspection -----------------------------------------------------

    def status(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            closed = self._closed
        return {
            "status": "shutting-down" if closed else "ok",
            "uptime_s": round(time.time() - self._started, 3),
            "workers": len(self._workers),
            "queue_depth": self._queue.qsize(),
            "jobs": states,
            "cache": self.cache.stats_snapshot().summary(),
            "cache_dir": self.cache_dir,
        }

    def metrics_text(self) -> str:
        """The Prometheus exposition ``/metrics`` serves, with queue/uptime
        gauges refreshed at scrape time."""
        self.registry.gauge("service_queue_depth").set(self._queue.qsize())
        self.registry.gauge("service_uptime_seconds").set(
            round(time.time() - self._started, 3)
        )
        return metrics_to_prometheus(self.registry.snapshot())

    # -- worker pool -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        job.state = RUNNING
        start = time.perf_counter()
        scope_tracer = Tracer()
        scope_registry = MetricsRegistry()
        try:
            with request_scope(scope_tracer, scope_registry, drain=False):
                with get_tracer().span(
                    "service.request",
                    job=job.id,
                    kind=job.request.kind,
                    label=job.request.label(),
                ):
                    if isinstance(job.request, AnalysisRequest):
                        job.result = execute_request(job.request, self.cache)
                    elif isinstance(job.request, LintRequest):
                        job.result = execute_lint(job.request, self.cache)
                    elif isinstance(job.request, DiffRequest):
                        job.result = execute_diff(job.request, self.cache)
                    else:
                        job.result = execute_sweep(job.request, self.cache_dir)
            job.state = DONE
        except Exception as exc:  # a failed job is a response, not a crash
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = ERROR
        finally:
            job.duration = time.perf_counter() - start
            # Drain the request scope into the shared scrape registry (and
            # span sink, when one is attached) — the explicit equivalent of
            # ``request_scope(drain=True)`` with a service-owned target
            # instead of the process globals.
            self.registry.merge_snapshot(scope_registry.snapshot())
            if self.tracer.enabled:
                self.tracer.absorb_records(scope_tracer.drain_records())
            self.registry.counter(
                "service_completed", kind=job.request.kind, state=job.state
            ).inc()
            self.registry.histogram("service_request_latency_ms").observe(
                job.duration * 1000.0
            )
            with self._lock:
                if self._active.get(job.fingerprint) is job:
                    del self._active[job.fingerprint]
            job.finished.set()

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, drain: bool = True) -> int:
        """Stop the pool; returns how many queued jobs were abandoned.

        With ``drain`` (the default) every queued job still runs before the
        workers exit — clients already holding a job id get their result.
        Without it, queued jobs are failed immediately with a shutdown
        error; the job *currently running* on each worker always completes
        either way (analysis stages are not interruptible mid-flight).
        """
        with self._lock:
            if self._closed:
                return 0
            self._closed = True
        abandoned = 0
        if not drain:
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if job is None:
                    continue
                job.error = "service shut down before the job ran"
                job.state = ERROR
                with self._lock:
                    if self._active.get(job.fingerprint) is job:
                        del self._active[job.fingerprint]
                job.finished.set()
                abandoned += 1
        for _ in self._workers:
            self._queue.put(None)
        for w in self._workers:
            w.join()
        return abandoned


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------


class ServiceHTTPRequestHandler(BaseHTTPRequestHandler):
    """Routes the endpoint table above onto an :class:`AnalysisService`.

    Bound to its service by :func:`make_server` (class attribute, so the
    stdlib server can instantiate the handler per connection).
    """

    service: AnalysisService
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    #: Flip on (``repro serve --verbose``) to restore stdlib request logging.
    verbose = False

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.verbose:
            super().log_message(format, *args)

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self._send(code, body, "application/json")

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body (expected a JSON object)")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, self.service.status())
        elif path == "/metrics":
            self._send(
                200, self.service.metrics_text().encode(), PROMETHEUS_CONTENT_TYPE
            )
        elif path == "/v1/jobs":
            self._send_json(
                200,
                {"jobs": [j.payload(include_result=False) for j in self.service.jobs()]},
            )
        elif path.startswith("/v1/jobs/"):
            job = self.service.job(path[len("/v1/jobs/"):])
            if job is None:
                self._error(404, f"no such job {path[len('/v1/jobs/'):]!r}")
            else:
                self._send_json(200, job.payload())
        else:
            self._error(404, f"no such endpoint {path!r}")

    def do_POST(self) -> None:  # noqa: N802
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/analyze":
            parse = AnalysisRequest.from_dict
        elif path == "/v1/lint":
            parse = LintRequest.from_dict
        elif path == "/v1/sweep":
            parse = SweepRequest.from_dict
        elif path == "/v1/diff":
            parse = DiffRequest.from_dict
        else:
            self._error(404, f"no such endpoint {path!r}")
            return
        try:
            request = parse(self._read_json_body())
        except ValueError as exc:
            self._error(400, str(exc))
            return
        try:
            job, coalesced = self.service.submit(request)
        except ValueError as exc:
            self._error(400, str(exc))
            return
        except ServiceClosed as exc:
            self._error(503, str(exc))
            return
        self._send_json(
            202,
            {
                "job": job.id,
                "state": job.state,
                "coalesced": coalesced,
                "poll": f"/v1/jobs/{job.id}",
            },
        )


def make_server(
    host: str, port: int, service: AnalysisService, verbose: bool = False
) -> ThreadingHTTPServer:
    """A :class:`ThreadingHTTPServer` serving ``service`` on ``host:port``
    (``port=0`` binds an ephemeral port — ``server.server_address`` has the
    real one, which is how tests run daemons concurrently)."""
    handler = type(
        "BoundServiceHandler",
        (ServiceHTTPRequestHandler,),
        {"service": service, "verbose": verbose},
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server
