"""Stdlib-``urllib`` client for the analysis daemon.

The same code path serves three callers: the ``repro submit`` CLI verb,
the service test suite, and anyone embedding the daemon.  It speaks the
JSON protocol of :mod:`repro.service.daemon` and hides the polling job
model behind :meth:`ServiceClient.analyze` / :meth:`ServiceClient.sweep`,
which submit and block until the job finishes.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping, Optional, Union

from .api import AnalysisRequest, DiffRequest, LintRequest, SweepRequest


class ServiceError(RuntimeError):
    """A failed service interaction: HTTP error, failed job, or timeout.

    ``status`` carries the HTTP status code when one applies (0 for
    connection-level failures, job failures, and timeouts).
    """

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talks to one ``repro serve`` daemon at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Mapping] = None
    ) -> tuple[int, str, Any]:
        """One HTTP exchange; returns ``(status, content_type, parsed_body)``
        (body left as text when the response is not JSON)."""
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                status = resp.status
                content_type = resp.headers.get("Content-Type", "")
                raw = resp.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                detail = json.loads(raw).get("error", raw.decode(errors="replace"))
            except (json.JSONDecodeError, AttributeError):
                detail = raw.decode(errors="replace") or exc.reason
            raise ServiceError(
                f"{method} {path} failed: {exc.code} {detail}", status=exc.code
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from None
        text = raw.decode()
        if content_type.startswith("application/json"):
            return status, content_type, json.loads(text)
        return status, content_type, text

    # -- endpoints ---------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")[2]

    def metrics(self) -> str:
        """The raw Prometheus exposition text."""
        return self._request("GET", "/metrics")[2]

    def metrics_content_type(self) -> str:
        return self._request("GET", "/metrics")[1]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")[2]["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")[2]

    def submit(
        self, request: Union[AnalysisRequest, Mapping[str, Any]]
    ) -> dict:
        """POST an analysis request; returns the 202 body (``job``, ``state``,
        ``coalesced``, ``poll``)."""
        body = request.to_dict() if isinstance(request, AnalysisRequest) else dict(request)
        return self._request("POST", "/v1/analyze", body)[2]

    def submit_lint(
        self, request: Union[LintRequest, Mapping[str, Any]]
    ) -> dict:
        body = request.to_dict() if isinstance(request, LintRequest) else dict(request)
        return self._request("POST", "/v1/lint", body)[2]

    def submit_sweep(
        self, request: Union[SweepRequest, Mapping[str, Any]]
    ) -> dict:
        body = request.to_dict() if isinstance(request, SweepRequest) else dict(request)
        return self._request("POST", "/v1/sweep", body)[2]

    def submit_diff(
        self, request: Union[DiffRequest, Mapping[str, Any]]
    ) -> dict:
        body = request.to_dict() if isinstance(request, DiffRequest) else dict(request)
        return self._request("POST", "/v1/diff", body)[2]

    # -- convenience -------------------------------------------------------

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.05
    ) -> dict:
        """Poll a job until it leaves the queue; returns the final job
        payload, raising :class:`ServiceError` if the job failed."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] == "done":
                return job
            if job["state"] == "error":
                raise ServiceError(f"{job_id} failed: {job['error']}")
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"{job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll)

    def analyze(
        self,
        request: Union[AnalysisRequest, Mapping[str, Any]],
        timeout: float = 300.0,
    ) -> dict:
        """Submit-and-wait; returns the analysis result payload."""
        return self.wait(self.submit(request)["job"], timeout)["result"]

    def lint(
        self,
        request: Union[LintRequest, Mapping[str, Any]],
        timeout: float = 300.0,
    ) -> dict:
        """Submit-and-wait; returns the ranked-findings lint payload."""
        return self.wait(self.submit_lint(request)["job"], timeout)["result"]

    def sweep(
        self,
        request: Union[SweepRequest, Mapping[str, Any]],
        timeout: float = 600.0,
    ) -> dict:
        return self.wait(self.submit_sweep(request)["job"], timeout)["result"]

    def diff(
        self,
        request: Union[DiffRequest, Mapping[str, Any]],
        timeout: float = 300.0,
    ) -> dict:
        """Submit-and-wait; returns the differential report payload."""
        return self.wait(self.submit_diff(request)["job"], timeout)["result"]

    def wait_ready(self, timeout: float = 10.0, poll: float = 0.05) -> dict:
        """Retry ``/healthz`` until the daemon accepts connections — the
        race-free way to follow a backgrounded ``repro serve``."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceError as exc:
                if exc.status:  # daemon answered with an HTTP error: it's up
                    raise
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"daemon at {self.base_url} not ready after {timeout}s"
                    ) from None
                time.sleep(poll)
