"""Analysis-as-a-service: the ``repro serve`` daemon and its client.

The service is the front door that lets many clients share one warm
process — one :class:`~repro.pipeline.cache.ArtifactCache`, one worker
pool — instead of paying compile + profile + qualify cold-start per CLI
invocation (see ``docs/SERVICE.md``):

* :mod:`repro.service.api` — the request/response schema and the
  deterministic execution core (:func:`execute_request`), shared between
  the daemon and the differential tests;
* :mod:`repro.service.daemon` — :class:`AnalysisService` (job queue,
  worker pool, request coalescing, per-request observability capture) and
  the stdlib :class:`ThreadingHTTPServer` front end;
* :mod:`repro.service.client` — the stdlib-``urllib`` client the tests
  and the ``repro submit`` CLI verb use.
"""

from .api import (
    AnalysisRequest,
    DiffRequest,
    LintRequest,
    SweepRequest,
    analysis_payload,
    comparable_payload,
    execute_diff,
    execute_lint,
    execute_request,
    execute_sweep,
    resolve_workload,
)
from .client import ServiceClient, ServiceError
from .daemon import AnalysisService, make_server

__all__ = [
    "AnalysisRequest",
    "AnalysisService",
    "DiffRequest",
    "LintRequest",
    "ServiceClient",
    "ServiceError",
    "SweepRequest",
    "analysis_payload",
    "comparable_payload",
    "execute_diff",
    "execute_lint",
    "execute_request",
    "execute_sweep",
    "make_server",
    "resolve_workload",
]
