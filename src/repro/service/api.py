"""Request/response schema and execution core of the analysis service.

An :class:`AnalysisRequest` names a program — a registered workload, a
``gen:key=value,...`` generator spec, or inline MiniC source — plus the
pipeline knobs (interpreter/dataflow/WZ engines, CA/CR coverage, checks
on/off).  :func:`execute_request` runs the full Ammons–Larus pipeline for
it (profile → qualify → dataflow → diagnostics) and renders a plain-JSON
payload.

The payload is **deterministic** apart from its ``timings`` key: the same
request against the same code produces bit-identical
:func:`comparable_payload` values whether it ran through the daemon, a
worker pool, or a direct in-process :class:`WorkloadRun` — that equation is
the service's differential test.  Requests hash to a content
:meth:`~AnalysisRequest.fingerprint`, which the daemon uses to coalesce
identical concurrent submissions onto one computation.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from ..dataflow import DATAFLOW_ENGINES, WZ_ENGINES
from ..evaluation.harness import DEFAULT_CA, DEFAULT_CR, Workload, WorkloadRun
from ..pipeline.cache import ArtifactCache, content_key

#: Bump when the payload shape changes incompatibly.
PAYLOAD_SCHEMA = 1

_ENGINES = ("reference", "compiled")


def _int_tuple(values: Any, what: str) -> tuple[int, ...]:
    try:
        return tuple(int(v) for v in values)
    except (TypeError, ValueError):
        raise ValueError(f"{what} must be a sequence of integers") from None


def _inputs_map(values: Any, what: str) -> dict[str, tuple[int, ...]]:
    if values is None:
        return {}
    if not isinstance(values, Mapping):
        raise ValueError(f"{what} must map array names to integer lists")
    return {
        str(name): _int_tuple(vals, f"{what}[{name!r}]")
        for name, vals in values.items()
    }


@dataclass(frozen=True)
class AnalysisRequest:
    """One analysis submission, normalized and content-addressable."""

    #: Registered target name (workload / handwritten / generator preset)
    #: or an ad-hoc ``gen:key=value,...`` spec.  Mutually exclusive with
    #: ``source``.
    target: Optional[str] = None
    #: Inline MiniC source (the ``repro submit --file`` path).
    source: Optional[str] = None
    #: Label for inline submissions (cosmetic; part of the fingerprint).
    name: str = "inline"
    #: Train-run arguments / input arrays for inline submissions.
    args: tuple[int, ...] = ()
    inputs: Mapping[str, Sequence[int]] = field(default_factory=dict)
    #: Ref-run arguments / inputs; default to the train ones.
    ref_args: Optional[tuple[int, ...]] = None
    ref_inputs: Optional[Mapping[str, Sequence[int]]] = None
    engine: str = "compiled"
    dataflow_engine: str = "auto"
    wz_engine: str = "auto"
    ca: float = DEFAULT_CA
    cr: float = DEFAULT_CR
    #: Run the invariant checkers over every pipeline stage.
    check: bool = True
    #: Also build and cost the base/optimized executables (Table 2) — two
    #: extra interpreter runs, so off by default.
    table2: bool = False

    kind = "analyze"

    def __post_init__(self) -> None:
        if (self.target is None) == (self.source is None):
            raise ValueError("give exactly one of 'target' or 'source'")
        if self.engine not in _ENGINES:
            raise ValueError(f"bad engine {self.engine!r}; choose from {_ENGINES}")
        if self.dataflow_engine not in DATAFLOW_ENGINES:
            raise ValueError(
                f"bad dataflow_engine {self.dataflow_engine!r}; "
                f"choose from {DATAFLOW_ENGINES}"
            )
        if self.wz_engine not in WZ_ENGINES:
            raise ValueError(
                f"bad wz_engine {self.wz_engine!r}; choose from {WZ_ENGINES}"
            )
        if not 0.0 <= float(self.ca) <= 1.0:
            raise ValueError(f"ca must be in [0, 1], got {self.ca}")
        if not 0.0 <= float(self.cr) <= 1.0:
            raise ValueError(f"cr must be in [0, 1], got {self.cr}")

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "AnalysisRequest":
        """Parse an untrusted JSON body; raises ``ValueError`` on bad input."""
        if not isinstance(d, Mapping):
            raise ValueError("request body must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown request field(s): {sorted(unknown)}")
        target = d.get("target")
        source = d.get("source")
        if target is not None and not isinstance(target, str):
            raise ValueError("'target' must be a string")
        if source is not None and not isinstance(source, str):
            raise ValueError("'source' must be a string")
        ref_args = d.get("ref_args")
        ref_inputs = d.get("ref_inputs")
        return cls(
            target=target,
            source=source,
            name=str(d.get("name", "inline")),
            args=_int_tuple(d.get("args", ()), "args"),
            inputs=_inputs_map(d.get("inputs"), "inputs"),
            ref_args=None if ref_args is None else _int_tuple(ref_args, "ref_args"),
            ref_inputs=None if ref_inputs is None else _inputs_map(ref_inputs, "ref_inputs"),
            engine=str(d.get("engine", "compiled")),
            dataflow_engine=str(d.get("dataflow_engine", "auto")),
            wz_engine=str(d.get("wz_engine", "auto")),
            ca=float(d.get("ca", DEFAULT_CA)),
            cr=float(d.get("cr", DEFAULT_CR)),
            check=bool(d.get("check", True)),
            table2=bool(d.get("table2", False)),
        )

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "source": self.source,
            "name": self.name,
            "args": list(self.args),
            "inputs": {k: list(v) for k, v in sorted(self.inputs.items())},
            "ref_args": None if self.ref_args is None else list(self.ref_args),
            "ref_inputs": (
                None
                if self.ref_inputs is None
                else {k: list(v) for k, v in sorted(self.ref_inputs.items())}
            ),
            "engine": self.engine,
            "dataflow_engine": self.dataflow_engine,
            "wz_engine": self.wz_engine,
            "ca": self.ca,
            "cr": self.cr,
            "check": self.check,
            "table2": self.table2,
        }

    def fingerprint(self) -> str:
        """Content hash identifying this request's full configuration —
        the coalescing key for identical concurrent submissions."""
        return content_key("service-analyze", self.to_dict())

    def label(self) -> str:
        return self.target if self.target is not None else self.name

    def validate_target(self) -> None:
        """Cheap submit-time validation of the *name* of the request (so an
        unknown target is a 400, not a failed job).  Inline source is only
        compiled worker-side."""
        if self.source is not None:
            if not self.source.strip():
                raise ValueError("inline 'source' is empty")
            return
        from ..workloads.generate import parse_genspec
        from ..workloads.matrix import TARGET_NAMES

        if self.target.startswith("gen:"):
            parse_genspec(self.target)  # raises ValueError on a bad spec
        elif self.target not in TARGET_NAMES:
            raise ValueError(
                f"unknown target {self.target!r}; choose from {TARGET_NAMES} "
                f"or a gen:key=value,... spec"
            )


@dataclass(frozen=True)
class LintRequest:
    """One analyzer submission: the ``/v1/lint`` body.

    Shares the target model of :class:`AnalysisRequest` (named targets or
    inline MiniC) plus the analyzer knob (``min_mass``).  Findings are
    deterministic, so the same request produces bit-identical
    :func:`comparable_payload` values through the daemon and the CLI."""

    target: Optional[str] = None
    source: Optional[str] = None
    name: str = "inline"
    args: tuple[int, ...] = ()
    inputs: Mapping[str, Sequence[int]] = field(default_factory=dict)
    ref_args: Optional[tuple[int, ...]] = None
    ref_inputs: Optional[Mapping[str, Sequence[int]]] = None
    engine: str = "compiled"
    dataflow_engine: str = "auto"
    wz_engine: str = "auto"
    ca: float = DEFAULT_CA
    cr: float = DEFAULT_CR
    #: Drop path findings below this profile-mass fraction.
    min_mass: float = 0.5

    kind = "lint"

    def __post_init__(self) -> None:
        if (self.target is None) == (self.source is None):
            raise ValueError("give exactly one of 'target' or 'source'")
        if self.engine not in _ENGINES:
            raise ValueError(f"bad engine {self.engine!r}; choose from {_ENGINES}")
        if self.dataflow_engine not in DATAFLOW_ENGINES:
            raise ValueError(
                f"bad dataflow_engine {self.dataflow_engine!r}; "
                f"choose from {DATAFLOW_ENGINES}"
            )
        if self.wz_engine not in WZ_ENGINES:
            raise ValueError(
                f"bad wz_engine {self.wz_engine!r}; choose from {WZ_ENGINES}"
            )
        if not 0.0 <= float(self.ca) <= 1.0:
            raise ValueError(f"ca must be in [0, 1], got {self.ca}")
        if not 0.0 <= float(self.cr) <= 1.0:
            raise ValueError(f"cr must be in [0, 1], got {self.cr}")
        if not 0.0 <= float(self.min_mass) <= 1.0:
            raise ValueError(
                f"min_mass must be in [0, 1], got {self.min_mass}"
            )

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "LintRequest":
        if not isinstance(d, Mapping):
            raise ValueError("request body must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown request field(s): {sorted(unknown)}")
        target = d.get("target")
        source = d.get("source")
        if target is not None and not isinstance(target, str):
            raise ValueError("'target' must be a string")
        if source is not None and not isinstance(source, str):
            raise ValueError("'source' must be a string")
        ref_args = d.get("ref_args")
        ref_inputs = d.get("ref_inputs")
        return cls(
            target=target,
            source=source,
            name=str(d.get("name", "inline")),
            args=_int_tuple(d.get("args", ()), "args"),
            inputs=_inputs_map(d.get("inputs"), "inputs"),
            ref_args=None if ref_args is None else _int_tuple(ref_args, "ref_args"),
            ref_inputs=None if ref_inputs is None else _inputs_map(ref_inputs, "ref_inputs"),
            engine=str(d.get("engine", "compiled")),
            dataflow_engine=str(d.get("dataflow_engine", "auto")),
            wz_engine=str(d.get("wz_engine", "auto")),
            ca=float(d.get("ca", DEFAULT_CA)),
            cr=float(d.get("cr", DEFAULT_CR)),
            min_mass=float(d.get("min_mass", 0.5)),
        )

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "source": self.source,
            "name": self.name,
            "args": list(self.args),
            "inputs": {k: list(v) for k, v in sorted(self.inputs.items())},
            "ref_args": None if self.ref_args is None else list(self.ref_args),
            "ref_inputs": (
                None
                if self.ref_inputs is None
                else {k: list(v) for k, v in sorted(self.ref_inputs.items())}
            ),
            "engine": self.engine,
            "dataflow_engine": self.dataflow_engine,
            "wz_engine": self.wz_engine,
            "ca": self.ca,
            "cr": self.cr,
            "min_mass": self.min_mass,
        }

    def fingerprint(self) -> str:
        return content_key("service-lint", self.to_dict())

    def label(self) -> str:
        return "lint:" + (self.target if self.target is not None else self.name)

    def validate_target(self) -> None:
        if self.source is not None:
            if not self.source.strip():
                raise ValueError("inline 'source' is empty")
            return
        from ..workloads.generate import parse_genspec
        from ..workloads.matrix import TARGET_NAMES

        if self.target.startswith("gen:"):
            parse_genspec(self.target)
        elif self.target not in TARGET_NAMES:
            raise ValueError(
                f"unknown target {self.target!r}; choose from {TARGET_NAMES} "
                f"or a gen:key=value,... spec"
            )


@dataclass(frozen=True)
class DiffRequest:
    """One incremental re-analysis: the ``/v1/diff`` body.

    ``target``/``source`` name the *old* version exactly like the other
    request kinds; the *new* version is either ``new_source`` (inline
    MiniC) or — with ``seed_edit`` — the old source with the deterministic
    one-function :func:`~repro.pipeline.incremental.seeded_edit` applied
    (the CI smoke / benchmark workload).  The differential report is
    deterministic outside ``timings``, so a daemon submission and a direct
    ``repro diff`` agree bit-for-bit; the daemon coalesces concurrent
    submissions by the fingerprint of the (old, new) pair."""

    target: Optional[str] = None
    source: Optional[str] = None
    #: The edited program version.  Mutually exclusive with ``seed_edit``.
    new_source: Optional[str] = None
    #: Apply the deterministic seeded one-function edit to the old source.
    seed_edit: bool = False
    #: Restrict the seeded edit to this function (default: the first).
    edit_function: Optional[str] = None
    name: str = "inline"
    args: tuple[int, ...] = ()
    inputs: Mapping[str, Sequence[int]] = field(default_factory=dict)
    ref_args: Optional[tuple[int, ...]] = None
    ref_inputs: Optional[Mapping[str, Sequence[int]]] = None
    engine: str = "compiled"
    dataflow_engine: str = "auto"
    wz_engine: str = "auto"
    ca: float = DEFAULT_CA
    cr: float = DEFAULT_CR
    min_mass: float = 0.5
    #: Run the pipeline checkers on both versions and diff their findings.
    check: bool = False

    kind = "diff"

    def __post_init__(self) -> None:
        if (self.target is None) == (self.source is None):
            raise ValueError("give exactly one of 'target' or 'source'")
        if (self.new_source is None) == (not self.seed_edit):
            raise ValueError(
                "give exactly one of 'new_source' or 'seed_edit'"
            )
        if self.engine not in _ENGINES:
            raise ValueError(f"bad engine {self.engine!r}; choose from {_ENGINES}")
        if self.dataflow_engine not in DATAFLOW_ENGINES:
            raise ValueError(
                f"bad dataflow_engine {self.dataflow_engine!r}; "
                f"choose from {DATAFLOW_ENGINES}"
            )
        if self.wz_engine not in WZ_ENGINES:
            raise ValueError(
                f"bad wz_engine {self.wz_engine!r}; choose from {WZ_ENGINES}"
            )
        if not 0.0 <= float(self.ca) <= 1.0:
            raise ValueError(f"ca must be in [0, 1], got {self.ca}")
        if not 0.0 <= float(self.cr) <= 1.0:
            raise ValueError(f"cr must be in [0, 1], got {self.cr}")
        if not 0.0 <= float(self.min_mass) <= 1.0:
            raise ValueError(
                f"min_mass must be in [0, 1], got {self.min_mass}"
            )

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "DiffRequest":
        if not isinstance(d, Mapping):
            raise ValueError("request body must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown request field(s): {sorted(unknown)}")
        for key in ("target", "source", "new_source", "edit_function"):
            value = d.get(key)
            if value is not None and not isinstance(value, str):
                raise ValueError(f"'{key}' must be a string")
        ref_args = d.get("ref_args")
        ref_inputs = d.get("ref_inputs")
        return cls(
            target=d.get("target"),
            source=d.get("source"),
            new_source=d.get("new_source"),
            seed_edit=bool(d.get("seed_edit", False)),
            edit_function=d.get("edit_function"),
            name=str(d.get("name", "inline")),
            args=_int_tuple(d.get("args", ()), "args"),
            inputs=_inputs_map(d.get("inputs"), "inputs"),
            ref_args=None if ref_args is None else _int_tuple(ref_args, "ref_args"),
            ref_inputs=None if ref_inputs is None else _inputs_map(ref_inputs, "ref_inputs"),
            engine=str(d.get("engine", "compiled")),
            dataflow_engine=str(d.get("dataflow_engine", "auto")),
            wz_engine=str(d.get("wz_engine", "auto")),
            ca=float(d.get("ca", DEFAULT_CA)),
            cr=float(d.get("cr", DEFAULT_CR)),
            min_mass=float(d.get("min_mass", 0.5)),
            check=bool(d.get("check", False)),
        )

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "source": self.source,
            "new_source": self.new_source,
            "seed_edit": self.seed_edit,
            "edit_function": self.edit_function,
            "name": self.name,
            "args": list(self.args),
            "inputs": {k: list(v) for k, v in sorted(self.inputs.items())},
            "ref_args": None if self.ref_args is None else list(self.ref_args),
            "ref_inputs": (
                None
                if self.ref_inputs is None
                else {k: list(v) for k, v in sorted(self.ref_inputs.items())}
            ),
            "engine": self.engine,
            "dataflow_engine": self.dataflow_engine,
            "wz_engine": self.wz_engine,
            "ca": self.ca,
            "cr": self.cr,
            "min_mass": self.min_mass,
            "check": self.check,
        }

    def fingerprint(self) -> str:
        return content_key("service-diff", self.to_dict())

    def label(self) -> str:
        return "diff:" + (self.target if self.target is not None else self.name)

    def validate_target(self) -> None:
        if self.new_source is not None and not self.new_source.strip():
            raise ValueError("'new_source' is empty")
        if self.source is not None:
            if not self.source.strip():
                raise ValueError("inline 'source' is empty")
            return
        from ..workloads.generate import parse_genspec
        from ..workloads.matrix import TARGET_NAMES

        if self.target.startswith("gen:"):
            parse_genspec(self.target)
        elif self.target not in TARGET_NAMES:
            raise ValueError(
                f"unknown target {self.target!r}; choose from {TARGET_NAMES} "
                f"or a gen:key=value,... spec"
            )


@dataclass(frozen=True)
class SweepRequest:
    """A figure/table coverage sweep, batched onto the
    :class:`~repro.pipeline.driver.ParallelDriver` pool."""

    workloads: tuple[str, ...] = ()
    ca_values: tuple[float, ...] = ()
    cr: float = DEFAULT_CR
    #: Process-pool width the driver fans out with (1 = serial in-worker).
    jobs: int = 1
    check: bool = False
    dataflow_engine: str = "auto"
    wz_engine: str = "auto"

    kind = "sweep"

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SweepRequest":
        if not isinstance(d, Mapping):
            raise ValueError("request body must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown request field(s): {sorted(unknown)}")
        jobs = int(d.get("jobs", 1))
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        return cls(
            workloads=tuple(str(w) for w in d.get("workloads", ())),
            ca_values=tuple(float(c) for c in d.get("ca_values", ())),
            cr=float(d.get("cr", DEFAULT_CR)),
            jobs=jobs,
            check=bool(d.get("check", False)),
            dataflow_engine=str(d.get("dataflow_engine", "auto")),
            wz_engine=str(d.get("wz_engine", "auto")),
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self) | {
            "workloads": list(self.workloads),
            "ca_values": list(self.ca_values),
        }

    def fingerprint(self) -> str:
        return content_key("service-sweep", self.to_dict())

    def label(self) -> str:
        return "sweep:" + ",".join(self.workloads or ("all",))

    def validate_target(self) -> None:
        from ..workloads import WORKLOAD_NAMES

        unknown = [w for w in self.workloads if w not in WORKLOAD_NAMES]
        if unknown:
            raise ValueError(
                f"unknown workload(s) {unknown}; choose from {WORKLOAD_NAMES}"
            )


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


def resolve_workload(
    request: "AnalysisRequest | LintRequest | DiffRequest",
) -> Workload:
    """The request's program as a :class:`Workload` (named targets resolve
    through the matrix registry; inline source becomes an ad-hoc one)."""
    if request.target is not None:
        from ..workloads.matrix import resolve_target

        return resolve_target(request.target)
    return Workload(
        name=request.name,
        source=request.source,
        train_args=tuple(request.args),
        train_inputs={k: list(v) for k, v in request.inputs.items()},
        ref_args=tuple(request.ref_args if request.ref_args is not None else request.args),
        ref_inputs={
            k: list(v)
            for k, v in (
                request.ref_inputs
                if request.ref_inputs is not None
                else request.inputs
            ).items()
        },
        description="inline service submission",
    )


def _finite(value: float) -> Optional[float]:
    return value if math.isfinite(value) else None


def analysis_payload(
    run: WorkloadRun, ca: float, cr: float, table2: bool = False
) -> dict:
    """The response body for one analyzed run.

    Everything outside the ``timings`` key is a deterministic function of
    the workload definition and the request configuration — the property
    the daemon-vs-direct differential tests assert bit-for-bit.
    """
    agg = run.aggregate_classification(ca, cr)
    orig, hpg, red = run.graph_sizes(ca, cr)
    summary = {
        "cfg_nodes": run.cfg_nodes,
        "executed_paths": run.executed_paths,
        "hot_paths": run.hot_path_count(ca),
        "graph_sizes": {"original": orig, "traced": hpg, "reduced": red},
        "classification": dataclasses.asdict(agg),
        # The paper's headline: qualified vs. iterative (WZ) non-local
        # constants — how much sharper path qualification made the analysis.
        "sharpening": {
            "iterative_nonlocal": agg.iterative_nonlocal,
            "qualified_nonlocal": agg.qualified_nonlocal,
            "improvement_ratio": _finite(agg.improvement_ratio),
        },
    }
    if table2:
        row = run.table2(ca, cr)
        summary["table2"] = {
            "base_cost": row.base_cost,
            "optimized_cost": row.optimized_cost,
            "speedup": row.speedup,
        }
    payload = {
        "schema": PAYLOAD_SCHEMA,
        "workload": run.workload.name,
        "config": {
            "engine": run.engine,
            "dataflow_engine": run.dataflow_engine,
            "wz_engine": run.wz_engine,
            "ca": ca,
            "cr": cr,
            "check": run.checker.enabled,
        },
        "summary": summary,
        "diagnostics": None,
        "timings": {k: round(v, 6) for k, v in run.timings.items()},
    }
    if run.checker.enabled:
        diags = run.checker.diagnostics
        payload["diagnostics"] = {
            "summary": diags.summary(),
            "counts": diags.counts(),
            "has_errors": diags.has_errors,
            "records": diags.to_dicts(),
        }
    return payload


def execute_request(
    request: AnalysisRequest, cache: Optional[ArtifactCache] = None
) -> dict:
    """Run the full pipeline for one request; the daemon's worker body and
    the direct-path oracle of the differential tests."""
    from ..pipeline.cached_run import make_run

    workload = resolve_workload(request)
    run = make_run(
        workload,
        cache,
        engine=request.engine,
        check=request.check,
        dataflow_engine=request.dataflow_engine,
        wz_engine=request.wz_engine,
    )
    return analysis_payload(run, request.ca, request.cr, table2=request.table2)


def execute_lint(
    request: LintRequest, cache: Optional[ArtifactCache] = None
) -> dict:
    """Run the profile-qualified analyzer for one request.

    Findings come back ranked exactly as ``repro lint`` prints them, so a
    daemon submission and the direct CLI agree bit-for-bit on everything
    outside ``timings``."""
    from ..pipeline.cached_run import make_run

    workload = resolve_workload(request)
    run = make_run(
        workload,
        cache,
        engine=request.engine,
        check=False,
        dataflow_engine=request.dataflow_engine,
        wz_engine=request.wz_engine,
    )
    findings = run.lint(request.ca, request.cr, request.min_mass)
    from ..checks.diagnostics import Diagnostics

    counts = Diagnostics(list(findings)).counts()
    return {
        "schema": PAYLOAD_SCHEMA,
        "kind": "lint",
        "workload": run.workload.name,
        "config": {
            "engine": run.engine,
            "dataflow_engine": run.dataflow_engine,
            "wz_engine": run.wz_engine,
            "ca": request.ca,
            "cr": request.cr,
            "min_mass": request.min_mass,
        },
        "findings": [d.to_dict() for d in findings],
        "counts": counts,
        "timings": {k: round(v, 6) for k, v in run.timings.items()},
    }


def execute_diff(
    request: DiffRequest, cache: Optional[ArtifactCache] = None
) -> dict:
    """Run one incremental old→new re-analysis for a request.

    The wrapped differential report is deterministic (its own ``timings``
    section is hoisted to the payload's top-level ``timings`` key), so the
    daemon and a direct ``repro diff`` agree bit-for-bit on
    :func:`comparable_payload`."""
    import dataclasses as _dc

    from ..pipeline.incremental import diff_workloads, seeded_edit

    old = resolve_workload(request)
    new_source = (
        request.new_source
        if request.new_source is not None
        else seeded_edit(old.source, request.edit_function)
    )
    new = _dc.replace(old, source=new_source)
    report = diff_workloads(
        old,
        new,
        cache,
        ca=request.ca,
        cr=request.cr,
        min_mass=request.min_mass,
        engine=request.engine,
        check=request.check,
        dataflow_engine=request.dataflow_engine,
        wz_engine=request.wz_engine,
    )
    return {
        "schema": PAYLOAD_SCHEMA,
        "kind": "diff",
        "workload": report["workload"],
        "report": {k: v for k, v in report.items() if k != "timings"},
        "timings": report["timings"],
    }


def execute_sweep(
    request: SweepRequest, cache_dir: Optional[str] = None
) -> dict:
    """Run a coverage sweep through :class:`ParallelDriver`; its rendered
    artifacts are byte-identical regardless of the pool width."""
    from ..evaluation.harness import CA_SWEEP
    from ..pipeline.driver import ParallelDriver
    from ..workloads import WORKLOAD_NAMES

    driver = ParallelDriver(
        jobs=request.jobs,
        cache_dir=cache_dir,
        cr=request.cr,
        check=request.check,
        dataflow_engine=request.dataflow_engine,
        wz_engine=request.wz_engine,
    )
    workloads = request.workloads or WORKLOAD_NAMES
    ca_values = request.ca_values or CA_SWEEP
    result = driver.sweep(workloads, ca_values)
    return {
        "schema": PAYLOAD_SCHEMA,
        "workloads": list(workloads),
        "ca_values": list(ca_values),
        "artifacts": result.artifacts(),
        "cache": result.cache_stats.summary(),
        "diagnostics": {
            "summary": result.diagnostics.summary(),
            "has_errors": result.diagnostics.has_errors,
            "records": result.diagnostics.to_dicts(),
        },
    }


def comparable_payload(payload: Mapping) -> dict:
    """The deterministic part of a payload: everything except wall-clock
    ``timings`` — what daemon-vs-direct differential tests compare."""
    return {k: v for k, v in payload.items() if k != "timings"}
