"""Synthetic SPEC95-like workloads.

The paper evaluates on seven C SPEC95 benchmarks; we cannot ship SPEC, so
each workload here is a small MiniC program that echoes its namesake's
control-flow character:

* ``compress95`` — a tight LZW-flavoured kernel: one dominant loop path, a
  rare "emit code" path (the paper: 11 blocks carry virtually all non-local
  constants).
* ``go95`` — the outlier: several independent data-driven branches per
  iteration, so the number of executed Ball–Larus paths is far larger than
  in any other workload, and tracing blows the graph up accordingly.
* ``ijpeg95`` — nested block-transform loops with a per-block quality mode.
* ``li95`` — an interpreter dispatch loop over a bytecode stream with a
  skewed opcode distribution.
* ``m88ksim95`` — a CPU simulator: fetch, field decode, execute dispatch.
* ``perl95`` — a character-class scanner / tokenizer state machine.
* ``vortex95`` — record validation with chained predicates and rare error
  paths.

Every workload follows the paper's exploitable pattern: branch legs bind
small constants (step sizes, biases, table bases) that are re-used later on
the same acyclic path, so path-qualified analysis finds constants that
Wegman–Zadek's merges destroy.  All inputs are generated deterministically
from fixed seeds; ``train`` and ``ref`` use different seeds and sizes, as in
the paper's methodology.
"""

from __future__ import annotations

import random

from ..evaluation.harness import Workload

__all__ = ["all_workloads", "get_workload", "WORKLOAD_NAMES"]


def _rand(seed: int) -> random.Random:
    return random.Random(seed)


# ---------------------------------------------------------------------------
# compress95
# ---------------------------------------------------------------------------

_COMPRESS_SRC = """
// compress95: LZW-flavoured compression kernel.
global input[4096];
global table[512];
global output[4096];

func hash_probe(key) {
  var h = (key * 37 + 11) % 509;
  if (h < 0) { h = h + 509; }
  return table[h];
}

func compress(n) {
  var i = 0;
  var prev = 0;
  var emitted = 0;
  var checksum = 0;
  var rounds = 3;             // constant; defined outside the loop body
  while (i < n) {
    var byte = input[i];
    var key = prev * 256 + byte;
    var probe = hash_probe(key);
    var step;
    var bonus;
    if (probe == key) {
      // Hot path: the sequence extends the current match.
      step = 1;
      bonus = 3;
      prev = byte;
    } else {
      // Cold path: emit a code and restart the match.
      step = 2;
      bonus = 7;
      output[emitted % 4096] = prev;
      emitted = emitted + 1;
      prev = 0;
    }
    // Iterative constant: rounds is constant on every path, so WZ finds
    // base_credit even though rounds is defined in another block.
    var base_credit = rounds * 5;
    // Qualified constants: step/bonus are per-path; WZ merges them to
    // bottom, but each duplicate of this block keeps them.
    var credit = bonus * 4 + step;
    var adjusted = credit + bonus * 2;
    checksum = checksum + adjusted + base_credit + (byte & 15);
    i = i + step;
  }
  print(checksum, emitted);
  return checksum;
}

func main(n) {
  var total = compress(n);
  return total;
}
"""


def _compress_inputs(seed: int, n: int) -> dict[str, list[int]]:
    rng = _rand(seed)
    data = []
    # Long runs of repeated bytes make the "match" path hot.
    while len(data) < n:
        byte = rng.randrange(0, 64)
        run = rng.randrange(6, 24)
        data.extend([byte] * run)
    data = data[:n]
    table = [0] * 512
    # Pre-seed the table so `probe == key` holds for repeated bytes.
    for byte in range(64):
        key = byte * 256 + byte
        h = (key * 37 + 11) % 509
        table[h] = key
    return {"input": data, "table": table}


def _compress_workload() -> Workload:
    train_n, ref_n = 700, 2600
    return Workload(
        name="compress95",
        source=_COMPRESS_SRC,
        train_args=(train_n,),
        train_inputs=_compress_inputs(101, train_n),
        ref_args=(ref_n,),
        ref_inputs=_compress_inputs(202, ref_n),
        description="LZW-flavoured kernel; one dominant hot path",
    )


# ---------------------------------------------------------------------------
# go95
# ---------------------------------------------------------------------------

_GO_SRC = """
// go95: branchy move evaluator with many executed paths.
global board[4096];
global liberty[4096];
global influence[4096];

func evaluate(pos) {
  var komi = 6;
  var stone = board[pos];
  var libs = liberty[pos];
  var infl = influence[pos];
  var weight;
  var base;
  var margin;
  var scale;
  // Four independent data-driven branches: up to 16 paths per call,
  // each binding different constants that the tail consumes.
  if (stone == 1) { weight = 8; } else { weight = 3; }
  if (libs > 2) { base = 10; } else { base = 40; }
  if (infl > 0) { margin = 2; } else { margin = 9; }
  if ((pos & 7) == 0) { scale = 5; } else { scale = 1; }
  var norm = komi * 2 + 1;        // iterative non-local constant
  var score = weight * base + margin;
  var adjusted = score * scale + weight;
  if (adjusted > 300) {
    adjusted = adjusted - base;
  }
  return adjusted + libs + norm;
}

func scan_region(start, len) {
  var k = 0;
  var acc = 0;
  while (k < len) {
    var v = evaluate(start + k);
    if (v > 120) {
      acc = acc + v;
    } else {
      acc = acc + 1;
    }
    k = k + 1;
  }
  return acc;
}

func main(regions) {
  var r = 0;
  var total = 0;
  while (r < regions) {
    var start = r * 16;
    total = total + scan_region(start, 16);
    r = r + 1;
  }
  print(total);
  return total;
}
"""


def _go_inputs(seed: int, cells: int) -> dict[str, list[int]]:
    rng = _rand(seed)
    # Near-uniform feature distribution => many path combinations executed.
    board = [rng.randrange(0, 3) for _ in range(cells)]
    liberty = [rng.randrange(0, 5) for _ in range(cells)]
    influence = [rng.randrange(-2, 3) for _ in range(cells)]
    return {"board": board, "liberty": liberty, "influence": influence}


def _go_workload() -> Workload:
    train_regions, ref_regions = 40, 160
    return Workload(
        name="go95",
        source=_GO_SRC,
        train_args=(train_regions,),
        train_inputs=_go_inputs(303, 4096),
        ref_args=(ref_regions,),
        ref_inputs=_go_inputs(404, 4096),
        description="wide branching; the path-count outlier, as go was",
    )


# ---------------------------------------------------------------------------
# ijpeg95
# ---------------------------------------------------------------------------

_IJPEG_SRC = """
// ijpeg95: blocked integer transform with per-block quality modes.
global pixels[4096];
global quality[512];
global coeffs[4096];

func quantize_block(base, mode) {
  var j = 0;
  var energy = 0;
  var dctsize = 8;
  while (j < 8) {
    var stride = dctsize * 2;   // iterative non-local constant
    var p = pixels[base + j];
    // The mode dispatch sits inside the loop (as a per-coefficient
    // quality decision), so every acyclic loop path binds q/rounding/
    // dcshift to constants that the tail of the same path consumes.
    var q;
    var rounding;
    var dcshift;
    if (mode == 0) {
      q = 16; rounding = 8; dcshift = 128;
    } else {
      if (mode == 1) {
        q = 8; rounding = 4; dcshift = 128;
      } else {
        q = 4; rounding = 2; dcshift = 0;
      }
    }
    var divisor = q * 2 - rounding / 2;
    var centered = p - dcshift;
    var quantized = (centered + rounding) / divisor;
    coeffs[base + j] = quantized;
    energy = energy + quantized * quantized + stride;
    j = j + 1;
  }
  return energy;
}

func main(blocks) {
  var b = 0;
  var total = 0;
  while (b < blocks) {
    var mode = quality[b];
    total = total + quantize_block(b * 8, mode);
    b = b + 1;
  }
  print(total);
  return total;
}
"""


def _ijpeg_inputs(seed: int, blocks: int) -> dict[str, list[int]]:
    rng = _rand(seed)
    pixels = [rng.randrange(0, 256) for _ in range(blocks * 8)]
    # Mode 0 dominates (the "default quality" hot path).
    quality = [0 if rng.random() < 0.85 else rng.randrange(1, 3) for _ in range(blocks)]
    return {"pixels": pixels, "quality": quality}


def _ijpeg_workload() -> Workload:
    train_blocks, ref_blocks = 60, 260
    return Workload(
        name="ijpeg95",
        source=_IJPEG_SRC,
        train_args=(train_blocks,),
        train_inputs=_ijpeg_inputs(505, 512),
        ref_args=(ref_blocks,),
        ref_inputs=_ijpeg_inputs(606, 512),
        description="nested transform loops, mode-dependent quantization",
    )


# ---------------------------------------------------------------------------
# li95
# ---------------------------------------------------------------------------

_LI_SRC = """
// li95: bytecode interpreter dispatch loop (a lisp-ish eval core).
global code[8192];
global operand[8192];
global stackmem[256];

func eval_loop(n) {
  var pc = 0;
  var sp = 0;
  var acc = 0;
  var steps = 0;
  var fuel = 4;
  while (pc < n) {
    var basecost = fuel * 2 + 1;  // iterative non-local constant
    var op = code[pc];
    var arg = operand[pc];
    var cost;
    var delta;
    // Dispatch chain: each opcode binds its own constant parameters.
    if (op == 0) {            // PUSH-CONST
      stackmem[sp % 256] = arg;
      sp = sp + 1;
      cost = 1; delta = 2;
    } else { if (op == 1) {   // ADD
      acc = acc + arg;
      cost = 1; delta = 3;
    } else { if (op == 2) {   // CAR-ish: load
      acc = stackmem[arg % 256];
      cost = 2; delta = 5;
    } else { if (op == 3) {   // CONS-ish: store
      stackmem[arg % 256] = acc;
      cost = 3; delta = 7;
    } else { if (op == 4) {   // GC tick (rare)
      sp = 0;
      cost = 9; delta = 11;
    } else {                  // NOP
      cost = 1; delta = 1;
    } } } } }
    // cost/delta are constants along each dispatch path.
    var charge = cost * 6 + delta;
    var total_charge = charge + cost;
    steps = steps + total_charge + basecost;
    pc = pc + 1;
  }
  print(steps, acc, sp);
  return steps;
}

func main(n) {
  return eval_loop(n);
}
"""


def _li_inputs(seed: int, n: int) -> dict[str, list[int]]:
    rng = _rand(seed)
    # Skewed opcode mix: PUSH/ADD dominate, GC is rare.
    weights = [(0, 40), (1, 35), (2, 12), (3, 8), (4, 2), (5, 3)]
    ops = [op for op, w in weights for _ in range(w)]
    code = [rng.choice(ops) for _ in range(n)]
    operands = [rng.randrange(0, 256) for _ in range(n)]
    return {"code": code, "operand": operands}


def _li_workload() -> Workload:
    train_n, ref_n = 900, 3600
    return Workload(
        name="li95",
        source=_LI_SRC,
        train_args=(train_n,),
        train_inputs=_li_inputs(707, train_n),
        ref_args=(ref_n,),
        ref_inputs=_li_inputs(808, ref_n),
        description="interpreter dispatch; skewed opcode distribution",
    )


# ---------------------------------------------------------------------------
# m88ksim95
# ---------------------------------------------------------------------------

_M88K_SRC = """
// m88ksim95: a toy CPU simulator - fetch, decode fields, execute.
global imem[4096];
global regs[32];
global dmem[1024];

func step(word) {
  var pipeline = 2;
  var opcode = (word >> 12) & 15;
  var rd = (word >> 8) & 15;
  var rs = (word >> 4) & 15;
  var imm = word & 15;
  var cycles;
  var unit;
  if (opcode == 0) {            // ADD
    regs[rd] = regs[rs] + imm;
    cycles = 1; unit = 2;
  } else { if (opcode == 1) {   // SUB
    regs[rd] = regs[rs] - imm;
    cycles = 1; unit = 2;
  } else { if (opcode == 2) {   // LD
    regs[rd] = dmem[(regs[rs] + imm) & 1023];
    cycles = 3; unit = 5;
  } else { if (opcode == 3) {   // ST
    dmem[(regs[rs] + imm) & 1023] = regs[rd];
    cycles = 3; unit = 5;
  } else { if (opcode == 4) {   // MUL (slower unit)
    regs[rd] = regs[rs] * imm;
    cycles = 6; unit = 7;
  } else {                      // NOP / unknown
    cycles = 1; unit = 1;
  } } } } }
  // The timing model consumes per-opcode constants (qualified) plus a
  // pipeline overhead WZ can find (iterative non-local).
  var overhead = pipeline * 3;
  var charge = cycles * 4 + unit;
  var issue = charge + cycles;
  return issue + overhead;
}

func simulate(n) {
  var pc = 0;
  var clock = 0;
  while (pc < n) {
    var word = imem[pc];
    clock = clock + step(word);
    pc = pc + 1;
  }
  print(clock);
  return clock;
}

func main(n) {
  return simulate(n);
}
"""


def _m88k_inputs(seed: int, n: int) -> dict[str, list[int]]:
    rng = _rand(seed)
    # ADD/LD dominate, like integer SPEC traces.
    weights = [(0, 40), (1, 15), (2, 25), (3, 10), (4, 5), (5, 5)]
    ops = [op for op, w in weights for _ in range(w)]
    imem = []
    for _ in range(n):
        op = rng.choice(ops)
        rd = rng.randrange(0, 16)
        rs = rng.randrange(0, 16)
        imm = rng.randrange(0, 16)
        imem.append((op << 12) | (rd << 8) | (rs << 4) | imm)
    dmem = [rng.randrange(0, 100) for _ in range(1024)]
    return {"imem": imem, "dmem": dmem}


def _m88k_workload() -> Workload:
    train_n, ref_n = 800, 3200
    return Workload(
        name="m88ksim95",
        source=_M88K_SRC,
        train_args=(train_n,),
        train_inputs=_m88k_inputs(909, train_n),
        ref_args=(ref_n,),
        ref_inputs=_m88k_inputs(1010, ref_n),
        description="CPU simulator fetch/decode/execute loop",
    )


# ---------------------------------------------------------------------------
# perl95
# ---------------------------------------------------------------------------

_PERL_SRC = """
// perl95: tokenizer / scanner state machine over a character stream.
global text[8192];
global tokens[8192];

func scan(n) {
  var i = 0;
  var ntok = 0;
  var state = 0;
  var hashv = 0;
  var salt = 7;
  while (i < n) {
    var seed2 = salt * salt - 3;  // iterative non-local constant
    var ch = text[i];
    var klass;
    var weight;
    // Character classification chain.
    if (ch == 32) {                       // space
      klass = 0; weight = 1;
    } else { if (ch >= 97 && ch <= 122) { // lower alpha
      klass = 1; weight = 4;
    } else { if (ch >= 48 && ch <= 57) {  // digit
      klass = 2; weight = 3;
    } else { if (ch == 36 || ch == 64) {  // sigil ($, @)
      klass = 3; weight = 9;
    } else {                              // punctuation
      klass = 4; weight = 2;
    } } } }
    var bump = weight * 8 + klass + seed2;
    if (klass == 0) {
      if (state != 0) {
        tokens[ntok % 8192] = hashv;
        ntok = ntok + 1;
        hashv = 0;
      }
      state = 0;
    } else {
      hashv = (hashv * 31 + ch + bump) % 65536;
      state = 1;
    }
    i = i + 1;
  }
  print(ntok, hashv);
  return ntok;
}

func main(n) {
  return scan(n);
}
"""


def _perl_inputs(seed: int, n: int) -> dict[str, list[int]]:
    rng = _rand(seed)
    text = []
    while len(text) < n:
        # Words of lowercase letters separated by spaces, some digits/sigils.
        r = rng.random()
        if r < 0.72:
            text.extend(rng.randrange(97, 123) for _ in range(rng.randrange(2, 8)))
        elif r < 0.84:
            text.extend(rng.randrange(48, 58) for _ in range(rng.randrange(1, 4)))
        elif r < 0.90:
            text.append(rng.choice([36, 64]))
        else:
            text.append(rng.choice([43, 45, 59, 123, 125]))
        text.append(32)
    return {"text": text[:n]}


def _perl_workload() -> Workload:
    train_n, ref_n = 1200, 4800
    return Workload(
        name="perl95",
        source=_PERL_SRC,
        train_args=(train_n,),
        train_inputs=_perl_inputs(1111, train_n),
        ref_args=(ref_n,),
        ref_inputs=_perl_inputs(1212, ref_n),
        description="tokenizer state machine over characters",
    )


# ---------------------------------------------------------------------------
# vortex95
# ---------------------------------------------------------------------------

_VORTEX_SRC = """
// vortex95: object-database record validation and indexing.
global rec_kind[4096];
global rec_size[4096];
global rec_owner[4096];
global index_a[4096];
global index_b[4096];

func validate(r) {
  var audit = 5;
  var kind = rec_kind[r];
  var size = rec_size[r];
  var owner = rec_owner[r];
  var limit;
  var slot;
  var penalty;
  if (kind == 1) {
    limit = 64; slot = 3; penalty = 2;
  } else { if (kind == 2) {
    limit = 128; slot = 5; penalty = 4;
  } else {
    limit = 16; slot = 7; penalty = 8;
  } }
  var ledger = audit * 4 + 2;   // iterative non-local constant
  var fee = slot * 10 + penalty + ledger / 2;
  if (size > limit || owner < 0) {
    // Rare error path.
    return 0 - fee;
  }
  index_a[(r * slot) % 4096] = size;
  index_b[(r + fee) % 4096] = owner;
  return fee + size;
}

func process(n) {
  var r = 0;
  var good = 0;
  var bad = 0;
  var total = 0;
  while (r < n) {
    var v = validate(r);
    if (v > 0) {
      good = good + 1;
      total = total + v;
    } else {
      bad = bad + 1;
      total = total + v / 2;
    }
    r = r + 1;
  }
  print(good, bad, total);
  return total;
}

func main(n) {
  return process(n);
}
"""


def _vortex_inputs(seed: int, n: int) -> dict[str, list[int]]:
    rng = _rand(seed)
    kinds = [rng.choice([1, 1, 1, 1, 2, 2, 3]) for _ in range(n)]
    sizes = []
    owners = []
    for kind in kinds:
        limit = {1: 64, 2: 128, 3: 16}[kind]
        if rng.random() < 0.93:
            sizes.append(rng.randrange(1, limit))
            owners.append(rng.randrange(0, 50))
        else:  # invalid record
            sizes.append(limit + rng.randrange(1, 40))
            owners.append(rng.choice([-1, 5]))
    return {"rec_kind": kinds, "rec_size": sizes, "rec_owner": owners}


def _vortex_workload() -> Workload:
    train_n, ref_n = 600, 2400
    return Workload(
        name="vortex95",
        source=_VORTEX_SRC,
        train_args=(train_n,),
        train_inputs=_vortex_inputs(1313, 4096),
        ref_args=(ref_n,),
        ref_inputs=_vortex_inputs(1414, 4096),
        description="record validation with chained predicates",
    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_FACTORIES = {
    "compress95": _compress_workload,
    "go95": _go_workload,
    "ijpeg95": _ijpeg_workload,
    "li95": _li_workload,
    "m88ksim95": _m88k_workload,
    "perl95": _perl_workload,
    "vortex95": _vortex_workload,
}

WORKLOAD_NAMES: tuple[str, ...] = tuple(_FACTORIES)


def get_workload(name: str) -> Workload:
    """Construct one workload by name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}"
        ) from None


def all_workloads() -> dict[str, Workload]:
    """All seven workloads, in canonical order."""
    return {name: factory() for name, factory in _FACTORIES.items()}
