"""Seeded, deterministic MiniC program generator.

The seven hand-rolled workloads in :mod:`repro.workloads.spec` are
miniatures: tens of CFG vertices per routine.  The paper's qualified-dataflow
trade-offs — automaton size, hot-path-graph blow-up, reduction payoff, and
the compiled kernels' crossover — only show themselves on *organic* programs
in the 1k–10k-vertex range.  This module grows such programs from a seed.

Every program is built from the same exploitable skeleton the workloads use
(see ``docs/MINIC.md``): worker functions iterate a data-driven dispatch
loop whose branch legs bind small constants that the tail of the same
acyclic path consumes.  Wegman–Zadek merges those legs to ⊥; hot-path
qualification keeps them.  The crucial generator-specific twist is
**path-correlated constants**: a per-iteration ``mode`` value drawn from the
input data drives many branch predicates at once (with probability
:attr:`GeneratorSpec.correlation` per site), so branch outcomes correlate,
few distinct Ball–Larus paths cover most executions, and every hot-path
duplicate pins the whole constant family.  Skewed input data
(:attr:`GeneratorSpec.hot_skew`) makes one mode dominant, giving the paths a
SPEC-like hot/cold split instead of a uniform blur.

Shape knobs:

* ``funcs`` — worker functions (``main`` calls each once per run);
* ``blocks_per_func`` — approximate CFG vertices per worker, controlled by
  the number of dispatch sites emitted;
* ``loop_depth`` — nesting depth of constant-trip inner loops around site
  groups (≥ 2 exercises loop-carried paths, raw material for k-BL);
* ``branch_density`` — probability a site is a three-leg chain rather than
  a plain if/else;
* ``correlation`` — probability a site's predicate reads the shared
  ``mode`` rather than independent data.

Determinism is a hard contract: one :class:`random.Random` seeded from
``spec.seed`` is consumed in a fixed order, so the same spec produces
byte-identical source and an identical CFG fingerprint on every call, every
process, every platform (``tests/test_generate.py`` pins this).

All generated programs are well-formed by construction: unique textual
variable names, every array index reduced ``% data_size`` over non-negative
operands, induction variables incremented unconditionally at the loop tail,
and inner loops bounded by literal constants — so every program parses,
validates, terminates, and comes back clean from ``repro check``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import Optional

from ..evaluation.harness import Workload

__all__ = [
    "GeneratorSpec",
    "GEN_PRESETS",
    "cfg_fingerprint",
    "generate_source",
    "generated_workload",
    "module_vertices",
    "parse_genspec",
    "spec_name",
]


@dataclass(frozen=True)
class GeneratorSpec:
    """Shape parameters for one generated program (all deterministic)."""

    #: Master seed; drives structure and both input data sets.
    seed: int = 0
    #: Worker functions (plus ``main``).
    funcs: int = 2
    #: Approximate CFG vertices per worker function.
    blocks_per_func: int = 40
    #: Nesting depth of constant-trip inner loops (1 = outer loop only).
    loop_depth: int = 1
    #: Probability a dispatch site is a three-leg chain (vs if/else).
    branch_density: float = 0.5
    #: Probability a site's predicate reads the shared per-iteration mode.
    correlation: float = 0.8
    #: Probability an input datum selects the hot mode (mode 0).
    hot_skew: float = 0.85
    #: Length of the ``data``/``aux`` input arrays.
    data_size: int = 1024
    #: Outer-loop iterations of the train run.
    train_iters: int = 40
    #: Outer-loop iterations of the ref run.
    ref_iters: int = 96

    def __post_init__(self) -> None:
        if self.funcs < 1:
            raise ValueError("funcs must be >= 1")
        if self.blocks_per_func < 8:
            raise ValueError("blocks_per_func must be >= 8")
        if self.loop_depth < 1:
            raise ValueError("loop_depth must be >= 1")
        if not (0.0 <= self.branch_density <= 1.0):
            raise ValueError("branch_density must be in [0, 1]")
        if not (0.0 <= self.correlation <= 1.0):
            raise ValueError("correlation must be in [0, 1]")
        if not (0.0 < self.hot_skew <= 1.0):
            raise ValueError("hot_skew must be in (0, 1]")
        if self.data_size < 16:
            raise ValueError("data_size must be >= 16")
        if self.train_iters < 1 or self.ref_iters < 1:
            raise ValueError("iteration counts must be >= 1")


def spec_name(spec: GeneratorSpec) -> str:
    """Canonical target name for a spec (parse_genspec round-trips it)."""
    return (
        f"gen:seed={spec.seed},funcs={spec.funcs},"
        f"blocks={spec.blocks_per_func},depth={spec.loop_depth},"
        f"density={spec.branch_density:g},corr={spec.correlation:g}"
    )


_SPEC_KEYS = {
    "seed": ("seed", int),
    "funcs": ("funcs", int),
    "blocks": ("blocks_per_func", int),
    "depth": ("loop_depth", int),
    "density": ("branch_density", float),
    "corr": ("correlation", float),
    "skew": ("hot_skew", float),
    "data": ("data_size", int),
    "train": ("train_iters", int),
    "ref": ("ref_iters", int),
}


def parse_genspec(name: str) -> GeneratorSpec:
    """Parse a ``gen:key=value,...`` target name into a spec.

    Keys: ``seed funcs blocks depth density corr skew data train ref``.
    Unspecified keys keep the :class:`GeneratorSpec` defaults.
    """
    if not name.startswith("gen:"):
        raise ValueError(f"not a generator spec: {name!r}")
    spec = GeneratorSpec()
    body = name[len("gen:"):]
    if not body:
        return spec
    for part in body.split(","):
        key, sep, value = part.partition("=")
        if not sep or key not in _SPEC_KEYS:
            raise ValueError(
                f"bad generator spec item {part!r}; keys: "
                f"{', '.join(_SPEC_KEYS)}"
            )
        field, conv = _SPEC_KEYS[key]
        spec = replace(spec, **{field: conv(value)})
    return spec


# ---------------------------------------------------------------------------
# source emission
# ---------------------------------------------------------------------------

#: Constant pools the sites draw from (small, like the workloads' step/bias
#: constants, so folded arithmetic stays far from any overflow concern).
_CONST_POOL = (1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13, 17)
_MULT_POOL = (2, 3, 4, 5, 6, 7, 8)


class _Emitter:
    """Indentation-aware line buffer."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def line(self, text: str = "") -> None:
        self.lines.append(("  " * self.depth + text) if text else "")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _site_predicate(rng: random.Random, spec: GeneratorSpec) -> str:
    """One branch predicate: correlated with the shared mode, or
    independent data-driven."""
    if rng.random() < spec.correlation:
        return rng.choice(
            (
                "mode == 0",
                "mode <= 1",
                "(mode & 1) == 0",
                "mode < 2",
            )
        )
    q = rng.randrange(1, spec.data_size)
    mask = rng.choice((1, 3, 7))
    return f"(aux[(i + {q}) % {spec.data_size}] & {mask}) == 0"


def _emit_site(
    out: _Emitter, rng: random.Random, spec: GeneratorSpec, sid: str
) -> None:
    """One dispatch site: a branch whose legs bind fresh constants that the
    site's tail consumes on the same acyclic path.

    The declaration's initialiser doubles as the fall-through leg, so no
    assignment is dead on any path and the generated code is lint-clean
    (no LINT002 findings) while still putting a different constant pair on
    every acyclic path through the site.
    """
    a, b = f"s{sid}_a", f"s{sid}_b"
    out.line(f"var {a} = {rng.choice(_CONST_POOL)};")
    out.line(f"var {b} = {rng.choice(_CONST_POOL)};")
    legs = 3 if rng.random() < spec.branch_density else 2
    pred = _site_predicate(rng, spec)
    out.line(f"if ({pred}) {{")
    out.depth += 1
    out.line(f"{a} = {rng.choice(_CONST_POOL)}; {b} = {rng.choice(_CONST_POOL)};")
    out.depth -= 1
    if legs == 3:
        pred2 = _site_predicate(rng, spec)
        out.line(f"}} else {{ if ({pred2}) {{")
        out.depth += 1
        out.line(
            f"{a} = {rng.choice(_CONST_POOL)}; {b} = {rng.choice(_CONST_POOL)};"
        )
        out.depth -= 1
        out.line("} }")
    else:
        out.line("}")
    # The per-path consumption: constant on every hot-path duplicate, ⊥
    # after the Wegman–Zadek merge.
    m = rng.choice(_MULT_POOL)
    out.line(f"acc = (acc + {a} * {m} + {b}) & 65535;")


def _emit_site_group(
    out: _Emitter,
    rng: random.Random,
    spec: GeneratorSpec,
    fidx: int,
    sites: list[int],
    depth: int,
) -> None:
    """Emit ``sites`` dispatch sites, possibly wrapped in nested
    constant-trip loops down to ``depth`` more levels."""
    if depth <= 0 or len(sites) < 2:
        for s in sites:
            _emit_site(out, rng, spec, f"{fidx}_{s}")
        return
    # Split: a prefix stays at this level, the rest nests one level deeper.
    cut = max(1, len(sites) // 3)
    for s in sites[:cut]:
        _emit_site(out, rng, spec, f"{fidx}_{s}")
    inner = sites[cut:]
    trip = rng.randrange(2, 4)
    t = f"t{fidx}_{depth}_{inner[0]}"
    out.line(f"var {t} = 0;")
    out.line(f"while ({t} < {trip}) {{")
    out.depth += 1
    _emit_site_group(out, rng, spec, fidx, inner, depth - 1)
    out.line(f"{t} = {t} + 1;")
    out.depth -= 1
    out.line("}")


#: Empirical CFG vertices contributed per dispatch site (an if-overwrite
#: site ≈ 3 blocks, a three-leg chain ≈ 4, plus loop scaffolding); used to
#: size site counts from ``blocks_per_func``.
_BLOCKS_PER_SITE = 3.3
#: Loop head/preheader/exit and prologue/epilogue scaffolding per function.
_FUNC_OVERHEAD = 6


def _sites_for(spec: GeneratorSpec) -> int:
    return max(2, round((spec.blocks_per_func - _FUNC_OVERHEAD) / _BLOCKS_PER_SITE))


def _emit_worker(out: _Emitter, rng: random.Random, spec: GeneratorSpec, fidx: int) -> None:
    stride = rng.choice((3, 5, 7, 11))
    off = rng.randrange(0, spec.data_size)
    base = rng.choice(_CONST_POOL)
    c1, c2 = rng.choice(_MULT_POOL), rng.choice(_CONST_POOL)
    out.line(f"func f{fidx}(n) {{")
    out.depth += 1
    out.line("var i = 0;")
    out.line(f"var acc = {rng.choice(_CONST_POOL)};")
    out.line(f"var base{fidx} = {base};")
    out.line("while (i < n) {")
    out.depth += 1
    # An iterative non-local constant: defined from a constant outside the
    # loop body, found by Wegman–Zadek without any qualification.
    out.line(f"var norm{fidx} = base{fidx} * {c1} + {c2};")
    # The correlation driver: one data-dependent mode per iteration.
    out.line(
        f"var mode = data[(i * {stride} + {off}) % {spec.data_size}] & 3;"
    )
    sites = list(range(_sites_for(spec)))
    _emit_site_group(out, rng, spec, fidx, sites, spec.loop_depth - 1)
    out.line(f"acc = (acc + norm{fidx}) & 65535;")
    out.line("i = i + 1;")
    out.depth -= 1
    out.line("}")
    out.line("print(acc);")
    out.line("return acc;")
    out.depth -= 1
    out.line("}")
    out.line()


def generate_source(spec: GeneratorSpec) -> str:
    """The MiniC source of ``spec`` (byte-identical for equal specs)."""
    rng = random.Random(spec.seed)
    out = _Emitter()
    out.line(
        f"// generated by repro.workloads.generate "
        f"(seed={spec.seed}, funcs={spec.funcs}, "
        f"blocks_per_func={spec.blocks_per_func}, "
        f"loop_depth={spec.loop_depth}, "
        f"branch_density={spec.branch_density:g}, "
        f"correlation={spec.correlation:g})"
    )
    out.line(f"global data[{spec.data_size}];")
    out.line(f"global aux[{spec.data_size}];")
    out.line()
    for fidx in range(spec.funcs):
        _emit_worker(out, rng, spec, fidx)
    out.line("func main(n) {")
    out.depth += 1
    out.line("var total = 0;")
    for fidx in range(spec.funcs):
        # Slightly different trip counts decorrelate the workers' profiles.
        delta = rng.randrange(0, 4)
        arg = f"n + {delta}" if delta else "n"
        out.line(f"total = (total + f{fidx}({arg})) & 65535;")
    out.line("print(total);")
    out.line("return total;")
    out.depth -= 1
    out.line("}")
    return out.text()


# ---------------------------------------------------------------------------
# inputs and workload assembly
# ---------------------------------------------------------------------------


def _input_arrays(spec: GeneratorSpec, seed: int) -> dict[str, list[int]]:
    """Skewed mode data plus uniform auxiliary bytes for one run."""
    rng = random.Random(seed)
    data = []
    for _ in range(spec.data_size):
        if rng.random() < spec.hot_skew:
            # The hot mode: low two bits zero, so every correlated
            # predicate family resolves the same hot way.
            data.append(rng.randrange(0, 64) * 4)
        else:
            data.append(rng.randrange(0, 256))
    aux = [rng.randrange(0, 256) for _ in range(spec.data_size)]
    return {"data": data, "aux": aux}


def generated_workload(
    spec: GeneratorSpec, name: Optional[str] = None
) -> Workload:
    """Assemble the spec's program and train/ref data sets into a
    :class:`~repro.evaluation.harness.Workload`."""
    return Workload(
        name=name if name is not None else spec_name(spec),
        source=generate_source(spec),
        train_args=(spec.train_iters,),
        train_inputs=_input_arrays(spec, spec.seed * 2 + 1),
        ref_args=(spec.ref_iters,),
        ref_inputs=_input_arrays(spec, spec.seed * 2 + 2),
        description=(
            f"generated: {spec.funcs} funcs x ~{spec.blocks_per_func} blocks, "
            f"depth {spec.loop_depth}, corr {spec.correlation:g}"
        ),
    )


#: Named generated targets the suite registers out of the box.  ``gen-1k``
#: is the acceptance target: >= 1000 CFG vertices of organic, loop-heavy,
#: path-correlated program (pinned by ``tests/test_generate.py``).
GEN_PRESETS: dict[str, GeneratorSpec] = {
    "gen-small": GeneratorSpec(
        seed=11, funcs=2, blocks_per_func=24, train_iters=24, ref_iters=48
    ),
    "gen-medium": GeneratorSpec(
        seed=23, funcs=3, blocks_per_func=100, train_iters=32, ref_iters=64
    ),
    "gen-loops": GeneratorSpec(
        seed=37,
        funcs=2,
        blocks_per_func=60,
        loop_depth=3,
        train_iters=16,
        ref_iters=32,
    ),
    # Many mid-sized routines rather than a few giant ones: the still-generic
    # Wegman–Zadek solver scales superlinearly per function, so this shape
    # keeps the full qualified pipeline tractable at > 1000 total vertices.
    "gen-1k": GeneratorSpec(
        seed=41,
        funcs=16,
        blocks_per_func=72,
        branch_density=0.6,
        correlation=0.95,
        hot_skew=0.92,
        train_iters=24,
        ref_iters=48,
    ),
}


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def module_vertices(module) -> int:
    """Total real CFG vertices (basic blocks) of a compiled module."""
    return sum(len(fn.blocks) for fn in module.functions.values())


def cfg_fingerprint(module) -> str:
    """A stable hash of the module's control-flow shape.

    Hashes every function's sorted edge list (labels as strings), so equal
    fingerprints mean structurally identical CFGs regardless of block
    contents — the determinism contract tests pin source bytes *and* this.
    """
    from ..ir.cfg import Cfg

    h = hashlib.sha256()
    for name in sorted(module.functions):
        cfg = Cfg.from_function(module.functions[name])
        h.update(name.encode())
        for u, v in sorted((str(u), str(v)) for u, v in cfg.edges):
            h.update(f"{u}->{v};".encode())
    return h.hexdigest()
