"""Hand-written MiniC ports of real algorithms, registered as suite targets.

The generated corpus (:mod:`repro.workloads.generate`) covers *shape*;
these ports cover *authenticity*: real algorithms whose control flow was
not designed around the analysis, yet still exhibit the paper's exploitable
pattern — data-driven branch legs binding small constants that the same
acyclic path consumes.

``sieve`` is the Sieve of Eratosthenes.  Its inner marking loop classifies
each multiple as newly-marked or already-marked (the overlap of multiples
of smaller primes), and the outer loop classifies each candidate as prime
or composite.  Both branches bind per-leg cost constants folded into the
running checksum, so path-qualified constant propagation at full coverage
finds strictly more non-local constants than Wegman–Zadek on the original
CFG — ``tests/test_handwritten.py`` pins that inequality.
"""

from __future__ import annotations

from ..evaluation.harness import Workload

__all__ = ["HANDWRITTEN_NAMES", "get_handwritten", "all_handwritten"]


_SIEVE_SRC = """
// sieve: Sieve of Eratosthenes with per-path accounting constants.
global flags[4096];
global credit[4096];

func mark(p, n) {
  var m = p + p;
  var charge = 0;
  var unit = 3;                  // iterative non-local constant
  while (m < n) {
    var tick = unit * 2 + 1;     // found by WZ on the original CFG
    // Defaults are the already-marked leg (overlapping multiples of a
    // smaller prime); the branch overwrites them on the fresh-mark leg.
    var w = 1;
    var b = 7;
    if (flags[m] == 0) {
      // Newly marked composite: first prime to reach this cell.
      w = 5; b = 2;
      flags[m] = 1;
    }
    // w/b are constant on each acyclic path duplicate; the WZ merge
    // destroys them.
    credit[m] = credit[m] + w * 4 + b;
    charge = charge + w + b + tick;
    m = m + p;
  }
  return charge;
}

func sieve(n) {
  var p = 2;
  var primes = 0;
  var work = 0;
  var audit = 5;                 // iterative non-local constant
  while (p < n) {
    var ledger = audit * 3 + 4;  // found by WZ on the original CFG
    // Defaults are the composite skip path; primes overwrite them.
    var bonus = 1;
    var fee = 6;
    if (flags[p] == 0) {
      // p is prime: count it and mark its multiples.
      bonus = 9; fee = 2;
      primes = primes + 1;
      work = work + mark(p, n);
    }
    work = work + bonus * 8 + fee + ledger;
    p = p + 1;
  }
  print(primes, work);
  return primes;
}

func main(n) {
  return sieve(n);
}
"""


def _sieve_workload() -> Workload:
    # flags/credit start zeroed (MiniC globals are zero-initialised), so the
    # runs need no input arrays; train and ref differ only in the bound.
    return Workload(
        name="sieve",
        source=_SIEVE_SRC,
        train_args=(400,),
        train_inputs={},
        ref_args=(1800,),
        ref_inputs={},
        description="Sieve of Eratosthenes; prime/composite and "
        "fresh/overlap mark paths bind per-leg constants",
    )


_FACTORIES = {
    "sieve": _sieve_workload,
}

HANDWRITTEN_NAMES: tuple[str, ...] = tuple(_FACTORIES)


def get_handwritten(name: str) -> Workload:
    """Construct one hand-written target by name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown hand-written target {name!r}; "
            f"choose from {HANDWRITTEN_NAMES}"
        ) from None


def all_handwritten() -> dict[str, Workload]:
    return {name: factory() for name, factory in _FACTORIES.items()}
