"""The paper's running example (Figure 1) and its path profile (Figure 2).

The routine ``work`` is the loop of Figure 1::

        Entry
          |
          A        i = 0
          |
    +---> B        branch on sel1[base+i]   (load: unknowable)
    |    / \\
    |   C   D      a = 2     a = 1
    |    \\ /
    |     E        branch on sel2[base+i]   (load: unknowable)
    |    / \\
    |   F   G      b = 4     b = 3
    |    \\ /
    |     H        x = a + b; res[base+i] = x; i = i + 1;
    |    / \\          branch on cont[base+i-1]
    +----+  I      n = i; print n
            |
          Exit

Without qualification, only the constant assignments in A, C, D, F and G are
constant instructions; Wegman–Zadek finds nothing else because ``a``, ``b``
and ``i`` merge at B, E and H.  Path qualification discovers ``x = a + b``
(6, 5 or 4 depending on the duplicate of H), ``i = i + 1`` (1 at the
first-iteration copies of H) and ``n = i`` (1 at the copy of I on the
no-iteration hot path) — exactly the constants the paper reports for its
Figure 5.

:func:`training_run_inputs` reproduces the Figure 2 profile: 70 activations
that run A,B,C,E,F,H,I straight through; 5 activations that iterate the
B,D,E,G,H loop six times; and 25 that iterate it three times.
"""

from __future__ import annotations

from ..ir.builder import IRBuilder
from ..ir.function import ArrayDecl, Function, Module

#: Iteration slots reserved per activation in the control arrays.
STRIDE = 8


def running_example_function() -> Function:
    """The routine of Figure 1."""
    b = IRBuilder("work", ["base"])
    b.block("A")
    b.assign("i", 0)
    b.jump("B")

    b.block("B")
    b.binop("t1", "add", "base", "i")
    b.load("c", "sel1", "t1")
    b.branch("c", "C", "D")

    b.block("C")
    b.assign("a", 2)
    b.jump("E")

    b.block("D")
    b.assign("a", 1)
    b.jump("E")

    b.block("E")
    b.binop("t2", "add", "base", "i")
    b.load("u", "sel2", "t2")
    b.branch("u", "F", "G")

    b.block("F")
    b.assign("b", 4)
    b.jump("H")

    b.block("G")
    b.assign("b", 3)
    b.jump("H")

    b.block("H")
    b.binop("x", "add", "a", "b")
    b.store("res", "t2", "x")
    b.binop("i", "add", "i", 1)
    b.load("w", "cont", "t2")
    b.branch("w", "B", "I")

    b.block("I")
    b.assign("n", "i")
    b.emit_print("n")
    b.ret("n")
    return b.finish()


def running_example_module(activations: int = 100) -> Module:
    """A module whose ``main`` calls ``work`` once per activation.

    The control arrays (``sel1``, ``sel2``, ``cont``) are supplied as run
    inputs; ``res`` receives the computed sums.
    """
    module = Module()
    size = activations * STRIDE
    module.add_array(ArrayDecl("sel1", size))
    module.add_array(ArrayDecl("sel2", size))
    module.add_array(ArrayDecl("cont", size))
    module.add_array(ArrayDecl("res", size))
    module.add_function(running_example_function())

    b = IRBuilder("main", ["activations"])
    b.block("entry")
    b.assign("t", 0)
    b.assign("total", 0)
    b.jump("loop")
    b.block("loop")
    b.binop("more", "lt", "t", "activations")
    b.branch("more", "body", "done")
    b.block("body")
    b.binop("base", "mul", "t", STRIDE)
    b.call("r", "work", "base")
    b.binop("total", "add", "total", "r")
    b.binop("t", "add", "t", 1)
    b.jump("loop")
    b.block("done")
    b.emit_print("total")
    b.ret("total")
    module.add_function(b.finish())
    return module


def _activation_pattern(kind: str) -> tuple[list[int], list[int], list[int]]:
    """Per-activation control slots (sel1, sel2, cont) for one run kind."""
    if kind == "straight":
        # [Entry, A, B, C, E, F, H, I, Exit]: one trip, no loop-back.
        return [1], [1], [0]
    if kind == "long":
        # First trip B->D, E->F; six trips B->D, E->G; final trip B->D, E->F.
        trips = 8
        sel1 = [0] * trips
        sel2 = [1] + [0] * 6 + [1]
        cont = [1] * 7 + [0]
        return sel1, sel2, cont
    if kind == "short":
        # Same shape with three interior B,D,E,G,H iterations.
        trips = 5
        sel1 = [0] * trips
        sel2 = [1] + [0] * 3 + [1]
        cont = [1] * 4 + [0]
        return sel1, sel2, cont
    raise ValueError(f"unknown activation kind {kind!r}")


def training_run_inputs(
    straight: int = 70, long: int = 5, short: int = 25
) -> tuple[int, dict[str, list[int]]]:
    """(main argument, input arrays) reproducing the Figure 2 profile.

    Returns the activation count to pass to ``main`` and the control arrays.
    With the defaults the profile is::

        70  [• A B C E F H I Exit]
        30  [• A B D E F H B]
        105 [• B D E G H B]          (the paper's narration weighs H13 at 100)
        30  [• B D E F H I Exit]
    """
    kinds = ["straight"] * straight + ["long"] * long + ["short"] * short
    activations = len(kinds)
    size = activations * STRIDE
    sel1 = [0] * size
    sel2 = [0] * size
    cont = [0] * size
    for t, kind in enumerate(kinds):
        s1, s2, co = _activation_pattern(kind)
        base = t * STRIDE
        sel1[base : base + len(s1)] = s1
        sel2[base : base + len(s2)] = s2
        cont[base : base + len(co)] = co
    return activations, {"sel1": sel1, "sel2": sel2, "cont": cont}
