"""The target × instance workload matrix (the SPEC-harness refactor).

Modelled on the vusec ``instrumentation-infra`` layout, the suite crosses

* **targets** — MiniC programs: the seven hand-rolled SPEC95-alikes, the
  hand-written algorithm ports (:mod:`repro.workloads.handwritten`), the
  generated presets (:data:`repro.workloads.generate.GEN_PRESETS`), and
  ad-hoc ``gen:key=value,...`` specs parsed on the fly; with
* **instances** — configurations: interpreter engine × dataflow engine ×
  Wegman–Zadek engine × solver strategy × (CA, CR) coverage.

Each cell of the cross product is simultaneously a measurement and a
**differential test**:

1. the training run is executed on *both* interpreter engines and the full
   :class:`RunResult`s must match (``interp_parity``);
2. every separable dataflow problem is solved on every routine's CFG by
   *both* solver engines under the instance's strategy and the fixpoints
   must match (``dataflow_parity``);
3. conditional constant propagation runs on every routine's CFG — and on
   its hot-path graph, when traced — under *both* Wegman–Zadek engines and
   the environments, executable edges, and worklist visit counts must all
   match (``wz_parity``);
4. the pipeline checkers run over every stage and must report no errors
   (``checks_clean``);
5. the profile-qualified analyzer (:mod:`repro.analyze`) runs over the
   cell's qualified results under *both* dataflow engines and must produce
   identical ranked findings (``lint_parity``).

So the matrix doubles as the largest test surface in the repo: a cell that
measures a speedup on a 1k-vertex organic graph has, in the same breath,
proven both fast paths equivalent to their oracles on that graph.

Phases follow the infra ``build/run/report`` split: :func:`build_targets`
compiles and validates, :func:`ParallelDriver.suite` (or :func:`run_suite`)
executes cells — serially or over the driver's process pool — and
:func:`load_archived` + :meth:`MatrixResult.report` re-render results from
the content-addressed archive without recomputation.  Every completed cell
is archived under ``<archive_dir>/<key[:2]>/<key>.json`` where ``key``
hashes the target source, both data sets, and the full instance
configuration — identical cells collide into one file, so archives are
incremental across sessions.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional, Sequence

from ..dataflow import solve
from ..dataflow.framework import SOLVER_STRATEGIES
from ..dataflow.wegman_zadek import WZ_ENGINES
from ..dataflow.graph_view import GraphView
from ..evaluation.harness import DEFAULT_CA, DEFAULT_CR, Workload
from ..evaluation.tables import format_table
from ..obs import get_tracer
from .generate import GEN_PRESETS, generated_workload, parse_genspec
from .handwritten import HANDWRITTEN_NAMES, get_handwritten
from .spec import WORKLOAD_NAMES, get_workload

__all__ = [
    "Instance",
    "INSTANCES",
    "MatrixCell",
    "MatrixResult",
    "TARGET_NAMES",
    "build_targets",
    "cell_key",
    "load_archived",
    "resolve_target",
    "run_cell",
    "run_suite",
]


# ---------------------------------------------------------------------------
# instances
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Instance:
    """One configuration column of the matrix."""

    name: str
    #: Interpreter engine driving the train/ref runs.
    engine: str = "compiled"
    #: Dataflow solver engine for the pipeline's separable analyses.
    dataflow_engine: str = "auto"
    #: Wegman–Zadek engine for the pipeline's conditional-constant runs.
    wz_engine: str = "auto"
    #: Worklist strategy for the cell's differential dataflow stage.
    strategy: str = "rpo"
    ca: float = DEFAULT_CA
    cr: float = DEFAULT_CR

    def __post_init__(self) -> None:
        if self.engine not in ("reference", "compiled"):
            raise ValueError(f"bad engine {self.engine!r}")
        if self.wz_engine not in WZ_ENGINES:
            raise ValueError(f"bad wz_engine {self.wz_engine!r}")
        if self.strategy not in SOLVER_STRATEGIES:
            raise ValueError(f"bad strategy {self.strategy!r}")

    def config(self) -> dict:
        return asdict(self)


#: The registered instance columns.  ``base`` is the production
#: configuration; the others each flip one axis against it.
INSTANCES: dict[str, Instance] = {
    inst.name: inst
    for inst in (
        Instance("base"),
        Instance("reference", engine="reference", dataflow_engine="generic",
                 wz_engine="generic"),
        Instance("bitset", dataflow_engine="compiled"),
        Instance("wz-compiled", wz_engine="compiled"),
        Instance("lifo", strategy="lifo"),
        Instance("full-cover", ca=1.0),
    )
}


def resolve_instance(name: str) -> Instance:
    try:
        return INSTANCES[name]
    except KeyError:
        raise KeyError(
            f"unknown instance {name!r}; choose from {tuple(INSTANCES)}"
        ) from None


# ---------------------------------------------------------------------------
# targets
# ---------------------------------------------------------------------------

#: All statically registered target names (ad-hoc ``gen:...`` specs resolve
#: too, but are not enumerated here).
TARGET_NAMES: tuple[str, ...] = (
    WORKLOAD_NAMES + HANDWRITTEN_NAMES + tuple(GEN_PRESETS)
)


def resolve_target(name: str) -> Workload:
    """A target name — registered or ``gen:...`` — to its workload.

    Resolution happens by *name* so matrix jobs can ship a string into a
    worker process instead of pickling megabytes of program and input data.
    """
    if name in WORKLOAD_NAMES:
        return get_workload(name)
    if name in HANDWRITTEN_NAMES:
        return get_handwritten(name)
    if name in GEN_PRESETS:
        return generated_workload(GEN_PRESETS[name], name)
    if name.startswith("gen:"):
        return generated_workload(parse_genspec(name))
    raise KeyError(
        f"unknown target {name!r}; choose from {TARGET_NAMES} "
        f"or a gen:key=value,... spec"
    )


def target_kind(name: str) -> str:
    if name in WORKLOAD_NAMES:
        return "spec95"
    if name in HANDWRITTEN_NAMES:
        return "handwritten"
    return "generated"


# ---------------------------------------------------------------------------
# cells
# ---------------------------------------------------------------------------

#: RunResult fields compared by the interpreter-parity stage (the same
#: contract the PR-2 differential tests assert).
_RESULT_FIELDS = (
    "return_value",
    "output",
    "instr_count",
    "cost",
    "block_counts",
    "profiles",
    "trace_profiles",
    "site_stats",
    "memory",
)

#: The five separable problems the dataflow-parity stage solves.
def _separable_problems(view: GraphView):
    from ..dataflow.problems import (
        AvailableExpressions,
        CopyPropagation,
        LiveVariables,
        ReachingDefinitions,
        VeryBusyExpressions,
    )

    return (
        ("reaching_defs", ReachingDefinitions(view.params, view.cfg.entry)),
        ("liveness", LiveVariables()),
        ("available_exprs", AvailableExpressions()),
        ("very_busy", VeryBusyExpressions()),
        ("copy_prop", CopyPropagation()),
    )


@dataclass
class MatrixCell:
    """One (target, instance) execution: metrics plus differential verdicts."""

    target: str
    instance: str
    key: str
    config: dict = field(default_factory=dict)
    # -- structure and profile metrics --
    cfg_nodes: int = 0
    executed_paths: int = 0
    hot_paths: int = 0
    hpg_nodes: int = 0
    reduced_nodes: int = 0
    # -- constants --
    iterative_nonlocal: int = 0
    qualified_nonlocal: int = 0
    constant_increase: float = 0.0
    # -- differential verdicts --
    interp_parity: bool = False
    interp_mismatches: list = field(default_factory=list)
    dataflow_parity: bool = False
    dataflow_mismatches: list = field(default_factory=list)
    wz_parity: bool = False
    wz_mismatches: list = field(default_factory=list)
    lint_parity: bool = False
    lint_mismatches: list = field(default_factory=list)
    lint_findings: int = 0
    checks_errors: int = 0
    checks_warnings: int = 0
    # -- timings (reported, never gated: machine-bound) --
    timings: dict = field(default_factory=dict)

    @property
    def checks_clean(self) -> bool:
        return self.checks_errors == 0

    @property
    def ok(self) -> bool:
        """The cell's differential-test verdict."""
        return (
            self.interp_parity
            and self.dataflow_parity
            and self.wz_parity
            and self.lint_parity
            and self.checks_clean
        )

    def to_dict(self) -> dict:
        d = asdict(self)
        d["ok"] = self.ok
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "MatrixCell":
        d = dict(d)
        d.pop("ok", None)
        return cls(**d)


def cell_key(workload: Workload, instance: Instance) -> str:
    """Content address of one cell: target program + data + configuration."""
    from ..pipeline.cache import content_key

    # The tag versions the archived cell schema: bumping it retires every
    # previously archived cell (v2 added the lint-parity stage).
    return content_key(
        "matrix-cell-v2",
        workload.source,
        list(workload.train_args),
        {k: list(v) for k, v in workload.train_inputs.items()},
        list(workload.ref_args),
        {k: list(v) for k, v in workload.ref_inputs.items()},
        instance.config(),
    )


def _interp_parity(run, workload: Workload, instance: Instance) -> tuple[bool, list]:
    """Re-run the training input on the engine the run did *not* use and
    compare complete results."""
    from ..interp.interpreter import Interpreter

    other_engine = "reference" if instance.engine == "compiled" else "compiled"
    other = Interpreter(
        run.module, profile_mode="bl", track_sites=False, engine=other_engine
    ).run(workload.train_args, workload.train_inputs)
    mismatches = [
        f for f in _RESULT_FIELDS
        if getattr(run.train, f) != getattr(other, f)
    ]
    return not mismatches, mismatches


def _dataflow_parity(run, instance: Instance) -> tuple[bool, list]:
    """Solve every separable problem on every routine with both engines
    under the instance's strategy; fixpoints must be identical."""
    mismatches = []
    for fname, fn in run.module.functions.items():
        view = GraphView.from_function(fn)
        for pname, problem in _separable_problems(view):
            generic = solve(problem, view, strategy=instance.strategy,
                            engine="generic")
            compiled = solve(problem, view, strategy=instance.strategy,
                             engine="compiled")
            if (
                generic.value_in != compiled.value_in
                or generic.value_out != compiled.value_out
            ):
                mismatches.append(f"{fname}:{pname}")
    return not mismatches, mismatches


def _wz_parity(run, instance: Instance) -> tuple[bool, list]:
    """Run Wegman–Zadek with both engines on every routine's CFG — and on
    its hot-path graph, when the cell's coverage traced one — and require
    bit-identical fixpoints, edge sets, and worklist visit counts."""
    from ..dataflow.wegman_zadek import analyze

    views = {
        fname: GraphView.from_function(fn)
        for fname, fn in run.module.functions.items()
    }
    for fname, qa in run.qualified(instance.ca, instance.cr).items():
        if qa.hpg is not None:
            views[f"{fname}@hpg"] = qa.hpg.view()
    mismatches = []
    for vname, view in views.items():
        generic = analyze(view, engine="generic")
        compiled = analyze(view, engine="compiled")
        if (
            generic.env_in != compiled.env_in
            or generic.executable_edges != compiled.executable_edges
            or generic.visits != compiled.visits
            or generic.visit_counts != compiled.visit_counts
        ):
            mismatches.append(vname)
    return not mismatches, mismatches


def _lint_parity(run, instance: Instance) -> tuple[bool, list, int]:
    """Run the profile-qualified analyzer over the cell's qualified results
    under both dataflow solver engines; the ranked findings (codes,
    locations, messages, masses — everything) must be identical.

    Returns ``(parity, mismatches, finding_count)``."""
    from ..analyze.runner import findings_under

    qualified = run.qualified(instance.ca, instance.cr)
    generic = findings_under(
        run.module, qualified, dataflow_engine="generic",
        workload=run.workload.name,
    )
    compiled = findings_under(
        run.module, qualified, dataflow_engine="compiled",
        workload=run.workload.name,
    )
    if generic == compiled:
        return True, [], len(generic)
    mismatches = [
        d.location() + ":" + d.code
        for d in set(generic).symmetric_difference(compiled)
    ]
    return False, sorted(mismatches), len(generic)


def run_cell(
    target: str,
    instance: Instance,
    cache_dir: Optional[str] = None,
    archive_dir: Optional[str] = None,
) -> MatrixCell:
    """Execute one matrix cell: pipeline, differentials, checks, archive."""
    from ..pipeline.cached_run import make_run

    workload = resolve_target(target)
    key = cell_key(workload, instance)
    with get_tracer().span(
        "suite.cell", target=target, instance=instance.name
    ):
        run = make_run(
            workload,
            cache_dir,
            engine=instance.engine,
            check=True,
            dataflow_engine=instance.dataflow_engine,
            wz_engine=instance.wz_engine,
        )
        agg = run.aggregate_classification(instance.ca, instance.cr)
        orig, hpg, red = run.graph_sizes(instance.ca, instance.cr)
        interp_ok, interp_bad = _interp_parity(run, workload, instance)
        df_ok, df_bad = _dataflow_parity(run, instance)
        wz_ok, wz_bad = _wz_parity(run, instance)
        lint_ok, lint_bad, lint_count = _lint_parity(run, instance)
        diags = run.checker.diagnostics
        cell = MatrixCell(
            target=target,
            instance=instance.name,
            key=key,
            config=instance.config(),
            cfg_nodes=run.cfg_nodes,
            executed_paths=run.executed_paths,
            hot_paths=run.hot_path_count(instance.ca),
            hpg_nodes=hpg,
            reduced_nodes=red,
            iterative_nonlocal=agg.iterative_nonlocal,
            qualified_nonlocal=agg.qualified_nonlocal,
            constant_increase=agg.constant_increase,
            interp_parity=interp_ok,
            interp_mismatches=interp_bad,
            dataflow_parity=df_ok,
            dataflow_mismatches=df_bad,
            wz_parity=wz_ok,
            wz_mismatches=wz_bad,
            lint_parity=lint_ok,
            lint_mismatches=lint_bad,
            lint_findings=lint_count,
            checks_errors=len(diags.errors),
            checks_warnings=len(diags.warnings),
            timings={
                **{k: round(v, 6) for k, v in run.timings.items()},
                "analysis": round(
                    run.analysis_time(instance.ca, instance.cr), 6
                ),
            },
        )
    if archive_dir:
        archive_cell(archive_dir, cell)
    return cell


# ---------------------------------------------------------------------------
# archiving (content-addressed, incremental across sessions)
# ---------------------------------------------------------------------------


def _archive_path(archive_dir: str, key: str) -> str:
    return os.path.join(archive_dir, key[:2], f"{key}.json")


def archive_cell(archive_dir: str, cell: MatrixCell) -> str:
    """Persist one cell under its content address; returns the path."""
    path = _archive_path(archive_dir, cell.key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        json.dump(cell.to_dict(), f, indent=1, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)  # atomic: concurrent writers agree on content
    return path


def load_cell(archive_dir: str, key: str) -> Optional[MatrixCell]:
    path = _archive_path(archive_dir, key)
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return MatrixCell.from_dict(json.load(f))


def load_archived(
    archive_dir: str,
    targets: Sequence[str],
    instances: Sequence[Instance],
) -> "MatrixResult":
    """The report phase: reassemble a result purely from the archive.

    Raises :class:`FileNotFoundError` naming every missing cell, so a
    ``report`` invocation tells the user exactly which cells still need a
    ``run``.
    """
    result = MatrixResult(
        targets=tuple(targets),
        instances=tuple(i.name for i in instances),
    )
    missing = []
    for target in targets:
        workload = resolve_target(target)
        for instance in instances:
            cell = load_cell(archive_dir, cell_key(workload, instance))
            if cell is None:
                missing.append(f"{target}/{instance.name}")
            else:
                result.cells[(target, instance.name)] = cell
    if missing:
        raise FileNotFoundError(
            f"archive {archive_dir!r} is missing cells {missing}; "
            f"run the suite first"
        )
    return result


# ---------------------------------------------------------------------------
# results and the report phase
# ---------------------------------------------------------------------------


@dataclass
class MatrixResult:
    """All cells of one suite run, in canonical target-major order."""

    targets: tuple[str, ...]
    instances: tuple[str, ...]
    cells: dict[tuple[str, str], MatrixCell] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.cells) and all(c.ok for c in self.cells.values())

    def failures(self) -> list[MatrixCell]:
        return [
            self.cells[(t, i)]
            for t in self.targets
            for i in self.instances
            if not self.cells[(t, i)].ok
        ]

    def report(self) -> str:
        """The rendered suite table (deterministic for identical inputs)."""
        rows = []
        for t in self.targets:
            for i in self.instances:
                c = self.cells[(t, i)]
                rows.append(
                    [
                        t,
                        i,
                        c.cfg_nodes,
                        c.executed_paths,
                        c.hot_paths,
                        c.iterative_nonlocal,
                        c.qualified_nonlocal,
                        f"{c.constant_increase:+.1%}",
                        "ok" if c.interp_parity else "FAIL",
                        "ok" if c.dataflow_parity else "FAIL",
                        "ok" if c.wz_parity else "FAIL",
                        (
                            f"{c.lint_findings} ok"
                            if c.lint_parity
                            else "FAIL"
                        ),
                        "clean" if c.checks_clean else f"{c.checks_errors} err",
                    ]
                )
        return format_table(
            [
                "target",
                "instance",
                "blocks",
                "paths",
                "hot",
                "WZ const",
                "qual const",
                "increase",
                "interp",
                "dataflow",
                "wz",
                "lint",
                "checks",
            ],
            rows,
            title="Workload matrix: target x instance differential cells",
        )

    def summary(self) -> str:
        bad = self.failures()
        total = len(self.targets) * len(self.instances)
        if not bad:
            return f"{total} cell(s), all parities hold, all checks clean"
        names = ", ".join(f"{c.target}/{c.instance}" for c in bad)
        return f"{len(bad)}/{total} cell(s) FAILED: {names}"


# ---------------------------------------------------------------------------
# build phase
# ---------------------------------------------------------------------------


def build_targets(targets: Sequence[str]) -> str:
    """Compile + validate each target; returns the build report table."""
    from ..frontend.lower import compile_program
    from ..ir.validate import validate_module

    rows = []
    for name in targets:
        workload = resolve_target(name)
        module = compile_program(workload.source)
        validate_module(module)
        rows.append(
            [
                name,
                target_kind(name),
                len(module.functions),
                sum(len(fn.blocks) for fn in module.functions.values()),
                len(workload.source.splitlines()),
            ]
        )
    return format_table(
        ["target", "kind", "functions", "blocks", "source lines"],
        rows,
        title="Suite build: compiled and validated targets",
    )


# ---------------------------------------------------------------------------
# run phase (serial; the ParallelDriver fans the same job out over a pool)
# ---------------------------------------------------------------------------


def run_suite(
    targets: Sequence[str],
    instances: Sequence[Instance],
    cache_dir: Optional[str] = None,
    archive_dir: Optional[str] = None,
) -> MatrixResult:
    """Run every cell serially (deterministic reference path).

    :meth:`repro.pipeline.ParallelDriver.suite` produces an identical
    :class:`MatrixResult` over a process pool.
    """
    result = MatrixResult(
        targets=tuple(targets),
        instances=tuple(i.name for i in instances),
    )
    with get_tracer().span(
        "suite.run", targets=len(result.targets), instances=len(result.instances)
    ):
        for target in result.targets:
            for instance in instances:
                result.cells[(target, instance.name)] = run_cell(
                    target, instance, cache_dir, archive_dir
                )
    return result


def resolve_instances(names: Iterable[str]) -> tuple[Instance, ...]:
    return tuple(resolve_instance(n) for n in names)
