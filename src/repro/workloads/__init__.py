"""Workloads: the paper's running example plus synthetic SPEC95-like
programs with train/ref inputs."""

from .running_example import (
    running_example_function,
    running_example_module,
    training_run_inputs,
)
from .spec import WORKLOAD_NAMES, all_workloads, get_workload

__all__ = [
    "all_workloads",
    "get_workload",
    "running_example_function",
    "running_example_module",
    "training_run_inputs",
    "WORKLOAD_NAMES",
]
