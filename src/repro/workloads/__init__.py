"""Workloads: the paper's running example, synthetic SPEC95-like programs,
hand-written algorithm ports, and the seeded MiniC program generator.

The target × instance suite over all of them lives in
:mod:`repro.workloads.matrix`; it is imported lazily here (and imports the
pipeline lazily itself) because :mod:`repro.pipeline.driver` imports this
package.
"""

from .generate import (
    GEN_PRESETS,
    GeneratorSpec,
    cfg_fingerprint,
    generate_source,
    generated_workload,
    module_vertices,
    parse_genspec,
    spec_name,
)
from .handwritten import HANDWRITTEN_NAMES, all_handwritten, get_handwritten
from .running_example import (
    running_example_function,
    running_example_module,
    training_run_inputs,
)
from .spec import WORKLOAD_NAMES, all_workloads, get_workload

__all__ = [
    "all_handwritten",
    "all_workloads",
    "cfg_fingerprint",
    "GEN_PRESETS",
    "generate_source",
    "generated_workload",
    "GeneratorSpec",
    "get_handwritten",
    "get_workload",
    "HANDWRITTEN_NAMES",
    "module_vertices",
    "parse_genspec",
    "running_example_function",
    "running_example_module",
    "spec_name",
    "training_run_inputs",
    "WORKLOAD_NAMES",
]
