"""The end-to-end path-qualified analysis pipeline (§1's five steps).

:func:`run_qualified` performs, for one routine:

1. hot-path selection from a (training) path profile at coverage ``CA``;
2. qualification-automaton construction (Aho–Corasick over trimmed paths);
3. data-flow tracing into a hot-path graph, with recording edges;
4. conditional constant propagation on the hot-path graph;
5. reduction at benefit cutoff ``CR`` and re-analysis of the reduced graph;

plus translation of the path profile onto each produced graph, and a
baseline Wegman–Zadek run on the original CFG for comparison.  With
``CA = 0`` (or an empty profile) no tracing happens and the result degrades
to the baseline, exactly as in the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..automaton.qualification import QualificationAutomaton
from ..obs import Tracer, get_metrics, get_tracer
from ..dataflow.graph_view import GraphView
from ..dataflow.wegman_zadek import CondConstResult, analyze
from ..ir.cfg import Cfg, Edge
from ..ir.function import Function
from ..profiles.hot_paths import select_hot_paths
from ..profiles.path_profile import BLPath, PathProfile
from ..profiles.recording import recording_edges
from .hot_path_graph import HotPathGraph, ReducedGraph
from .reduction import ReductionResult, reduce_hpg
from .tracing import trace
from .translate import reduce_profile, translate_profile


@dataclass
class QualifiedAnalysis:
    """The complete result of path-qualified constant propagation on one
    routine."""

    function: Function
    cfg: Cfg
    recording: frozenset[Edge]
    block_sizes: dict
    ca: float
    cr: float
    train_profile: PathProfile
    #: Baseline: Wegman–Zadek on the original CFG (the paper's CA = 0).
    baseline: CondConstResult
    hot_paths: tuple[BLPath, ...] = ()
    automaton: Optional[QualificationAutomaton] = None
    hpg: Optional[HotPathGraph] = None
    hpg_analysis: Optional[CondConstResult] = None
    hpg_profile: Optional[PathProfile] = None
    reduction: Optional[ReductionResult] = None
    reduced_analysis: Optional[CondConstResult] = None
    reduced_profile: Optional[PathProfile] = None
    #: Wall-clock seconds per phase: automaton/tracing/analysis/reduction/...
    timings: dict[str, float] = field(default_factory=dict)

    # -- convenience accessors -------------------------------------------------

    @property
    def traced(self) -> bool:
        """True if any hot path was selected and tracing ran."""
        return self.hpg is not None

    @property
    def reduced(self) -> Optional[ReducedGraph]:
        return self.reduction.reduced if self.reduction is not None else None

    def final_analysis(self) -> CondConstResult:
        """The analysis whose results the optimizer consumes: the reduced
        graph's when tracing ran, otherwise the baseline."""
        return (
            self.reduced_analysis
            if self.reduced_analysis is not None
            else self.baseline
        )

    def final_profile(self) -> PathProfile:
        """The training profile expressed on the final graph."""
        return (
            self.reduced_profile
            if self.reduced_profile is not None
            else self.train_profile
        )

    @property
    def original_size(self) -> int:
        """Real vertices of the original CFG."""
        return len(self.function.blocks)

    @property
    def hpg_size(self) -> int:
        """Real vertices of the hot-path graph (original size if untraced)."""
        return self.hpg.num_real_vertices if self.hpg else self.original_size

    @property
    def reduced_size(self) -> int:
        """Real vertices of the reduced graph (original size if untraced)."""
        red = self.reduced
        return red.num_real_vertices if red else self.original_size

    @property
    def analysis_time(self) -> float:
        """Total seconds spent in qualified analysis (automaton + tracing +
        solving + reduction + re-analysis), the quantity of Figure 12."""
        return sum(self.timings.values())


#: Vertex-count blow-up relative to the original CFG (paper Figure 11).
_BLOWUP_BUCKETS = (1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 25.0)


def _emit_blowup_metrics(result: "QualifiedAnalysis", automaton, hpg, reduction) -> None:
    """Record hot-path-graph growth and automaton size for one traced
    routine (no-ops when the metrics registry is disabled)."""
    metrics = get_metrics()
    if not metrics.enabled:
        return
    metrics.counter("qualified_traced_routines").inc()
    metrics.counter("qualified_hot_paths").inc(len(result.hot_paths))
    metrics.counter("qualified_automaton_states").inc(automaton.num_states)
    orig = result.original_size
    if orig:
        metrics.histogram(
            "hpg_blowup_factor", buckets=_BLOWUP_BUCKETS
        ).observe(hpg.num_real_vertices / orig)
        metrics.histogram(
            "reduced_blowup_factor", buckets=_BLOWUP_BUCKETS
        ).observe(reduction.reduced.num_real_vertices / orig)


def block_sizes_of(fn: Function) -> dict:
    """Instruction count per CFG vertex (0 for the virtual vertices)."""
    return {label: block.size for label, block in fn.blocks.items()}


def run_qualified(
    fn: Function,
    train_profile: PathProfile,
    ca: float = 0.97,
    cr: float = 0.95,
    cfg: Optional[Cfg] = None,
    recording: Optional[frozenset[Edge]] = None,
    wz_engine: Optional[str] = None,
) -> QualifiedAnalysis:
    """Run the full pipeline on one routine.

    ``train_profile`` must have been collected on ``fn``'s CFG with the same
    recording-edge set (the interpreter's profiler guarantees this).
    ``wz_engine`` selects the conditional-constant engine for all three
    Wegman–Zadek runs (baseline/hpg/reduced); ``None`` keeps the ambient
    default (see :func:`repro.dataflow.wz_engine_scope`).
    """
    if cfg is None:
        cfg = Cfg.from_function(fn)
    if recording is None:
        recording = recording_edges(cfg)
    block_sizes = block_sizes_of(fn)

    # Phases are timed through spans.  With observability on they land in
    # the global trace (nested under the caller's span); with it off a
    # throwaway local tracer keeps the ``timings`` dict populated.  Only
    # durations enter QualifiedAnalysis, which must stay picklable for the
    # artifact cache.
    tr = get_tracer()
    if not tr.enabled:
        tr = Tracer()
    timings: dict[str, float] = {}

    def phase(name: str):
        return tr.span(f"qualified.{name}", routine=fn.name)

    with phase("baseline") as span:
        baseline = analyze(GraphView.from_function(fn, cfg), engine=wz_engine)
    timings["baseline"] = span.duration

    result = QualifiedAnalysis(
        function=fn,
        cfg=cfg,
        recording=recording,
        block_sizes=block_sizes,
        ca=ca,
        cr=cr,
        train_profile=train_profile,
        baseline=baseline,
        timings=timings,
    )

    hot_paths = select_hot_paths(train_profile, block_sizes, ca)
    result.hot_paths = hot_paths
    if not hot_paths:
        return result

    with phase("automaton") as span:
        automaton = QualificationAutomaton(recording, hot_paths)
    timings["automaton"] = span.duration

    with phase("tracing") as span:
        hpg = trace(fn, cfg, recording, automaton)
    timings["tracing"] = span.duration
    span.set(hpg_vertices=hpg.num_real_vertices)

    with phase("profile_translation") as span:
        hpg_profile = translate_profile(train_profile, hpg)
    timings["profile_translation"] = span.duration

    with phase("hpg_analysis") as span:
        hpg_analysis = analyze(hpg.view(), engine=wz_engine)
    timings["hpg_analysis"] = span.duration

    with phase("reduction") as span:
        reduction = reduce_hpg(hpg, hpg_analysis, hpg_profile, cr)
    timings["reduction"] = span.duration

    with phase("reduced_analysis") as span:
        reduced_profile = reduce_profile(hpg_profile, reduction.reduced)
        reduced_analysis = analyze(reduction.reduced.view(), engine=wz_engine)
    timings["reduced_analysis"] = span.duration

    _emit_blowup_metrics(result, automaton, hpg, reduction)

    result.automaton = automaton
    result.hpg = hpg
    result.hpg_profile = hpg_profile
    result.hpg_analysis = hpg_analysis
    result.reduction = reduction
    result.reduced_profile = reduced_profile
    result.reduced_analysis = reduced_analysis
    return result
