"""Path-profile translation (§4.2, Lemmas 1 and 2).

Because tracing preserves recording edges, a Ball–Larus path of the original
graph corresponds to exactly one Ball–Larus path of the hot-path graph: start
at ``(v0, q•)`` and follow the (deterministic) traced edges.  Reduction then
maps traced paths through class representatives.  Both translations preserve
counts exactly, so profile weight is conserved — a property the test suite
checks for every workload.
"""

from __future__ import annotations

from ..profiles.path_profile import BLPath, PathProfile
from .hot_path_graph import HotPathGraph, HpgVertex, ReducedGraph


def translate_path(path: BLPath, hpg: HotPathGraph) -> BLPath:
    """The unique hot-path-graph Ball–Larus path corresponding to ``path``."""
    automaton = hpg.automaton
    state = automaton.q_dot
    vertices: list[HpgVertex] = [(path.start, state)]
    prev = path.start
    for v in path.vertices[1:]:
        state = automaton.transition(state, (prev, v))
        vertices.append((v, state))
        prev = v
    translated = BLPath(tuple(vertices))
    for u, w in translated.edges():
        if not hpg.cfg.has_edge(u, w):
            raise ValueError(
                f"path {path} does not exist in the hot-path graph "
                f"(missing edge {(u, w)!r}); was it profiled on this CFG?"
            )
    return translated


def translate_profile(profile: PathProfile, hpg: HotPathGraph) -> PathProfile:
    """Reinterpret an original-graph profile as a hot-path-graph profile."""
    translated = PathProfile()
    for path, count in profile.items():
        translated.add(translate_path(path, hpg), count)
    return translated


def reduce_path(path: BLPath, reduced: ReducedGraph) -> BLPath:
    """Map a hot-path-graph Ball–Larus path through class representatives."""
    rep = reduced.representative_of
    return BLPath(tuple(rep[v] for v in path.vertices))


def reduce_profile(profile: PathProfile, reduced: ReducedGraph) -> PathProfile:
    """Reinterpret a hot-path-graph profile on the reduced graph.

    Distinct traced paths may map to the same reduced path; their counts
    merge, conserving total weight.
    """
    result = PathProfile()
    for path, count in profile.items():
        result.add(reduce_path(path, reduced), count)
    return result
