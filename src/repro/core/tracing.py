"""Data-flow tracing: building the hot-path graph (Figure 4 of the paper).

This is Holley and Rosen's tracing algorithm extended to mark recording
edges: a worklist explores all (vertex, state) pairs reachable from
``(r, q•)``; each CFG edge ``(v, v')`` induces the unique traced edge
``((v, q), (v', q'))`` where ``q'`` is the automaton transition on
``(v, v')``, and the traced edge is recording iff ``(v, v')`` is.

Theorem 3 (verified by property tests): on completion, ``(v, q)`` is a
traced vertex iff some path from the entry drives the automaton from its
start configuration to ``q`` while walking to ``v``.
"""

from __future__ import annotations

from ..automaton.qualification import QualificationAutomaton
from ..ir.cfg import Cfg, Edge
from ..ir.function import Function
from .hot_path_graph import HotPathGraph, HpgVertex


def trace(
    fn: Function,
    cfg: Cfg,
    recording: frozenset[Edge],
    automaton: QualificationAutomaton,
) -> HotPathGraph:
    """Construct the hot-path graph of ``fn`` for ``automaton``.

    ``cfg`` and ``recording`` must be the graph and recording-edge set the
    automaton was built against.
    """
    entry: HpgVertex = (cfg.entry, automaton.q_dot)
    # Every edge into the exit is recording and all recording transitions
    # target q•, so the traced graph has the single exit (exit, q•).
    exit_vertex: HpgVertex = (cfg.exit, automaton.q_dot)

    traced = Cfg(entry=entry, exit=exit_vertex)
    traced_recording: set[tuple[HpgVertex, HpgVertex]] = set()

    worklist: list[HpgVertex] = [entry]
    visited: set[HpgVertex] = {entry}
    while worklist:
        v, q = worklist.pop()
        for succ in cfg.succs(v):
            edge = (v, succ)
            q_next = automaton.transition(q, edge)
            target: HpgVertex = (succ, q_next)
            if target not in visited:
                visited.add(target)
                traced.add_vertex(target)
                worklist.append(target)
            traced.add_edge((v, q), target)
            if edge in recording:
                traced_recording.add(((v, q), target))

    return HotPathGraph(
        fn, cfg, recording, automaton, traced, frozenset(traced_recording)
    )
