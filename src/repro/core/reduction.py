"""Reduction of the hot-path graph (§5 of the paper).

Tracing duplicates every vertex the automaton distinguishes, but most
duplicates contribute nothing (Figure 7: a handful of blocks carry almost
all non-local constants).  Reduction eliminates worthless duplicates in four
steps:

1. **Hot vertices** — order traced vertices by the dynamic non-local
   constants they execute (constant sites × profiled frequency) and keep the
   top vertices covering a fraction ``CR`` of the total.
2. **Compatibility partition** ``Π`` — per original vertex, greedily group
   duplicates; a duplicate may join a group if meeting its solution into the
   group's does not destroy any constant of any *hot* member.  Vertices are
   considered in descending weight order to keep hot vertices together.
   (Compatibility is not transitive, hence the greedy construction — this is
   the paper's explicitly heuristic step.)
3. **DFA minimization** — refine ``Π`` with Hopcroft partition refinement so
   that each class maps each original CFG edge into a single class; the
   quotient graph is then deterministic and admits no new entry paths into
   any class, so no solution is lowered below the meet of its class.
4. **Collapse** — replace each class with a representative; an edge between
   representatives is recording iff the underlying original edge is, which
   is well-defined because all members of a class share their original
   vertex.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automaton.minimize import hopcroft_refine, quotient_map
from ..dataflow.lattice import UNREACHABLE, EnvValue, meet_env
from ..dataflow.local import local_constant_sites
from ..dataflow.transfer import transfer_instr
from ..dataflow.wegman_zadek import CondConstResult
from ..ir.cfg import Cfg
from ..profiles.path_profile import PathProfile
from .hot_path_graph import HotPathGraph, HpgVertex, ReducedGraph


@dataclass
class ReductionResult:
    """Everything the reduction computed, for inspection and experiments."""

    reduced: ReducedGraph
    #: Traced vertices selected as hot, in descending weight order.
    hot_vertices: tuple[HpgVertex, ...]
    #: Dynamic non-local constants executed at each traced vertex.
    weights: dict[HpgVertex, int]
    #: The compatibility partition Π (before minimization).
    compatibility: tuple[tuple[HpgVertex, ...], ...]
    #: The final partition Π' (after minimization) = reduced.classes.
    refined: tuple[tuple[HpgVertex, ...], ...]


def nonlocal_constant_sites(
    analysis: CondConstResult, vertex: HpgVertex
) -> dict[int, int]:
    """Pure constant sites at ``vertex`` that local analysis cannot find.

    These are the constants the paper weighs: "Constants that can be found
    solely through analysis within a basic block are excluded."
    """
    block = analysis.view.block_of(vertex)
    if block is None:
        return {}
    local = local_constant_sites(block)
    return {
        idx: val
        for idx, val in analysis.pure_constant_sites(vertex).items()
        if idx not in local
    }


def vertex_weights(
    hpg: HotPathGraph,
    analysis: CondConstResult,
    hpg_profile: PathProfile,
) -> dict[HpgVertex, int]:
    """Dynamic non-local constant executions per traced vertex."""
    freq = hpg_profile.block_frequencies()
    weights: dict[HpgVertex, int] = {}
    for vertex in hpg.cfg.vertices:
        n_consts = len(nonlocal_constant_sites(analysis, vertex))
        weights[vertex] = n_consts * freq.get(vertex, 0)
    return weights


def select_hot_vertices(
    weights: dict[HpgVertex, int], cr: float
) -> tuple[HpgVertex, ...]:
    """The top-weight vertices covering a fraction ``cr`` of all dynamic
    non-local constants (§5 step 1)."""
    if not 0.0 <= cr <= 1.0:
        raise ValueError(f"cr must be in [0, 1], got {cr}")
    positive = [(w, v) for v, w in weights.items() if w > 0]
    total = sum(w for w, _ in positive)
    if total == 0 or cr == 0.0:
        return ()
    positive.sort(key=lambda item: (-item[0], _vertex_key(item[1])))
    goal = cr * total
    covered = 0
    hot: list[HpgVertex] = []
    for w, v in positive:
        if covered >= goal:
            break
        hot.append(v)
        covered += w
    return tuple(hot)


def _vertex_key(vertex: HpgVertex):
    return (repr(vertex[0]), vertex[1])


class _CompatibilityGroup:
    """A growing class of Π: members, their met solution, and hot members'
    constants that must be preserved."""

    __slots__ = ("members", "met_env", "hot_constants")

    def __init__(self) -> None:
        self.members: list[HpgVertex] = []
        self.met_env: EnvValue = UNREACHABLE
        #: (vertex, site index) -> required constant, for hot members.
        self.hot_constants: dict[tuple[HpgVertex, int], int] = {}


def compatibility_partition(
    hpg: HotPathGraph,
    analysis: CondConstResult,
    weights: dict[HpgVertex, int],
    hot: tuple[HpgVertex, ...],
) -> tuple[tuple[HpgVertex, ...], ...]:
    """§5 step 2: greedily partition each vertex's duplicates into
    compatibility classes."""
    hot_set = set(hot)
    by_original: dict = {}
    for vertex in hpg.cfg.vertices:
        by_original.setdefault(vertex[0], []).append(vertex)

    partition: list[tuple[HpgVertex, ...]] = []
    for original in hpg.original_cfg.vertices:
        duplicates = by_original.get(original, [])
        if not duplicates:
            continue
        # Descending weight keeps hot vertices together; ties break on the
        # automaton state for determinism.
        duplicates.sort(key=lambda v: (-weights.get(v, 0), v[1]))
        block = hpg.function.blocks.get(original)
        groups: list[_CompatibilityGroup] = []
        for vertex in duplicates:
            placed = False
            for group in groups:
                if _try_join(group, vertex, block, analysis, hot_set):
                    placed = True
                    break
            if not placed:
                group = _CompatibilityGroup()
                _force_join(group, vertex, block, analysis, hot_set)
                groups.append(group)
        partition.extend(tuple(g.members) for g in groups)
    return tuple(partition)


def _constants_under(block, env: EnvValue) -> dict[int, int]:
    """Constant pure sites of ``block`` when entered with ``env``."""
    if block is None or env is UNREACHABLE:
        return {}
    values: dict[int, int] = {}
    for idx, instr in enumerate(block.instrs):
        env, value = transfer_instr(instr, env)
        if instr.dest is not None and instr.is_pure and isinstance(value, int):
            values[idx] = value
    return values


def _try_join(
    group: _CompatibilityGroup,
    vertex: HpgVertex,
    block,
    analysis: CondConstResult,
    hot_set: set,
) -> bool:
    """Add ``vertex`` to ``group`` if no hot constant is destroyed."""
    candidate_env = meet_env(group.met_env, analysis.input_env(vertex))
    required = dict(group.hot_constants)
    if vertex in hot_set:
        for idx, val in analysis.pure_constant_sites(vertex).items():
            required[(vertex, idx)] = val
    if required:
        met_consts = _constants_under(block, candidate_env)
        for (_, idx), val in required.items():
            if met_consts.get(idx) != val:
                return False
    group.members.append(vertex)
    group.met_env = candidate_env
    group.hot_constants = required
    return True


def _force_join(
    group: _CompatibilityGroup,
    vertex: HpgVertex,
    block,
    analysis: CondConstResult,
    hot_set: set,
) -> None:
    group.members.append(vertex)
    group.met_env = meet_env(group.met_env, analysis.input_env(vertex))
    if vertex in hot_set:
        for idx, val in analysis.pure_constant_sites(vertex).items():
            group.hot_constants[(vertex, idx)] = val


def _transition_map(hpg: HotPathGraph):
    """Transitions of the HPG viewed as a DFA over original-CFG edges."""

    def transitions(vertex: HpgVertex):
        return {succ[0]: succ for succ in hpg.cfg.succs(vertex)}

    return transitions


def reduce_hpg(
    hpg: HotPathGraph,
    analysis: CondConstResult,
    hpg_profile: PathProfile,
    cr: float = 0.95,
) -> ReductionResult:
    """Run the full reduction (§5) and build the reduced graph."""
    weights = vertex_weights(hpg, analysis, hpg_profile)
    hot = select_hot_vertices(weights, cr)
    compatibility = compatibility_partition(hpg, analysis, weights, hot)

    states = list(hpg.cfg.vertices)
    refined = hopcroft_refine(states, compatibility, _transition_map(hpg))
    rep = quotient_map(refined)

    # Collapse: build the quotient graph over representatives.
    transitions = _transition_map(hpg)
    reduced_cfg = Cfg(entry=rep[hpg.cfg.entry], exit=rep[hpg.cfg.exit])
    for block in refined:
        reduced_cfg.add_vertex(block[0])
    reduced_recording: set = set()
    for u, v in hpg.cfg.edges:
        ru, rv = rep[u], rep[v]
        reduced_cfg.add_edge(ru, rv)
        if (u, v) in hpg.recording:
            reduced_recording.add((ru, rv))

    _assert_well_defined(refined, rep, transitions)

    reduced = ReducedGraph(
        hpg, reduced_cfg, frozenset(reduced_recording), refined, rep
    )
    return ReductionResult(
        reduced=reduced,
        hot_vertices=hot,
        weights=weights,
        compatibility=compatibility,
        refined=refined,
    )


def _assert_well_defined(refined, rep, transitions) -> None:
    """Refinement guarantees each class maps each label into one class."""
    for block in refined:
        seen: dict = {}
        for member in block:
            for label, target in transitions(member).items():
                r = rep[target]
                if seen.setdefault(label, r) != r:
                    raise AssertionError(
                        f"partition not closed under label {label!r} "
                        f"in class {block!r}"
                    )
