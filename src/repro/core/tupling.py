"""Context tupling — Holley and Rosen's other qualification method (§4.3).

Where data-flow tracing tracks the automaton state *in the control-flow
graph* (by duplicating vertices), context tupling tracks it *in the lattice*:
the value at a vertex is a tuple of environments indexed by automaton state,
and the analysis runs over the **original** graph.  The paper chose tracing
(simpler to explain, composes across passes, no efficiency win for tupling)
but describes tupling as the alternative that avoids irreducible graphs.

We implement tupling for conditional constant propagation and use it two
ways:

* as an executable cross-check — for every traced vertex ``(v, q)``, the
  tupled solution's ``q`` component at ``v`` must equal the traced graph's
  solution at ``(v, q)`` (they are the same fixpoint computed over
  isomorphic equation systems), which the test suite asserts on the running
  example and on random programs;
* as an ablation baseline for the cost of tracing
  (``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..automaton.qualification import QualificationAutomaton
from ..dataflow.lattice import (
    TOP,
    UNREACHABLE,
    BOT,
    ConstEnv,
    EnvValue,
    meet_env,
)
from ..dataflow.transfer import eval_operand, transfer_block
from ..ir.cfg import Cfg, Edge
from ..ir.function import Function
from ..ir.instructions import Branch, Jump, Ret

Vertex = Hashable

#: The tupled lattice value at a vertex: automaton state -> environment.
#: States that no executable path reaches are simply absent.
Tuple_ = dict[int, ConstEnv]


class TupledResult:
    """Solution of a context-tupled conditional constant propagation."""

    def __init__(
        self,
        fn: Function,
        cfg: Cfg,
        automaton: QualificationAutomaton,
        in_values: dict[Vertex, Tuple_],
        executable: frozenset[tuple[Vertex, int, Vertex]],
    ) -> None:
        self.fn = fn
        self.cfg = cfg
        self.automaton = automaton
        self.in_values = in_values
        #: Executable (vertex, state, successor) triples.
        self.executable = executable

    def states_at(self, vertex: Vertex) -> tuple[int, ...]:
        """Automaton states reachable at ``vertex`` (Theorem 3's pairs)."""
        return tuple(sorted(self.in_values.get(vertex, {})))

    def solution(self, vertex: Vertex, state: int) -> EnvValue:
        """The qualified solution at ``vertex`` given automaton ``state``."""
        envs = self.in_values.get(vertex)
        if envs is None or state not in envs:
            return UNREACHABLE
        return envs[state]

    def merged_solution(self, vertex: Vertex) -> EnvValue:
        """Theorem 1's projection: the meet over all states at ``vertex``."""
        acc: EnvValue = UNREACHABLE
        for env in self.in_values.get(vertex, {}).values():
            acc = meet_env(acc, env)
        return acc


def tupled_analyze(
    fn: Function,
    cfg: Cfg,
    recording: frozenset[Edge],
    automaton: QualificationAutomaton,
    entry_env: Optional[ConstEnv] = None,
) -> TupledResult:
    """Conditional constant propagation over the tupled lattice.

    The worklist carries (vertex, state) pairs; each pair behaves exactly
    like the traced vertex ``(v, q)`` would under
    :func:`repro.dataflow.wegman_zadek.analyze`, but the graph is never
    materialized.
    """
    if entry_env is None:
        entry_env = ConstEnv({p: BOT for p in fn.params})

    in_values: dict[Vertex, Tuple_] = {cfg.entry: {automaton.q_dot: entry_env}}
    executable: set[tuple[Vertex, int, Vertex]] = set()
    worklist: list[tuple[Vertex, int]] = [(cfg.entry, automaton.q_dot)]
    on_list: set[tuple[Vertex, int]] = set(worklist)

    while worklist:
        v, q = worklist.pop()
        on_list.discard((v, q))
        env = in_values.get(v, {}).get(q)
        if env is None:
            continue

        block = fn.blocks.get(v)
        if block is None:
            out_env = env
            targets = list(cfg.succs(v))
        else:
            out_env = transfer_block(block, env)
            targets = _targets(block, out_env, cfg, v)

        for w in targets:
            q_next = automaton.transition(q, (v, w))
            newly = (v, q, w) not in executable
            executable.add((v, q, w))
            slot = in_values.setdefault(w, {})
            old = slot.get(q_next, UNREACHABLE)
            new = meet_env(old, out_env)
            if newly or new != old:
                assert new is not UNREACHABLE
                slot[q_next] = new  # type: ignore[assignment]
                if (w, q_next) not in on_list:
                    worklist.append((w, q_next))
                    on_list.add((w, q_next))

    return TupledResult(fn, cfg, automaton, in_values, frozenset(executable))


def _targets(block, out_env: ConstEnv, cfg: Cfg, v: Vertex) -> list:
    term = block.terminator
    if isinstance(term, Jump):
        return [term.target]
    if isinstance(term, Ret):
        return [cfg.exit]
    if isinstance(term, Branch):
        cond = eval_operand(term.cond, out_env)
        if cond is TOP:
            return []
        if cond is BOT:
            return [term.if_true, term.if_false]
        return [term.if_true if cond != 0 else term.if_false]
    raise TypeError(f"unknown terminator {term!r}")  # pragma: no cover
