"""Hot-path graphs: the traced CFG of Definition 6.

A :class:`HotPathGraph` is a CFG whose vertices are ``(original vertex,
automaton state)`` pairs, together with the recording edges carried over
from the original graph (§4.2), so the original path profile can be
reinterpreted on it.  A :class:`ReducedGraph` is the result of §5's
reduction: a quotient of a hot-path graph whose vertices are class
representatives.

Both expose ``view()`` so any analysis written against
:class:`~repro.dataflow.graph_view.GraphView` runs on them unchanged.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from ..automaton.qualification import QualificationAutomaton
from ..dataflow.graph_view import GraphView
from ..ir.cfg import Cfg, Edge
from ..ir.function import Function

OrigVertex = Hashable
#: A traced vertex: (original vertex, automaton state).
HpgVertex = tuple[OrigVertex, int]


class TracedGraph:
    """Common structure of hot-path graphs and reduced hot-path graphs."""

    def __init__(
        self,
        function: Function,
        original_cfg: Cfg,
        original_recording: frozenset[Edge],
        automaton: QualificationAutomaton,
        cfg: Cfg,
        recording: frozenset,
    ) -> None:
        self.function = function
        self.original_cfg = original_cfg
        self.original_recording = original_recording
        self.automaton = automaton
        #: The traced graph itself; vertices are (original vertex, state).
        self.cfg = cfg
        #: Recording edges of the traced graph (pairs of traced vertices).
        self.recording = recording

    @staticmethod
    def original_vertex(vertex: HpgVertex) -> OrigVertex:
        """The original CFG vertex a traced vertex duplicates."""
        return vertex[0]

    @staticmethod
    def state(vertex: HpgVertex) -> int:
        """The automaton state encoded in a traced vertex."""
        return vertex[1]

    def duplicates(self, original: OrigVertex) -> tuple[HpgVertex, ...]:
        """All traced copies of ``original``, in vertex order."""
        return tuple(v for v in self.cfg.vertices if v[0] == original)

    def view(self) -> GraphView:
        """A :class:`GraphView` for running analyses on this graph."""
        blocks = {}
        labels = {}
        for vertex in self.cfg.vertices:
            orig = vertex[0]
            block = self.function.blocks.get(orig)
            if block is not None:
                blocks[vertex] = block
                labels[vertex] = orig
        return GraphView(self.cfg, self.function.params, blocks, labels)

    @property
    def num_real_vertices(self) -> int:
        """Traced vertices excluding the virtual entry/exit copies."""
        return len(
            [v for v in self.cfg.vertices if v[0] in self.function.blocks]
        )

    def growth_over(self, baseline_vertices: int) -> float:
        """Fractional increase in real vertices over the original CFG
        (Figure 11's y-axis)."""
        if baseline_vertices == 0:
            return 0.0
        return (self.num_real_vertices - baseline_vertices) / baseline_vertices


class HotPathGraph(TracedGraph):
    """The product graph produced by data-flow tracing (Figure 4)."""


class ReducedGraph(TracedGraph):
    """The reduced hot-path graph (§5).

    ``classes`` is the final partition ``Π'``; each vertex of :attr:`cfg`
    is a class representative, and :attr:`representative_of` maps every
    original hot-path-graph vertex to its representative.
    """

    def __init__(
        self,
        hpg: HotPathGraph,
        cfg: Cfg,
        recording: frozenset,
        classes: Sequence[tuple[HpgVertex, ...]],
        representative_of: dict[HpgVertex, HpgVertex],
    ) -> None:
        super().__init__(
            hpg.function,
            hpg.original_cfg,
            hpg.original_recording,
            hpg.automaton,
            cfg,
            recording,
        )
        self.hpg = hpg
        self.classes = tuple(classes)
        self.representative_of = representative_of

    def class_of(self, vertex: HpgVertex) -> tuple[HpgVertex, ...]:
        """The class containing a hot-path-graph vertex."""
        rep = self.representative_of[vertex]
        for block in self.classes:
            if block[0] == rep:
                return block
        raise KeyError(vertex)  # pragma: no cover - representative_of is total
