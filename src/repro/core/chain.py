"""Chaining qualified passes: profiles survive materialization.

The paper's third contribution is that path-profiling information is
preserved through the CFG transformations, so "profiling information is
available for subsequent analyses and optimizations" — and §4.3 explains
that this composability is why tracing was chosen over tupling.

This module closes the loop: after a traced (or reduced) graph is
materialized into an executable function, :func:`relabel_profile` rewrites
the translated profile onto the new function's block labels, and
:func:`materialized_recording_edges` maps the traced recording edges the
same way.  The pair is exactly what a *second* qualified pass needs::

    qa1 = run_qualified(fn, profile, ca)
    fn2 = materialize(qa1.reduced)                       # no folding: exact
    profile2, recording2 = profile_for_materialized(qa1)
    qa2 = run_qualified(fn2, profile2,
                        cfg=Cfg.from_function(fn2), recording=recording2)

Lemmas 1–2 guarantee ``profile2`` is a faithful Ball–Larus profile of
``fn2`` with respect to ``recording2`` (the tests re-derive it from an
actual instrumented run of ``fn2`` and compare).
"""

from __future__ import annotations

from typing import Mapping

from ..ir.cfg import Cfg, ENTRY, EXIT, Edge
from ..opt.codegen import vertex_labels
from ..profiles.path_profile import BLPath, PathProfile
from .hot_path_graph import HpgVertex, TracedGraph
from .qualified import QualifiedAnalysis


def _label_map(graph: TracedGraph) -> dict[HpgVertex, str]:
    labels = dict(vertex_labels(graph))
    # Virtual vertices keep their virtual names.
    labels[graph.cfg.entry] = ENTRY
    labels[graph.cfg.exit] = EXIT
    return labels


def relabel_profile(profile: PathProfile, graph: TracedGraph) -> PathProfile:
    """Rewrite a traced-graph profile onto materialized block labels."""
    labels = _label_map(graph)
    out = PathProfile()
    for path, count in profile.items():
        out.add(BLPath(tuple(labels[v] for v in path.vertices)), count)
    return out


def materialized_recording_edges(graph: TracedGraph) -> frozenset[Edge]:
    """The traced recording edges, as label pairs of the materialized
    function.

    This set, not a fresh DFS over the new function, is what makes the
    relabelled profile interpretable: Lemma 1 ties path boundaries to these
    edges.  (It still acyclifies the new CFG, because a non-recording cycle
    would project to a non-recording cycle of the original graph.)
    """
    labels = _label_map(graph)
    return frozenset(
        (labels[u], labels[v]) for u, v in graph.recording
    )


def profile_for_materialized(
    qa: QualifiedAnalysis, stage: str = "reduced"
) -> tuple[PathProfile, frozenset[Edge]]:
    """(profile, recording edges) for the materialization of a pipeline
    stage — ready to drive a second qualified pass.

    ``stage`` is ``"reduced"`` (default) or ``"hpg"``.  Raises
    :class:`ValueError` for an untraced analysis: the original profile and
    recording edges are already valid there.
    """
    if not qa.traced:
        raise ValueError("analysis was not traced; use the original profile")
    if stage == "reduced":
        graph: TracedGraph = qa.reduced
        profile = qa.reduced_profile
    elif stage == "hpg":
        graph = qa.hpg
        profile = qa.hpg_profile
    else:
        raise ValueError(f"unknown stage {stage!r}")
    return relabel_profile(profile, graph), materialized_recording_edges(graph)
