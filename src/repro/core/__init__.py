"""The paper's core contribution: data-flow tracing, hot-path graphs,
reduction, profile translation, and the end-to-end qualified-analysis
pipeline."""

from .chain import (
    materialized_recording_edges,
    profile_for_materialized,
    relabel_profile,
)
from .hot_path_graph import HotPathGraph, HpgVertex, ReducedGraph, TracedGraph
from .qualified import QualifiedAnalysis, block_sizes_of, run_qualified
from .reduction import (
    ReductionResult,
    compatibility_partition,
    nonlocal_constant_sites,
    reduce_hpg,
    select_hot_vertices,
    vertex_weights,
)
from .qualify_any import ProblemFactory, QualifiedSolution, qualify_problem
from .tracing import trace
from .tupling import TupledResult, tupled_analyze
from .translate import (
    reduce_path,
    reduce_profile,
    translate_path,
    translate_profile,
)

__all__ = [
    "block_sizes_of",
    "compatibility_partition",
    "HotPathGraph",
    "materialized_recording_edges",
    "profile_for_materialized",
    "relabel_profile",
    "HpgVertex",
    "nonlocal_constant_sites",
    "QualifiedAnalysis",
    "QualifiedSolution",
    "qualify_problem",
    "ProblemFactory",
    "reduce_hpg",
    "reduce_path",
    "reduce_profile",
    "ReducedGraph",
    "ReductionResult",
    "run_qualified",
    "select_hot_vertices",
    "trace",
    "TracedGraph",
    "translate_path",
    "TupledResult",
    "tupled_analyze",
    "translate_profile",
    "vertex_weights",
]
