"""Qualify *any* monotone data-flow problem, not just constant propagation.

The paper: "The technique can be applied to any data-flow problem."  This
module packages that claim as API: give it a routine, a training profile,
and a :class:`~repro.dataflow.framework.DataflowProblem` factory, and it
returns the problem's solution on the hot-path graph next to the baseline
solution on the original CFG, plus helpers for comparing precision per
duplicate.

The factory receives the graph view it will run on, because some problems
need view-specific boundary information (e.g. reaching definitions names the
entry vertex).  Problems that don't can ignore it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from contextlib import nullcontext

from ..automaton.qualification import QualificationAutomaton
from ..dataflow.framework import DataflowProblem, Solution, solve
from ..dataflow.graph_view import GraphView
from ..dataflow.wegman_zadek import wz_engine_scope
from ..ir.cfg import Cfg, Edge
from ..ir.function import Function
from ..profiles.hot_paths import select_hot_paths
from ..profiles.path_profile import PathProfile
from ..profiles.recording import recording_edges
from .hot_path_graph import HotPathGraph
from .qualified import block_sizes_of
from .tracing import trace

Vertex = Hashable

#: Builds a problem instance for a given view.
ProblemFactory = Callable[[GraphView], DataflowProblem]


@dataclass
class QualifiedSolution:
    """A data-flow problem solved both ways: plain and path-qualified."""

    function: Function
    hpg: Optional[HotPathGraph]
    #: Solution over the original CFG.
    baseline: Solution
    baseline_view: GraphView
    #: Solution over the hot-path graph (None when no hot paths selected).
    qualified: Optional[Solution]
    qualified_view: Optional[GraphView]

    @property
    def traced(self) -> bool:
        return self.hpg is not None

    def duplicates(self, label: str) -> tuple:
        """Traced copies of the block ``label`` (just the label if untraced)."""
        if self.hpg is None:
            return (label,)
        return self.hpg.duplicates(label)

    def baseline_in(self, label: str):
        """Baseline solution value flowing into ``label``."""
        return self.baseline.value_in[label]

    def qualified_in(self, vertex: Vertex):
        """Qualified solution value flowing into a traced vertex."""
        if self.qualified is None:
            return self.baseline.value_in[vertex]
        return self.qualified.value_in[vertex]


def qualify_problem(
    factory: ProblemFactory,
    fn: Function,
    profile: PathProfile,
    ca: float = 0.97,
    cfg: Optional[Cfg] = None,
    recording: Optional[frozenset[Edge]] = None,
    wz_engine: Optional[str] = None,
) -> QualifiedSolution:
    """Solve ``factory``'s problem plainly and on the hot-path graph.

    ``wz_engine``, when given, scopes the Wegman–Zadek engine default over
    both solves — relevant to factories whose transfer functions consult
    conditional-constant results.
    """
    if cfg is None:
        cfg = Cfg.from_function(fn)
    if recording is None:
        recording = recording_edges(cfg)

    scope = wz_engine_scope(wz_engine) if wz_engine is not None else nullcontext()
    with scope:
        baseline_view = GraphView.from_function(fn, cfg)
        baseline = solve(factory(baseline_view), baseline_view)

        hot = select_hot_paths(profile, block_sizes_of(fn), ca)
        if not hot:
            return QualifiedSolution(
                fn, None, baseline, baseline_view, None, None
            )

        automaton = QualificationAutomaton(recording, hot)
        hpg = trace(fn, cfg, recording, automaton)
        view = hpg.view()
        qualified = solve(factory(view), view)
    return QualifiedSolution(fn, hpg, baseline, baseline_view, qualified, view)
