"""MiniC semantic analysis.

Checks performed before lowering:

* unique global, function, and parameter names;
* variables declared (textually) before use, and not redeclared;
* array references name declared globals; scalar/array namespaces are
  disjoint;
* calls target a declared function or builtin with the right arity;
* ``break``/``continue`` appear inside loops;
* no statements follow a ``return``/``break``/``continue`` in a block;
* a ``main`` function exists.

MiniC has function-level scoping (a ``var`` is visible from its declaration
to the end of the function), which keeps the lowered IR's variable story
identical to the analyses' model.
"""

from __future__ import annotations

from ..ir.validate import BUILTIN_FUNCTIONS
from .ast_nodes import (
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FuncDecl,
    IfStmt,
    IndexExpr,
    NumberExpr,
    PrintStmt,
    Program,
    ReturnStmt,
    Stmt,
    StoreStmt,
    UnaryExpr,
    VarDecl,
    VarExpr,
    WhileStmt,
)
from .lexer import MiniCError

#: Builtin name -> arity.
BUILTIN_ARITY = {"abs": 1, "min2": 2, "max2": 2, "clamp": 3}

assert set(BUILTIN_ARITY) == set(BUILTIN_FUNCTIONS)


def check_program(program: Program) -> None:
    """Validate ``program``; raises :class:`MiniCError` on the first fault."""
    arrays: dict[str, int] = {}
    for g in program.globals:
        if g.name in arrays:
            raise MiniCError(f"duplicate global {g.name!r}", g.line)
        if g.size <= 0:
            raise MiniCError(f"global {g.name!r} has non-positive size", g.line)
        if len(g.init) > g.size:
            raise MiniCError(
                f"global {g.name!r} initialized with {len(g.init)} values "
                f"but has size {g.size}",
                g.line,
            )
        arrays[g.name] = g.size

    functions: dict[str, FuncDecl] = {}
    for fn in program.functions:
        if fn.name in functions or fn.name in BUILTIN_ARITY:
            raise MiniCError(f"duplicate function {fn.name!r}", fn.line)
        if fn.name in arrays:
            raise MiniCError(
                f"function {fn.name!r} collides with a global array", fn.line
            )
        functions[fn.name] = fn

    if "main" not in functions:
        raise MiniCError("program has no 'main' function")

    for fn in program.functions:
        _check_function(fn, arrays, functions)


def _check_function(
    fn: FuncDecl, arrays: dict[str, int], functions: dict[str, FuncDecl]
) -> None:
    declared: set[str] = set()
    for p in fn.params:
        if p in declared:
            raise MiniCError(f"duplicate parameter {p!r} in {fn.name}", fn.line)
        if p in arrays:
            raise MiniCError(
                f"parameter {p!r} of {fn.name} collides with a global array",
                fn.line,
            )
        declared.add(p)

    ctx = _Context(fn.name, arrays, functions, declared)
    _check_block(fn.body, ctx, loop_depth=0)


class _Context:
    __slots__ = ("fn_name", "arrays", "functions", "declared")

    def __init__(self, fn_name, arrays, functions, declared) -> None:
        self.fn_name = fn_name
        self.arrays = arrays
        self.functions = functions
        self.declared = declared


def _check_block(body: tuple[Stmt, ...], ctx: _Context, loop_depth: int) -> bool:
    """Check statements; returns True if the block always transfers control
    away (so anything after it would be unreachable)."""
    terminated = False
    for stmt in body:
        if terminated:
            raise MiniCError(
                f"unreachable statement in {ctx.fn_name}", _line_of(stmt)
            )
        terminated = _check_stmt(stmt, ctx, loop_depth)
    return terminated


def _line_of(stmt: Stmt) -> int:
    return getattr(stmt, "line", 0)


def _check_stmt(stmt: Stmt, ctx: _Context, loop_depth: int) -> bool:
    if isinstance(stmt, VarDecl):
        if stmt.name in ctx.declared:
            raise MiniCError(f"redeclaration of {stmt.name!r}", stmt.line)
        if stmt.name in ctx.arrays:
            raise MiniCError(
                f"variable {stmt.name!r} collides with a global array", stmt.line
            )
        if stmt.init is not None:
            _check_expr(stmt.init, ctx)
        ctx.declared.add(stmt.name)
        return False
    if isinstance(stmt, AssignStmt):
        if stmt.name not in ctx.declared:
            raise MiniCError(f"assignment to undeclared {stmt.name!r}", stmt.line)
        _check_expr(stmt.value, ctx)
        return False
    if isinstance(stmt, StoreStmt):
        if stmt.array not in ctx.arrays:
            raise MiniCError(f"store to unknown array {stmt.array!r}", stmt.line)
        _check_expr(stmt.index, ctx)
        _check_expr(stmt.value, ctx)
        return False
    if isinstance(stmt, IfStmt):
        _check_expr(stmt.cond, ctx)
        t1 = _check_block(stmt.then_body, ctx, loop_depth)
        t2 = _check_block(stmt.else_body, ctx, loop_depth) if stmt.else_body else False
        return t1 and t2 and bool(stmt.else_body)
    if isinstance(stmt, WhileStmt):
        _check_expr(stmt.cond, ctx)
        _check_block(stmt.body, ctx, loop_depth + 1)
        return False
    if isinstance(stmt, ForStmt):
        if stmt.init is not None:
            _check_stmt(stmt.init, ctx, loop_depth)
        if stmt.cond is not None:
            _check_expr(stmt.cond, ctx)
        _check_block(stmt.body, ctx, loop_depth + 1)
        if stmt.step is not None:
            if isinstance(stmt.step, (BreakStmt, ContinueStmt, ReturnStmt)):
                raise MiniCError("bad for-step", stmt.line)
            _check_stmt(stmt.step, ctx, loop_depth)
        return False
    if isinstance(stmt, BreakStmt):
        if loop_depth == 0:
            raise MiniCError("break outside a loop", stmt.line)
        return True
    if isinstance(stmt, ContinueStmt):
        if loop_depth == 0:
            raise MiniCError("continue outside a loop", stmt.line)
        return True
    if isinstance(stmt, ReturnStmt):
        if stmt.value is not None:
            _check_expr(stmt.value, ctx)
        return True
    if isinstance(stmt, PrintStmt):
        for arg in stmt.args:
            _check_expr(arg, ctx)
        return False
    if isinstance(stmt, ExprStmt):
        if not isinstance(stmt.expr, CallExpr):
            raise MiniCError("expression statement must be a call", stmt.line)
        _check_expr(stmt.expr, ctx)
        return False
    raise MiniCError(f"unknown statement {stmt!r}")


def _check_expr(expr: Expr, ctx: _Context) -> None:
    if isinstance(expr, NumberExpr):
        return
    if isinstance(expr, VarExpr):
        if expr.name not in ctx.declared:
            raise MiniCError(f"use of undeclared variable {expr.name!r}", expr.line)
        return
    if isinstance(expr, IndexExpr):
        if expr.array not in ctx.arrays:
            raise MiniCError(f"unknown array {expr.array!r}", expr.line)
        _check_expr(expr.index, ctx)
        return
    if isinstance(expr, UnaryExpr):
        _check_expr(expr.operand, ctx)
        return
    if isinstance(expr, BinaryExpr):
        _check_expr(expr.lhs, ctx)
        _check_expr(expr.rhs, ctx)
        return
    if isinstance(expr, CallExpr):
        if expr.func in ctx.functions:
            arity = len(ctx.functions[expr.func].params)
        elif expr.func in BUILTIN_ARITY:
            arity = BUILTIN_ARITY[expr.func]
        else:
            raise MiniCError(f"call to unknown function {expr.func!r}", expr.line)
        if len(expr.args) != arity:
            raise MiniCError(
                f"{expr.func} expects {arity} arguments, got {len(expr.args)}",
                expr.line,
            )
        for arg in expr.args:
            _check_expr(arg, ctx)
        return
    raise MiniCError(f"unknown expression {expr!r}")
