"""Lowering MiniC to the three-address IR.

The lowering is deliberately naive — no folding, no strength reduction —
because the paper ran its constant propagator "immediately after SUIF's
front end", on code "very close to the original C".  Naive lowering leaves
exactly the kind of redundancy the analyses are supposed to find.

Short-circuit ``&&``/``||`` lower to control flow, so boolean structure in
the source becomes CFG paths — the raw material of path profiling.
"""

from __future__ import annotations

from typing import Optional

from ..ir.builder import IRBuilder
from ..ir.function import ArrayDecl, Function, Module
from ..ir.operands import Const, Operand, Var
from .ast_nodes import (
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FuncDecl,
    IfStmt,
    IndexExpr,
    NumberExpr,
    PrintStmt,
    Program,
    ReturnStmt,
    Stmt,
    StoreStmt,
    UnaryExpr,
    VarDecl,
    VarExpr,
    WhileStmt,
)
from .lexer import MiniCError
from .parser import parse_program
from .sema import check_program

_BINOP_MAP = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
    "==": "eq",
    "!=": "ne",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
    ">>": "shr",
}

_UNOP_MAP = {"-": "neg", "~": "not", "!": "lnot"}


def compile_program(source: str) -> Module:
    """Parse, check, and lower a MiniC program to an IR module."""
    program = parse_program(source)
    check_program(program)
    return lower_program(program)


def lower_program(program: Program) -> Module:
    """Lower a checked AST to IR."""
    module = Module()
    for g in program.globals:
        module.add_array(ArrayDecl(g.name, g.size, g.init))
    for fn in program.functions:
        module.add_function(_FunctionLowerer(fn).lower())
    return module


class _FunctionLowerer:
    def __init__(self, decl: FuncDecl) -> None:
        self.decl = decl
        self.builder = IRBuilder(decl.name, decl.params)
        #: (continue target, break target) per enclosing loop.
        self.loop_stack: list[tuple[str, str]] = []

    def lower(self) -> Function:
        b = self.builder
        b.block("entry")
        self._lower_body(self.decl.body)
        if b.is_open:
            b.ret(0)
        return b.finish()

    # -- statements ------------------------------------------------------------

    def _lower_body(self, body: tuple[Stmt, ...]) -> None:
        for stmt in body:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: Stmt) -> None:
        b = self.builder
        if isinstance(stmt, VarDecl):
            init = stmt.init if stmt.init is not None else NumberExpr(0)
            self._lower_expr_into(stmt.name, init)
        elif isinstance(stmt, AssignStmt):
            self._lower_expr_into(stmt.name, stmt.value)
        elif isinstance(stmt, StoreStmt):
            index = self._lower_expr(stmt.index)
            value = self._lower_expr(stmt.value)
            b.store(stmt.array, index, value)
        elif isinstance(stmt, IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, BreakStmt):
            b.jump(self.loop_stack[-1][1])
        elif isinstance(stmt, ContinueStmt):
            b.jump(self.loop_stack[-1][0])
        elif isinstance(stmt, ReturnStmt):
            value = self._lower_expr(stmt.value) if stmt.value is not None else Const(0)
            b.ret(value)
        elif isinstance(stmt, PrintStmt):
            args = [self._lower_expr(a) for a in stmt.args]
            b.emit_print(*args)
        elif isinstance(stmt, ExprStmt):
            call = stmt.expr
            assert isinstance(call, CallExpr)
            args = [self._lower_expr(a) for a in call.args]
            b.call(None, call.func, *args)
        else:  # pragma: no cover - sema rejects unknown nodes
            raise MiniCError(f"cannot lower {stmt!r}")

    def _lower_if(self, stmt: IfStmt) -> None:
        b = self.builder
        cond = self._lower_expr(stmt.cond)
        then_l = b.new_label("then")
        join_l: Optional[str] = None
        if stmt.else_body:
            else_l = b.new_label("else")
            b.branch(cond, then_l, else_l)
        else:
            join_l = b.new_label("endif")
            b.branch(cond, then_l, join_l)

        b.block(then_l)
        self._lower_body(stmt.then_body)
        then_open = b.is_open

        else_open = False
        if stmt.else_body:
            if then_open:
                join_l = b.new_label("endif")
                b.jump(join_l)
            b.block(else_l)
            self._lower_body(stmt.else_body)
            else_open = b.is_open
            if else_open:
                if join_l is None:
                    join_l = b.new_label("endif")
                b.jump(join_l)
            if join_l is not None:
                b.block(join_l)
        else:
            if then_open:
                b.jump(join_l)
            b.block(join_l)

    def _lower_while(self, stmt: WhileStmt) -> None:
        b = self.builder
        head_l = b.new_label("while")
        body_l = b.new_label("do")
        exit_l = b.new_label("done")
        b.jump(head_l)
        b.block(head_l)
        cond = self._lower_expr(stmt.cond)
        b.branch(cond, body_l, exit_l)
        b.block(body_l)
        self.loop_stack.append((head_l, exit_l))
        self._lower_body(stmt.body)
        self.loop_stack.pop()
        if b.is_open:
            b.jump(head_l)
        b.block(exit_l)

    def _lower_for(self, stmt: ForStmt) -> None:
        b = self.builder
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head_l = b.new_label("for")
        body_l = b.new_label("do")
        step_l = b.new_label("step") if stmt.step is not None else head_l
        exit_l = b.new_label("done")
        b.jump(head_l)
        b.block(head_l)
        cond_expr = stmt.cond if stmt.cond is not None else NumberExpr(1)
        cond = self._lower_expr(cond_expr)
        b.branch(cond, body_l, exit_l)
        b.block(body_l)
        self.loop_stack.append((step_l, exit_l))
        self._lower_body(stmt.body)
        self.loop_stack.pop()
        if b.is_open:
            b.jump(step_l)
        if stmt.step is not None:
            b.block(step_l)
            self._lower_stmt(stmt.step)
            b.jump(head_l)
        b.block(exit_l)

    # -- expressions ------------------------------------------------------------

    def _lower_expr(self, expr: Expr) -> Operand:
        """Lower ``expr``; the result is a constant or a variable operand."""
        if isinstance(expr, NumberExpr):
            return Const(expr.value)
        if isinstance(expr, VarExpr):
            return Var(expr.name)
        return Var(self._lower_expr_into(self.builder.new_temp(), expr))

    def _lower_expr_into(self, dest: str, expr: Expr) -> str:
        """Lower ``expr`` so its value ends up in variable ``dest``."""
        b = self.builder
        if isinstance(expr, NumberExpr):
            b.assign(dest, Const(expr.value))
        elif isinstance(expr, VarExpr):
            b.assign(dest, Var(expr.name))
        elif isinstance(expr, IndexExpr):
            index = self._lower_expr(expr.index)
            b.load(dest, expr.array, index)
        elif isinstance(expr, UnaryExpr):
            operand = self._lower_expr(expr.operand)
            b.unop(dest, _UNOP_MAP[expr.op], operand)
        elif isinstance(expr, CallExpr):
            args = [self._lower_expr(a) for a in expr.args]
            b.call(dest, expr.func, *args)
        elif isinstance(expr, BinaryExpr):
            if expr.op in ("&&", "||"):
                self._lower_short_circuit(dest, expr)
            else:
                lhs = self._lower_expr(expr.lhs)
                rhs = self._lower_expr(expr.rhs)
                b.binop(dest, _BINOP_MAP[expr.op], lhs, rhs)
        else:  # pragma: no cover - sema rejects unknown nodes
            raise MiniCError(f"cannot lower expression {expr!r}")
        return dest

    def _lower_short_circuit(self, dest: str, expr: BinaryExpr) -> None:
        """``a && b`` / ``a || b`` with real control flow; the result is
        normalized to 0/1."""
        b = self.builder
        rhs_l = b.new_label("sc_rhs")
        skip_l = b.new_label("sc_skip")
        join_l = b.new_label("sc_end")
        lhs = self._lower_expr(expr.lhs)
        if expr.op == "&&":
            b.branch(lhs, rhs_l, skip_l)
            skip_value = 0
        else:
            b.branch(lhs, skip_l, rhs_l)
            skip_value = 1
        b.block(rhs_l)
        rhs = self._lower_expr(expr.rhs)
        b.binop(dest, "ne", rhs, 0)
        b.jump(join_l)
        b.block(skip_l)
        b.assign(dest, skip_value)
        b.jump(join_l)
        b.block(join_l)
