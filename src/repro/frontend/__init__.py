"""MiniC front end: lexer, parser, semantic checks, and lowering to IR."""

from .ast_nodes import Program
from .fingerprint import (
    changed_functions,
    function_fingerprint,
    function_fingerprints,
    module_fingerprint,
)
from .lexer import MiniCError, Token, tokenize
from .lower import compile_program, lower_program
from .parser import parse_program
from .sema import BUILTIN_ARITY, check_program

__all__ = [
    "BUILTIN_ARITY",
    "changed_functions",
    "check_program",
    "compile_program",
    "function_fingerprint",
    "function_fingerprints",
    "lower_program",
    "module_fingerprint",
    "MiniCError",
    "parse_program",
    "Program",
    "Token",
    "tokenize",
]
