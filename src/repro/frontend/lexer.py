"""MiniC lexer.

MiniC is the small imperative language the workloads are written in; it
stands in for C the way low-SUIF's input did in the paper.  The lexer is a
straightforward regex scanner producing :class:`Token` objects with line
numbers for error reporting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator


class MiniCError(Exception):
    """Any front-end error (lexical, syntactic, or semantic)."""

    def __init__(self, message: str, line: int | None = None) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


KEYWORDS = frozenset(
    {
        "func",
        "global",
        "var",
        "if",
        "else",
        "while",
        "for",
        "break",
        "continue",
        "return",
        "print",
    }
)

#: Multi-character operators first so maximal munch works.
_OPERATORS = [
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "~",
    "&",
    "|",
    "^",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<newline>\n)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>%s)
    """
    % "|".join(re.escape(op) for op in _OPERATORS),
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True, slots=True)
class Token:
    """A lexical token: ``kind`` is 'number', 'ident', a keyword, an
    operator string, or 'eof'."""

    kind: str
    text: str
    line: int


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniC source; raises :class:`MiniCError` on bad input."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    length = len(source)
    while pos < length:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise MiniCError(f"unexpected character {source[pos]!r}", line)
        pos = m.end()
        kind = m.lastgroup
        text = m.group()
        if kind == "newline":
            line += 1
            continue
        if kind in ("ws", "comment"):
            line += text.count("\n")
            continue
        if kind == "number":
            tokens.append(Token("number", text, line))
        elif kind == "ident":
            tokens.append(Token(text if text in KEYWORDS else "ident", text, line))
        else:
            tokens.append(Token(text, text, line))
    tokens.append(Token("eof", "", line))
    return tokens
