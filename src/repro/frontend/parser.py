"""MiniC recursive-descent parser with precedence climbing."""

from __future__ import annotations

from typing import Optional

from .ast_nodes import (
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FuncDecl,
    GlobalDecl,
    IfStmt,
    IndexExpr,
    NumberExpr,
    PrintStmt,
    Program,
    ReturnStmt,
    Stmt,
    StoreStmt,
    UnaryExpr,
    VarDecl,
    VarExpr,
    WhileStmt,
)
from .lexer import MiniCError, Token, tokenize

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class Parser:
    """A single-use parser over a token stream."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str) -> bool:
        return self.peek().kind == kind

    def accept(self, kind: str) -> Optional[Token]:
        if self.check(kind):
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        tok = self.peek()
        if tok.kind != kind:
            raise MiniCError(
                f"expected {kind!r}, got {tok.text!r}", tok.line
            )
        return self.advance()

    # -- top level ------------------------------------------------------------

    def parse_program(self) -> Program:
        globals_: list[GlobalDecl] = []
        functions: list[FuncDecl] = []
        while not self.check("eof"):
            if self.check("global"):
                globals_.append(self._global_decl())
            elif self.check("func"):
                functions.append(self._func_decl())
            else:
                tok = self.peek()
                raise MiniCError(
                    f"expected 'global' or 'func', got {tok.text!r}", tok.line
                )
        return Program(tuple(globals_), tuple(functions))

    def _global_decl(self) -> GlobalDecl:
        line = self.expect("global").line
        name = self.expect("ident").text
        self.expect("[")
        size = int(self.expect("number").text)
        self.expect("]")
        init: list[int] = []
        if self.accept("="):
            self.expect("{")
            if not self.check("}"):
                init.append(self._int_literal())
                while self.accept(","):
                    init.append(self._int_literal())
            self.expect("}")
        self.expect(";")
        return GlobalDecl(name, size, tuple(init), line)

    def _int_literal(self) -> int:
        neg = self.accept("-") is not None
        value = int(self.expect("number").text)
        return -value if neg else value

    def _func_decl(self) -> FuncDecl:
        line = self.expect("func").line
        name = self.expect("ident").text
        self.expect("(")
        params: list[str] = []
        if not self.check(")"):
            params.append(self.expect("ident").text)
            while self.accept(","):
                params.append(self.expect("ident").text)
        self.expect(")")
        body = self._block()
        return FuncDecl(name, tuple(params), body, line)

    # -- statements ---------------------------------------------------------------

    def _block(self) -> tuple[Stmt, ...]:
        self.expect("{")
        stmts: list[Stmt] = []
        while not self.check("}"):
            stmts.append(self._statement())
        self.expect("}")
        return tuple(stmts)

    def _statement(self) -> Stmt:
        tok = self.peek()
        if tok.kind == "var":
            return self._var_decl()
        if tok.kind == "if":
            return self._if_stmt()
        if tok.kind == "while":
            return self._while_stmt()
        if tok.kind == "for":
            return self._for_stmt()
        if tok.kind == "break":
            self.advance()
            self.expect(";")
            return BreakStmt(tok.line)
        if tok.kind == "continue":
            self.advance()
            self.expect(";")
            return ContinueStmt(tok.line)
        if tok.kind == "return":
            self.advance()
            value = None if self.check(";") else self._expression()
            self.expect(";")
            return ReturnStmt(value, tok.line)
        if tok.kind == "print":
            self.advance()
            self.expect("(")
            args = [self._expression()]
            while self.accept(","):
                args.append(self._expression())
            self.expect(")")
            self.expect(";")
            return PrintStmt(tuple(args), tok.line)
        return self._simple_statement()

    def _var_decl(self) -> VarDecl:
        line = self.expect("var").line
        name = self.expect("ident").text
        init = None
        if self.accept("="):
            init = self._expression()
        self.expect(";")
        return VarDecl(name, init, line)

    def _if_stmt(self) -> IfStmt:
        line = self.expect("if").line
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        then_body = self._block()
        else_body: tuple[Stmt, ...] = ()
        if self.accept("else"):
            if self.check("if"):
                else_body = (self._if_stmt(),)
            else:
                else_body = self._block()
        return IfStmt(cond, then_body, else_body, line)

    def _while_stmt(self) -> WhileStmt:
        line = self.expect("while").line
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        return WhileStmt(cond, self._block(), line)

    def _for_stmt(self) -> ForStmt:
        line = self.expect("for").line
        self.expect("(")
        init = None if self.check(";") else self._simple_clause()
        self.expect(";")
        cond = None if self.check(";") else self._expression()
        self.expect(";")
        step = None if self.check(")") else self._simple_clause()
        self.expect(")")
        return ForStmt(init, cond, step, self._block(), line)

    def _simple_clause(self) -> Stmt:
        """An assignment/store/call/var-decl without the trailing ';'
        (for-loop init and step clauses)."""
        if self.check("var"):
            line = self.expect("var").line
            name = self.expect("ident").text
            init = None
            if self.accept("="):
                init = self._expression()
            return VarDecl(name, init, line)
        return self._assignment_or_call()

    def _simple_statement(self) -> Stmt:
        stmt = self._assignment_or_call()
        self.expect(";")
        return stmt

    def _assignment_or_call(self) -> Stmt:
        tok = self.expect("ident")
        if self.accept("["):
            index = self._expression()
            self.expect("]")
            self.expect("=")
            value = self._expression()
            return StoreStmt(tok.text, index, value, tok.line)
        if self.accept("="):
            value = self._expression()
            return AssignStmt(tok.text, value, tok.line)
        if self.check("("):
            call = self._call_tail(tok)
            return ExprStmt(call, tok.line)
        raise MiniCError(
            f"expected assignment or call after {tok.text!r}", tok.line
        )

    # -- expressions ----------------------------------------------------------------

    def _expression(self) -> Expr:
        return self._binary(0)

    def _binary(self, min_prec: int) -> Expr:
        lhs = self._unary()
        while True:
            op = self.peek().kind
            prec = _PRECEDENCE.get(op)
            if prec is None or prec < min_prec:
                return lhs
            line = self.advance().line
            rhs = self._binary(prec + 1)
            lhs = BinaryExpr(op, lhs, rhs, line)

    def _unary(self) -> Expr:
        tok = self.peek()
        if tok.kind in ("-", "!", "~"):
            self.advance()
            return UnaryExpr(tok.kind, self._unary(), tok.line)
        return self._primary()

    def _primary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            return NumberExpr(int(tok.text), tok.line)
        if tok.kind == "(":
            self.advance()
            expr = self._expression()
            self.expect(")")
            return expr
        if tok.kind == "ident":
            self.advance()
            if self.check("("):
                return self._call_tail(tok)
            if self.accept("["):
                index = self._expression()
                self.expect("]")
                return IndexExpr(tok.text, index, tok.line)
            return VarExpr(tok.text, tok.line)
        raise MiniCError(f"unexpected token {tok.text!r}", tok.line)

    def _call_tail(self, name: Token) -> CallExpr:
        self.expect("(")
        args: list[Expr] = []
        if not self.check(")"):
            args.append(self._expression())
            while self.accept(","):
                args.append(self._expression())
        self.expect(")")
        return CallExpr(name.text, tuple(args), name.line)


def parse_program(source: str) -> Program:
    """Parse a MiniC program."""
    return Parser(source).parse_program()
