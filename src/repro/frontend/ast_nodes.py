"""MiniC abstract syntax."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# -- expressions ----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class NumberExpr:
    value: int
    line: int = 0


@dataclass(frozen=True, slots=True)
class VarExpr:
    name: str
    line: int = 0


@dataclass(frozen=True, slots=True)
class IndexExpr:
    """``array[index]``; a load in expression position."""

    array: str
    index: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class UnaryExpr:
    """``op`` is '-', '!', or '~'."""

    op: str
    operand: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class BinaryExpr:
    """``op`` is an arithmetic/relational/bitwise operator; '&&' and '||'
    short-circuit and are lowered with control flow."""

    op: str
    lhs: "Expr"
    rhs: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class CallExpr:
    func: str
    args: tuple["Expr", ...]
    line: int = 0


Expr = Union[NumberExpr, VarExpr, IndexExpr, UnaryExpr, BinaryExpr, CallExpr]


# -- statements ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class VarDecl:
    name: str
    init: Optional[Expr]
    line: int = 0


@dataclass(frozen=True, slots=True)
class AssignStmt:
    name: str
    value: Expr
    line: int = 0


@dataclass(frozen=True, slots=True)
class StoreStmt:
    """``array[index] = value;``"""

    array: str
    index: Expr
    value: Expr
    line: int = 0


@dataclass(frozen=True, slots=True)
class IfStmt:
    cond: Expr
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class WhileStmt:
    cond: Expr
    body: tuple["Stmt", ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class ForStmt:
    """``for (init; cond; step) body`` — init/step are statements, either
    may be None, as may cond (meaning "true")."""

    init: Optional["Stmt"]
    cond: Optional[Expr]
    step: Optional["Stmt"]
    body: tuple["Stmt", ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class BreakStmt:
    line: int = 0


@dataclass(frozen=True, slots=True)
class ContinueStmt:
    line: int = 0


@dataclass(frozen=True, slots=True)
class ReturnStmt:
    value: Optional[Expr]
    line: int = 0


@dataclass(frozen=True, slots=True)
class PrintStmt:
    args: tuple[Expr, ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class ExprStmt:
    """An expression evaluated for effect (a call)."""

    expr: Expr
    line: int = 0


Stmt = Union[
    VarDecl,
    AssignStmt,
    StoreStmt,
    IfStmt,
    WhileStmt,
    ForStmt,
    BreakStmt,
    ContinueStmt,
    ReturnStmt,
    PrintStmt,
    ExprStmt,
]


# -- top level ---------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class GlobalDecl:
    name: str
    size: int
    init: tuple[int, ...] = ()
    line: int = 0


@dataclass(frozen=True, slots=True)
class FuncDecl:
    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class Program:
    globals: tuple[GlobalDecl, ...]
    functions: tuple[FuncDecl, ...]
