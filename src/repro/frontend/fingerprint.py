"""Stable per-function fingerprints over lowered IR.

The incremental layer (``repro.pipeline.incremental``) needs to answer
"which functions did this edit actually change?" without diffing source
text — source diffs over-approximate (whitespace, comments, reordering)
and under-approximate nothing.  Lowering is per-function and
deterministic, so the canonical textual IR of each function
(``str(Function)``, the same rendering ``repro.ir.text`` round-trips) is
a faithful identity: two sources lower a function to the same IR text iff
the analyses see the same function.

Consequences the tests pin down:

* whitespace/comment-only source edits keep every fingerprint;
* an edit inside ``f`` changes only ``f``'s fingerprint (lowering never
  looks across function boundaries);
* renaming a function changes its fingerprint (the name heads the IR text
  and is part of the analysis identity — profiles key on it).

The *module* fingerprint folds in the global array declarations plus every
function fingerprint, name-sorted, so it identifies the program's complete
executable content while staying insensitive to declaration order.
"""

from __future__ import annotations

import hashlib

from ..ir.function import Function, Module

#: Bump when the fingerprint recipe changes (feeds cache keys, so a bump
#: simply re-keys — never mis-shares — cached artifacts).
FINGERPRINT_VERSION = 1

_PREFIX = f"repro-fn-fp-v{FINGERPRINT_VERSION}".encode()


def function_fingerprint(fn: Function) -> str:
    """SHA-256 of one function's canonical textual IR."""
    h = hashlib.sha256()
    h.update(_PREFIX)
    h.update(b"\x00")
    h.update(str(fn).encode())
    return h.hexdigest()


def function_fingerprints(module: Module) -> dict[str, str]:
    """Per-function fingerprints of a compiled module, in function order."""
    return {
        name: function_fingerprint(fn)
        for name, fn in module.functions.items()
    }


def module_fingerprint(module: Module) -> str:
    """Content digest of a module's arrays + functions (order-insensitive).

    This is what whole-program artifacts (profiling runs, sweep cells) key
    on: it changes exactly when some function's IR or some global array
    declaration changes — not when the source is reformatted.
    """
    h = hashlib.sha256()
    h.update(_PREFIX)
    for name in sorted(module.arrays):
        decl = module.arrays[name]
        h.update(b"\x00array\x00")
        h.update(
            f"{decl.name} {decl.size} {','.join(map(str, decl.init))}".encode()
        )
    for name, fp in sorted(function_fingerprints(module).items()):
        h.update(b"\x00func\x00")
        h.update(f"{name} {fp}".encode())
    return h.hexdigest()


def changed_functions(
    old: Module, new: Module
) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...], tuple[str, ...]]:
    """Partition function names into (changed, added, removed, unchanged).

    All four tuples are name-sorted; "changed" means present in both
    modules with different fingerprints.
    """
    old_fps = function_fingerprints(old)
    new_fps = function_fingerprints(new)
    changed = tuple(
        sorted(n for n in old_fps if n in new_fps and old_fps[n] != new_fps[n])
    )
    added = tuple(sorted(set(new_fps) - set(old_fps)))
    removed = tuple(sorted(set(old_fps) - set(new_fps)))
    unchanged = tuple(
        sorted(n for n in old_fps if new_fps.get(n) == old_fps[n])
    )
    return changed, added, removed, unchanged


__all__ = [
    "FINGERPRINT_VERSION",
    "changed_functions",
    "function_fingerprint",
    "function_fingerprints",
    "module_fingerprint",
]
