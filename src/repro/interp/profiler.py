"""Path profilers driven by the interpreter.

Two implementations of the same contract:

* :class:`TraceProfiler` records the full vertex trace of every activation
  and cuts it at recording edges — the direct, obviously-correct reading of
  Definition 8, used as a test oracle.
* :class:`BallLarusProfiler` is the efficient profiler of [BL96]: a single
  path register per activation, incremented on non-recording edges, and one
  counter bump per recording edge.  Paths are regenerated from their
  (start, id) pairs when the profile is read out.

Both observe the same events: :meth:`enter` at activation start, then
:meth:`edge` for every traversed CFG edge (including the virtual
entry/exit edges), then :meth:`leave`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Optional

from ..ir.cfg import Cfg, Edge
from ..profiles.ball_larus import BallLarusNumbering
from ..profiles.path_profile import BLPath, PathProfile, split_trace

Vertex = Hashable


class TraceProfiler:
    """Oracle profiler: accumulates full traces, splits at recording edges."""

    def __init__(self, cfg: Cfg, recording: frozenset[Edge]) -> None:
        self.cfg = cfg
        self.recording = recording
        self._profile = PathProfile()
        self._trace: list[Vertex] | None = None

    def enter(self) -> None:
        self._trace = [self.cfg.entry]

    def edge(self, u: Vertex, v: Vertex) -> None:
        assert self._trace is not None, "edge() before enter()"
        assert self._trace[-1] == u, "non-contiguous trace"
        self._trace.append(v)

    def leave(self) -> None:
        assert self._trace is not None
        for path in split_trace(self._trace, self.recording):
            self._profile.add(path)
        self._trace = None

    def profile(self) -> PathProfile:
        """The accumulated path profile."""
        return self._profile


class BallLarusProfiler:
    """Efficient profiler: path register plus per-edge increments."""

    def __init__(
        self,
        cfg: Cfg,
        recording: frozenset[Edge],
        numbering: Optional[BallLarusNumbering] = None,
    ) -> None:
        self.cfg = cfg
        self.recording = recording
        # The numbering is a pure function of (cfg, recording); callers that
        # run many activations (the Interpreter) pass a shared instance so
        # it is computed once per routine, not once per profiler.
        self.numbering = (
            numbering
            if numbering is not None
            else BallLarusNumbering.for_cfg(cfg, recording)
        )
        #: (start vertex, path id) -> count
        self._counts: defaultdict[tuple[Vertex, int], int] = defaultdict(int)
        self._start: Vertex | None = None
        self._register = 0

    def enter(self) -> None:
        self._start = None
        self._register = 0

    def edge(self, u: Vertex, v: Vertex) -> None:
        if (u, v) in self.recording:
            if self._start is not None:
                pid = self._register + self.numbering.final_offset((u, v))
                self._counts[(self._start, pid)] += 1
            self._start = v
            self._register = 0
        else:
            if self._start is None:
                raise ValueError(f"activation began with non-recording edge {(u, v)!r}")
            self._register += self.numbering.edge_increment((u, v))

    def leave(self) -> None:
        # The edge into the virtual exit is recording, so any complete
        # activation has already flushed its final path.
        self._start = None
        self._register = 0

    def raw_counts(self) -> dict[tuple[Vertex, int], int]:
        """The (start, path id) -> count table, as hardware would produce."""
        return dict(self._counts)

    def profile(self) -> PathProfile:
        """The accumulated profile, with paths regenerated from their ids."""
        profile = PathProfile()
        for (start, pid), count in self._counts.items():
            profile.add(self.numbering.regenerate(start, pid), count)
        return profile


class NullProfiler:
    """A profiler that records nothing (used when profiling is disabled)."""

    def enter(self) -> None:  # pragma: no cover - trivial
        pass

    def edge(self, u: Vertex, v: Vertex) -> None:
        pass

    def leave(self) -> None:  # pragma: no cover - trivial
        pass

    def profile(self) -> PathProfile:
        return PathProfile()
