"""IR interpreter with cost accounting, path profiling, and dynamic taint."""

from .compiled import CompiledModule
from .cost import DEFAULT_COST_MODEL, CostModel
from .interpreter import (
    ExecutionLimit,
    Interpreter,
    RunResult,
    Site,
    SiteStats,
    Trap,
    run_module,
)
from .profiler import BallLarusProfiler, NullProfiler, TraceProfiler

__all__ = [
    "BallLarusProfiler",
    "CompiledModule",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "ExecutionLimit",
    "Interpreter",
    "NullProfiler",
    "RunResult",
    "run_module",
    "Site",
    "SiteStats",
    "TraceProfiler",
    "Trap",
]
