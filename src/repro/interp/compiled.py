"""Block-compiling fast-path execution engine.

The tree-walking interpreter (:mod:`repro.interp.interpreter`) plays the
paper's instrumented native runs, but it pays Python-level overhead for every
executed IR instruction: ``isinstance`` dispatch over dataclass objects,
operand resolution through dict environments, a ``CostModel`` method call per
instruction, and a profiler *method call per traversed CFG edge*.  That is
the opposite of the point of Ball–Larus instrumentation, whose whole appeal
is that profiling costs a handful of register increments per branch.

This module precompiles each function once into a flat register-machine
form and replays runs over that form instead:

* **Slots, not dicts** — every variable is resolved at compile time to an
  integer slot in a list-based frame (parameters first, matching
  :meth:`repro.ir.function.Function.variables`).  A parallel list of taint
  bits replaces the taint dict.
* **Tuple-encoded micro-ops** — each basic block is lowered to a tuple of
  small tuples ``(opcode, ...)`` with operands pre-resolved: constants are
  inlined (constant-folded where the IR already determines the result, e.g.
  ``binop const, const``), variables become slot indices, arrays become
  indices into a per-run array table, and binary/unary operators become the
  raw callables from :mod:`repro.ir.ops`.
* **Block-level accounting** — a block's total straight-line cycle cost and
  its instruction count (including the terminator) are folded into one
  addition each per block execution instead of one per instruction.  The
  step budget is therefore checked per block: a run that exceeds
  ``max_steps`` still raises :class:`ExecutionLimit`, merely at a block
  boundary rather than mid-block (indistinguishable for any run that
  completes).
* **Baked successor tables** — for every block and every successor, the
  transfer cost (including the fall-through/taken distinction) *and* the
  Ball–Larus action are precomputed: the hot loop does
  ``register += increment`` or one dict bump with a precomputed final
  offset, never a ``profiler.edge(u, v)`` call.
* **Batched site statistics** — dynamic per-site statistics are recorded
  through preallocated per-site arrays (execution counts, taint counts, and
  the capped observed-value lists) indexed by a compile-time site id, and
  materialized into :class:`SiteStats` objects only when the run finishes.

Differential guarantees
-----------------------
For every run that completes, the compiled engine produces a
:class:`RunResult` equal to the reference engine's: output, return value,
instruction count, cycle cost, block counts, path profiles, trace profiles,
site statistics, and final memory (``tests/test_compiled_engine.py`` proves
this on the running example and on every workload).  Trap behaviour matches
on the same error classes and messages; the only deliberate divergences are
that traps interact with *partial* block state (costs are charged per block,
not per instruction) and that the path register is per-activation here, so
profiled recursion with calls mid-path works in this engine while the
shared-state reference profiler rejects it.

Modes ``"trace"`` and ``"both"`` keep using :class:`TraceProfiler` (the
oracle is supposed to be the slow, obviously-correct reading); only the
Ball–Larus side is baked into the tables.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Optional, Sequence

from ..ir.cfg import Cfg, ENTRY, EXIT, Edge
from ..ir.function import Function, Module
from ..ir.instructions import (
    Assign,
    BinOp,
    Branch,
    Call,
    Jump,
    Load,
    Print,
    Ret,
    Store,
    UnOp,
)
from ..ir.operands import Const, Operand, Var
from ..ir.ops import BINOPS, UNOPS, eval_binop, eval_unop
from ..obs import get_metrics
from ..profiles.ball_larus import BallLarusNumbering
from ..profiles.path_profile import PathProfile
from .cost import CostModel
from .interpreter import ExecutionLimit, RunResult, Site, SiteStats, Trap
from .profiler import TraceProfiler

# -- micro-op opcodes --------------------------------------------------------

(
    _BIN_VV,
    _BIN_VC,
    _BIN_CV,
    _MOV_C,
    _MOV_V,
    _UN_V,
    _LOAD_V,
    _LOAD_C,
    _STORE_VV,
    _STORE_VC,
    _STORE_CV,
    _STORE_CC,
    _CALL_USER,
    _CALL_BUILTIN,
    _PRINT,
    _TRAP,
) = range(16)

# -- terminator kinds --------------------------------------------------------

(_T_JUMP, _T_BR, _T_RET_V, _T_RET_C, _T_TRAP) = range(5)

#: Positions of frame-slot operands within each op tuple, for undefined-
#: variable diagnosis when a ``TypeError`` escapes an operator callable.
_VAR_SLOT_POSITIONS = {
    _BIN_VV: (3, 4),
    _BIN_VC: (3,),
    _BIN_CV: (4,),
    _MOV_V: (2,),
    _UN_V: (3,),
    _LOAD_V: (3,),
    _STORE_VV: (2, 3),
    _STORE_VC: (2,),
    _STORE_CV: (3,),
}

#: Builtin name -> (arity, implementation over a value list).
_BUILTINS = {
    "abs": (1, lambda v: abs(v[0])),
    "min2": (2, lambda v: min(v)),
    "max2": (2, lambda v: max(v)),
    "clamp": (3, lambda v: max(v[1], min(v[0], v[2]))),
}


class _CompiledFunction:
    """One function lowered to register-machine form (parallel per-block
    tuples, indexed by block position in the function's layout order)."""

    __slots__ = (
        "name",
        "nparams",
        "nslots",
        "slot_names",
        "labels",
        "entry_idx",
        "entry_label",
        "ops",
        "n_instr",
        "base_cost",
        "terms",
    )

    def __init__(self, name: str) -> None:
        self.name = name


def _operand(op: Operand, slot: Mapping[str, int]) -> tuple[bool, int]:
    """(is_var, slot-or-value) encoding of an operand."""
    if isinstance(op, Var):
        return True, slot[op.name]
    return False, op.value


def _compile_function(
    fn: Function,
    module: Module,
    cm: CostModel,
    track_sites: bool,
    recording: frozenset[Edge],
    numbering: BallLarusNumbering,
    array_index: Mapping[str, int],
    site_index: dict[Site, int],
) -> _CompiledFunction:
    cf = _CompiledFunction(fn.name)
    labels = tuple(fn.blocks)
    label_idx = {label: i for i, label in enumerate(labels)}
    slot_names = fn.variables()
    slot = {name: i for i, name in enumerate(slot_names)}
    fallthrough = {
        label: labels[i + 1] if i + 1 < len(labels) else None
        for i, label in enumerate(labels)
    }

    cf.nparams = len(fn.params)
    cf.nslots = len(slot_names)
    cf.slot_names = slot_names
    cf.labels = labels
    cf.entry_label = fn.entry
    cf.entry_idx = label_idx[fn.entry]

    def entry_for(u: str, v: str, term) -> tuple:
        """Precomputed successor record: (next block index, transfer cost,
        is-recording, BL increment-or-final-offset, target vertex)."""
        cost = cm.transfer_cost(term, v, fallthrough[u])
        if (u, v) in recording:
            return (label_idx[v], cost, True, numbering.final_offset((u, v)), v)
        return (label_idx[v], cost, False, numbering.edge_increment((u, v)), v)

    all_ops: list[tuple] = []
    all_n: list[int] = []
    all_cost: list[int] = []
    all_terms: list[tuple] = []

    for label, block in fn.blocks.items():
        bops: list[tuple] = []
        bcost = 0
        for idx, instr in enumerate(block.instrs):
            bcost += cm.instr_cost(instr)
            site = -1
            if track_sites and instr.dest is not None:
                site = site_index.setdefault(
                    (fn.name, label, idx), len(site_index)
                )
            bops.append(_compile_instr(instr, module, slot, array_index, site))

        term = block.terminator
        if term is None:  # pragma: no cover - validated IR has a terminator
            tt: tuple = (_T_TRAP, f"{fn.name}:{label}: missing terminator")
        elif isinstance(term, Jump):
            tt = (_T_JUMP, entry_for(label, term.target, term))
        elif isinstance(term, Branch):
            is_var, v = _operand(term.cond, slot)
            if is_var:
                tt = (
                    _T_BR,
                    v,
                    entry_for(label, term.if_true, term),
                    entry_for(label, term.if_false, term),
                )
            else:
                # Static branch: the target is known, but it still pays
                # branch (not jump) transfer cost.
                target = term.if_true if v != 0 else term.if_false
                tt = (_T_JUMP, entry_for(label, target, term))
        elif isinstance(term, Ret):
            exit_entry = (
                -1,
                cm.transfer_cost(term, None, fallthrough[label]),
                True,
                numbering.final_offset((label, EXIT)),
                EXIT,
            )
            if term.value is None:
                tt = (_T_RET_C, None, exit_entry)
            else:
                is_var, v = _operand(term.value, slot)
                tt = (_T_RET_V, v, exit_entry) if is_var else (_T_RET_C, v, exit_entry)
        else:  # pragma: no cover - no other terminator kinds exist
            tt = (_T_TRAP, f"{fn.name}:{label}: unknown terminator {term!r}")

        all_ops.append(tuple(bops))
        all_n.append(len(block.instrs) + 1)
        all_cost.append(bcost)
        all_terms.append(tt)

    cf.ops = tuple(all_ops)
    cf.n_instr = tuple(all_n)
    cf.base_cost = tuple(all_cost)
    cf.terms = tuple(all_terms)
    return cf


def _compile_instr(
    instr,
    module: Module,
    slot: Mapping[str, int],
    array_index: Mapping[str, int],
    site: int,
) -> tuple:
    if isinstance(instr, Assign):
        is_var, v = _operand(instr.src, slot)
        d = slot[instr.dest]
        return (_MOV_V, d, v, site) if is_var else (_MOV_C, d, v, site)
    if isinstance(instr, BinOp):
        d = slot[instr.dest]
        f = BINOPS[instr.op]
        lv, l = _operand(instr.lhs, slot)
        rv, r = _operand(instr.rhs, slot)
        if lv and rv:
            return (_BIN_VV, d, f, l, r, site)
        if lv:
            return (_BIN_VC, d, f, l, r, site)
        if rv:
            return (_BIN_CV, d, f, l, r, site)
        # Both constant: the result is determined at compile time.
        return (_MOV_C, d, eval_binop(instr.op, l, r), site)
    if isinstance(instr, UnOp):
        d = slot[instr.dest]
        is_var, v = _operand(instr.src, slot)
        if is_var:
            return (_UN_V, d, UNOPS[instr.op], v, site)
        return (_MOV_C, d, eval_unop(instr.op, v), site)
    if isinstance(instr, Load):
        aidx = array_index.get(instr.array)
        if aidx is None:
            return (_TRAP, f"load from undeclared array {instr.array!r}")
        d = slot[instr.dest]
        is_var, v = _operand(instr.index, slot)
        return (_LOAD_V, d, aidx, v, site) if is_var else (_LOAD_C, d, aidx, v, site)
    if isinstance(instr, Store):
        aidx = array_index.get(instr.array)
        if aidx is None:
            return (_TRAP, f"store to undeclared array {instr.array!r}")
        iv, i = _operand(instr.index, slot)
        vv, v = _operand(instr.value, slot)
        if iv and vv:
            return (_STORE_VV, aidx, i, v)
        if iv:
            return (_STORE_VC, aidx, i, v)
        if vv:
            return (_STORE_CV, aidx, i, v)
        return (_STORE_CC, aidx, i, v)
    if isinstance(instr, Call):
        d = slot[instr.dest] if instr.dest is not None else -1
        argspec = tuple(_operand(a, slot) for a in instr.args)
        target = module.functions.get(instr.func)
        if target is not None:
            if len(argspec) != len(target.params):
                return (
                    _TRAP,
                    f"{instr.func} expects {len(target.params)} args, "
                    f"got {len(argspec)}",
                )
            return (_CALL_USER, d, instr.func, argspec, site)
        builtin = _BUILTINS.get(instr.func)
        if builtin is not None:
            arity, impl = builtin
            if len(argspec) != arity:
                return (
                    _TRAP,
                    f"builtin {instr.func} expects {arity} args, got {len(argspec)}",
                )
            return (_CALL_BUILTIN, d, impl, argspec, site)
        return (_TRAP, f"unknown function {instr.func!r}")
    if isinstance(instr, Print):
        return (_PRINT, tuple(_operand(a, slot) for a in instr.args))
    raise TypeError(f"cannot compile instruction {instr!r}")


class CompiledModule:
    """A module precompiled for the fast-path engine.

    Construct once (the :class:`~repro.interp.interpreter.Interpreter` does
    this when ``engine="compiled"``), then :meth:`run` any number of times.
    """

    def __init__(
        self,
        module: Module,
        cost_model: CostModel,
        track_sites: bool,
        cfgs: Mapping[str, Cfg],
        recordings: Mapping[str, frozenset[Edge]],
        numberings: Mapping[str, BallLarusNumbering],
    ) -> None:
        self.module = module
        self.cost_model = cost_model
        self.track_sites = track_sites
        self.cfgs = cfgs
        self.recordings = recordings
        self.numberings = numberings
        self.array_names: tuple[str, ...] = tuple(module.arrays)
        array_index = {name: i for i, name in enumerate(self.array_names)}
        site_index: dict[Site, int] = {}
        self.functions: dict[str, _CompiledFunction] = {
            name: _compile_function(
                fn,
                module,
                cost_model,
                track_sites,
                recordings[name],
                numberings[name],
                array_index,
                site_index,
            )
            for name, fn in module.functions.items()
        }
        #: Site ids in allocation (program) order; index = compile-time id.
        self.site_keys: tuple[Site, ...] = tuple(site_index)

        # Lowering-volume metrics (once per CompiledModule, so the run
        # hot loop below stays untouched by observability).
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("interp_functions_lowered").inc(len(self.functions))
            metrics.counter("interp_blocks_lowered").inc(
                sum(len(cf.labels) for cf in self.functions.values())
            )
            metrics.counter("interp_microops_lowered").inc(
                sum(
                    len(block)
                    for cf in self.functions.values()
                    for block in cf.ops
                )
            )
            metrics.counter("interp_sites_tracked").inc(len(self.site_keys))

    def run(
        self,
        args: Sequence[int],
        inputs: Mapping[str, Sequence[int]],
        entry_function: str,
        profile_mode: Optional[str],
        max_steps: int,
    ) -> RunResult:
        cf = self.functions.get(entry_function)
        if cf is None:
            raise Trap(f"no function named {entry_function!r}")
        if len(args) != len(self.module.functions[entry_function].params):
            raise Trap(
                f"{entry_function} expects "
                f"{len(self.module.functions[entry_function].params)} args, "
                f"got {len(args)}"
            )
        state = _CompiledState(self, inputs, profile_mode, max_steps)
        ret = state.call(cf, [int(a) for a in args])
        return state.result(ret)


class _CompiledState:
    """Mutable state of one compiled-engine run."""

    def __init__(
        self,
        cmod: CompiledModule,
        inputs: Mapping[str, Sequence[int]],
        profile_mode: Optional[str],
        max_steps: int,
    ) -> None:
        self.cmod = cmod
        self.profile_mode = profile_mode
        self.max_steps = max_steps
        self.memory: dict[str, list[int]] = {}
        for decl in cmod.module.arrays.values():
            self.memory[decl.name] = decl.initial_contents()
        for name, data in inputs.items():
            if name not in self.memory:
                raise Trap(f"input array {name!r} is not declared by the module")
            dest = self.memory[name]
            if len(data) > len(dest):
                raise Trap(
                    f"input for {name!r} has {len(data)} elements; "
                    f"array holds {len(dest)}"
                )
            for i, x in enumerate(data):
                dest[i] = int(x)
        #: Arrays by compile-time index (aliases of ``memory``'s lists).
        self.mems: list[list[int]] = [
            self.memory[name] for name in cmod.array_names
        ]
        self.output: list[tuple[int, ...]] = []
        self.instr_count = 0
        self.cost = 0
        self.depth = 0
        #: Per-function block-execution counters, indexed by block position.
        self.block_counts: dict[str, list[int]] = {
            name: [0] * len(cf.labels) for name, cf in cmod.functions.items()
        }
        #: Functions that had at least one activation, in first-call order.
        self.activated: dict[str, None] = {}
        # Batched site statistics: preallocated per-site arrays.
        n_sites = len(cmod.site_keys)
        self.site_exec = [0] * n_sites
        self.site_taint = [0] * n_sites
        self.site_obs: list[list[int]] = [[] for _ in range(n_sites)]
        #: Ball–Larus (start vertex, path id) -> count, per routine.
        self.bl_counts: dict[str, defaultdict[tuple, int]] = {}
        self.trace_profilers: dict[str, TraceProfiler] = {}

    # -- execution ---------------------------------------------------------

    def call(self, cf: _CompiledFunction, args: list[int]) -> Optional[int]:
        """Execute one activation over the compiled form of ``cf``."""
        self.depth += 1
        if self.depth > 200:
            raise Trap(f"call depth limit exceeded entering {cf.name}")
        self.activated.setdefault(cf.name, None)

        frame: list = [None] * cf.nslots
        tnt: list = [True] * cf.nslots
        frame[: len(args)] = args

        mode = self.profile_mode
        do_bl = mode == "bl" or mode == "both"
        if do_bl:
            counts = self.bl_counts.get(cf.name)
            if counts is None:
                counts = self.bl_counts[cf.name] = defaultdict(int)
            # The virtual entry edge is recording: it starts the first path.
            bl_start: object = cf.entry_label
            bl_reg = 0
        tp = None
        if mode == "trace" or mode == "both":
            tp = self.trace_profilers.get(cf.name)
            if tp is None:
                tp = self.trace_profilers[cf.name] = TraceProfiler(
                    self.cmod.cfgs[cf.name], self.cmod.recordings[cf.name]
                )
            tp.enter()
            tp.edge(ENTRY, cf.entry_label)

        # Local aliases for the hot loop.
        mems = self.mems
        output = self.output
        se = self.site_exec
        stt = self.site_taint
        sobs = self.site_obs
        bcounts = self.block_counts[cf.name]
        blocks_ops = cf.ops
        blocks_n = cf.n_instr
        blocks_cost = cf.base_cost
        terms = cf.terms
        labels = cf.labels
        slot_names = cf.slot_names
        max_steps = self.max_steps
        cfuncs = self.cmod.functions
        array_names = self.cmod.array_names

        idx = cf.entry_idx
        while True:
            bcounts[idx] += 1
            n = self.instr_count + blocks_n[idx]
            self.instr_count = n
            if n > max_steps:
                raise ExecutionLimit(f"exceeded {max_steps} executed instructions")
            self.cost += blocks_cost[idx]
            op: tuple = ()
            try:
                for op in blocks_ops[idx]:
                    o = op[0]
                    if o == _BIN_VV:
                        _, d, f, a, b, s = op
                        v = f(frame[a], frame[b])
                        t = tnt[a] or tnt[b]
                        frame[d] = v
                        tnt[d] = t
                        if s >= 0:
                            se[s] += 1
                            if t:
                                stt[s] += 1
                            ob = sobs[s]
                            if len(ob) < 2 and v not in ob:
                                ob.append(v)
                    elif o == _BIN_VC:
                        _, d, f, a, c, s = op
                        v = f(frame[a], c)
                        t = tnt[a]
                        frame[d] = v
                        tnt[d] = t
                        if s >= 0:
                            se[s] += 1
                            if t:
                                stt[s] += 1
                            ob = sobs[s]
                            if len(ob) < 2 and v not in ob:
                                ob.append(v)
                    elif o == _MOV_C:
                        _, d, v, s = op
                        frame[d] = v
                        tnt[d] = False
                        if s >= 0:
                            se[s] += 1
                            ob = sobs[s]
                            if len(ob) < 2 and v not in ob:
                                ob.append(v)
                    elif o == _MOV_V:
                        _, d, a, s = op
                        v = frame[a]
                        if v is None:
                            raise Trap(
                                f"use of undefined variable {slot_names[a]!r}"
                            )
                        t = tnt[a]
                        frame[d] = v
                        tnt[d] = t
                        if s >= 0:
                            se[s] += 1
                            if t:
                                stt[s] += 1
                            ob = sobs[s]
                            if len(ob) < 2 and v not in ob:
                                ob.append(v)
                    elif o == _LOAD_V or o == _LOAD_C:
                        _, d, aidx, i, s = op
                        if o == _LOAD_V:
                            i = frame[i]
                        mem = mems[aidx]
                        if not 0 <= i < len(mem):
                            raise Trap(
                                f"load index {i} out of range for "
                                f"{array_names[aidx]!r}[{len(mem)}]"
                            )
                        v = mem[i]
                        frame[d] = v
                        tnt[d] = True
                        if s >= 0:
                            se[s] += 1
                            stt[s] += 1
                            ob = sobs[s]
                            if len(ob) < 2 and v not in ob:
                                ob.append(v)
                    elif o == _BIN_CV:
                        _, d, f, c, b, s = op
                        v = f(c, frame[b])
                        t = tnt[b]
                        frame[d] = v
                        tnt[d] = t
                        if s >= 0:
                            se[s] += 1
                            if t:
                                stt[s] += 1
                            ob = sobs[s]
                            if len(ob) < 2 and v not in ob:
                                ob.append(v)
                    elif o == _UN_V:
                        _, d, f, a, s = op
                        v = f(frame[a])
                        t = tnt[a]
                        frame[d] = v
                        tnt[d] = t
                        if s >= 0:
                            se[s] += 1
                            if t:
                                stt[s] += 1
                            ob = sobs[s]
                            if len(ob) < 2 and v not in ob:
                                ob.append(v)
                    elif o <= _STORE_CC:  # one of the four store variants
                        _, aidx, i, v = op
                        if o == _STORE_VV or o == _STORE_VC:
                            i = frame[i]
                        if o == _STORE_VV or o == _STORE_CV:
                            v = frame[v]
                            if v is None:
                                raise Trap(
                                    f"use of undefined variable "
                                    f"{slot_names[op[3]]!r}"
                                )
                        mem = mems[aidx]
                        if not 0 <= i < len(mem):
                            raise Trap(
                                f"store index {i} out of range for "
                                f"{array_names[aidx]!r}[{len(mem)}]"
                            )
                        mem[i] = v
                    elif o == _CALL_USER or o == _CALL_BUILTIN:
                        _, d, callee, argspec, s = op
                        vals = []
                        for is_var, x in argspec:
                            if is_var:
                                if frame[x] is None:
                                    raise Trap(
                                        f"use of undefined variable "
                                        f"{slot_names[x]!r}"
                                    )
                                x = frame[x]
                            vals.append(x)
                        if o == _CALL_USER:
                            ret = self.call(cfuncs[callee], vals)
                            if d >= 0 and ret is None:
                                raise Trap(
                                    f"{callee} returned no value but one is used"
                                )
                        else:
                            ret = callee(vals)
                        if d >= 0:
                            frame[d] = ret
                            tnt[d] = True
                            if s >= 0:
                                se[s] += 1
                                stt[s] += 1
                                ob = sobs[s]
                                if len(ob) < 2 and ret not in ob:
                                    ob.append(ret)
                    elif o == _PRINT:
                        vals = []
                        for is_var, x in op[1]:
                            if is_var:
                                if frame[x] is None:
                                    raise Trap(
                                        f"use of undefined variable "
                                        f"{slot_names[x]!r}"
                                    )
                                x = frame[x]
                            vals.append(x)
                        output.append(tuple(vals))
                    else:  # _TRAP
                        raise Trap(op[1])
            except TypeError:
                name = _undefined_operand(op, frame, slot_names)
                if name is None:
                    raise
                raise Trap(f"use of undefined variable {name!r}") from None

            term = terms[idx]
            tk = term[0]
            if tk == _T_BR:
                c = frame[term[1]]
                if c is None:
                    raise Trap(
                        f"use of undefined variable {slot_names[term[1]]!r}"
                    )
                entry = term[2] if c != 0 else term[3]
            elif tk == _T_JUMP:
                entry = term[1]
            elif tk == _T_RET_V or tk == _T_RET_C:
                if tk == _T_RET_V:
                    ret_value = frame[term[1]]
                    if ret_value is None:
                        raise Trap(
                            f"use of undefined variable {slot_names[term[1]]!r}"
                        )
                else:
                    ret_value = term[1]
                exit_entry = term[2]
                self.cost += exit_entry[1]
                if do_bl:
                    # The edge into the virtual exit is recording: it flushes
                    # the activation's final path.
                    counts[(bl_start, bl_reg + exit_entry[3])] += 1
                if tp is not None:
                    tp.edge(labels[idx], EXIT)
                    tp.leave()
                self.depth -= 1
                return ret_value
            else:  # pragma: no cover - _T_TRAP, unvalidated IR only
                raise Trap(term[1])

            nidx, cost_d, rec, bl_val, v_label = entry
            self.cost += cost_d
            if do_bl:
                if rec:
                    counts[(bl_start, bl_reg + bl_val)] += 1
                    bl_start = v_label
                    bl_reg = 0
                else:
                    bl_reg += bl_val
            if tp is not None:
                tp.edge(labels[idx], v_label)
            idx = nidx

    # -- readout -----------------------------------------------------------

    def result(self, ret: Optional[int]) -> RunResult:
        cmod = self.cmod
        profiles: dict[str, PathProfile] = {}
        if self.profile_mode in ("bl", "both"):
            for name in self.activated:
                numbering = cmod.numberings[name]
                profile = PathProfile()
                for (start, pid), count in self.bl_counts.get(name, {}).items():
                    profile.add(numbering.regenerate(start, pid), count)
                profiles[name] = profile
        trace_profiles = {
            name: tp.profile() for name, tp in self.trace_profilers.items()
        }
        block_counts: dict[tuple[str, str], int] = {}
        for name in self.activated:
            cf = cmod.functions[name]
            counts = self.block_counts[name]
            for i, label in enumerate(cf.labels):
                if counts[i]:
                    block_counts[(name, label)] = counts[i]
        site_stats: dict[Site, SiteStats] = {}
        se = self.site_exec
        for i, key in enumerate(cmod.site_keys):
            if se[i]:
                site_stats[key] = SiteStats(
                    executions=se[i],
                    tainted_executions=self.site_taint[i],
                    observed=self.site_obs[i],
                )
        return RunResult(
            return_value=ret,
            output=self.output,
            instr_count=self.instr_count,
            cost=self.cost,
            block_counts=block_counts,
            profiles=profiles,
            trace_profiles=trace_profiles,
            site_stats=site_stats,
            memory=self.memory,
        )


def _undefined_operand(op: tuple, frame: list, slot_names: Sequence[str]):
    """The name of the first undefined variable read by ``op``, if any.

    A ``TypeError`` out of an operator callable or a bounds comparison means
    some slot still holds ``None``; this resolves it back to a source-level
    name so the compiled engine traps exactly like the reference engine.
    """
    for pos in _VAR_SLOT_POSITIONS.get(op[0], ()):
        if frame[op[pos]] is None:
            return slot_names[op[pos]]
    return None
