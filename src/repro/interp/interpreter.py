"""A deterministic interpreter for IR modules.

The interpreter plays the role of the paper's instrumented native runs: it
executes a module, charges abstract cycle costs (:mod:`repro.interp.cost`),
collects Ball–Larus path profiles per routine, and gathers the per-site
dynamic statistics used by the constant-classification experiment
(Figures 10/13).

Dynamic taint
-------------
Each runtime value carries a taint bit meaning "no intraprocedural scalar
analysis could know this value": function parameters, memory loads, and call
results are tainted; constants are clean; operators propagate taint.  The
paper's *Unknowable* category — instructions that "will never be found
constant" because the analyses do not track pointers, memory, or calls — is
estimated as the dynamic executions whose result is tainted.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..ir.cfg import Cfg, ENTRY, EXIT
from ..ir.function import Function, Module
from ..ir.instructions import (
    Assign,
    BinOp,
    Branch,
    Call,
    Jump,
    Load,
    Print,
    Ret,
    Store,
    UnOp,
)
from ..ir.operands import Const, Operand, Var
from ..ir.ops import eval_binop, eval_unop
from ..obs import get_metrics, get_tracer
from ..profiles.ball_larus import BallLarusNumbering
from ..profiles.path_profile import PathProfile
from ..profiles.recording import recording_edges
from .cost import DEFAULT_COST_MODEL, CostModel
from .profiler import BallLarusProfiler, NullProfiler, TraceProfiler


class ExecutionLimit(Exception):
    """Raised when a run exceeds the configured step budget."""


class Trap(Exception):
    """Raised on a runtime error (bad array index, missing function, ...)."""


#: A program point: (function name, block label, instruction index).
Site = tuple[str, str, int]


@dataclass(slots=True)
class SiteStats:
    """Dynamic statistics for one value-producing instruction site."""

    executions: int = 0
    tainted_executions: int = 0
    #: Up to two distinct observed values (enough to decide invariance).
    observed: list[int] = field(default_factory=list)

    def record(self, value: int, tainted: bool) -> None:
        self.executions += 1
        if tainted:
            self.tainted_executions += 1
        if len(self.observed) < 2 and value not in self.observed:
            self.observed.append(value)

    @property
    def invariant(self) -> bool:
        """True if every execution produced the same value."""
        return len(self.observed) <= 1

    @property
    def ever_tainted(self) -> bool:
        return self.tainted_executions > 0


@dataclass
class RunResult:
    """Everything observed during one program run."""

    return_value: Optional[int]
    #: Printed tuples, in order — the observable behaviour semantics tests compare.
    output: list[tuple[int, ...]]
    #: Total executed IR instructions (incl. terminators).
    instr_count: int
    #: Total abstract cycles.
    cost: int
    #: Executions of each (function, block).
    block_counts: dict[tuple[str, str], int]
    #: Per-routine Ball–Larus path profile (increment-based profiler).
    profiles: dict[str, PathProfile]
    #: Per-routine profile from the trace-splitting oracle (mode="both").
    trace_profiles: dict[str, PathProfile]
    #: Dynamic statistics per value-producing site.
    site_stats: dict[Site, SiteStats]
    #: Final contents of the global arrays.
    memory: dict[str, list[int]]


class Interpreter:
    """Executes a module; construct once, :meth:`run` any number of times.

    Two execution engines share this front door:

    * ``engine="reference"`` — the tree-walking interpreter below, kept as
      the obviously-correct oracle;
    * ``engine="compiled"`` — the block-compiling fast path of
      :mod:`repro.interp.compiled`, which lowers each function once to a
      flat register-machine form and is several times faster on profiling
      runs (see ``docs/PERFORMANCE.md``).

    Both produce equal :class:`RunResult` values for every run that
    completes.
    """

    def __init__(
        self,
        module: Module,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        max_steps: int = 50_000_000,
        profile_mode: Optional[str] = "bl",
        track_sites: bool = True,
        engine: str = "reference",
    ) -> None:
        """``profile_mode`` is ``"bl"`` (efficient profiler), ``"trace"``
        (oracle), ``"both"`` (cross-validating), or ``None`` (no profiling).
        """
        if profile_mode not in (None, "bl", "trace", "both"):
            raise ValueError(f"bad profile_mode {profile_mode!r}")
        if engine not in ("reference", "compiled"):
            raise ValueError(f"bad engine {engine!r}")
        self.module = module
        self.cost_model = cost_model
        self.max_steps = max_steps
        self.profile_mode = profile_mode
        self.track_sites = track_sites
        self.engine = engine
        self._cfgs: dict[str, Cfg] = {}
        self._recording: dict[str, frozenset] = {}
        self._fallthrough: dict[str, dict[str, Optional[str]]] = {}
        for name, fn in module.functions.items():
            cfg = Cfg.from_function(fn)
            self._cfgs[name] = cfg
            self._recording[name] = recording_edges(cfg)
            labels = list(fn.blocks)
            self._fallthrough[name] = {
                label: labels[i + 1] if i + 1 < len(labels) else None
                for i, label in enumerate(labels)
            }
        #: One numbering per (cfg, recording), shared by every run and by
        #: both engines instead of being rebuilt per activation set.
        self._numberings: dict[str, BallLarusNumbering] = {}
        self._compiled = None
        #: Seconds spent lowering the module for the compiled engine.
        self.engine_compile_time = 0.0
        if engine == "compiled":
            from .compiled import CompiledModule

            with get_tracer().span(
                "interp.compile", functions=len(module.functions)
            ):
                t0 = time.perf_counter()
                self._compiled = CompiledModule(
                    module,
                    cost_model,
                    track_sites,
                    self._cfgs,
                    self._recording,
                    {name: self.numbering(name) for name in module.functions},
                )
                self.engine_compile_time = time.perf_counter() - t0

    def numbering(self, name: str) -> BallLarusNumbering:
        """The Ball–Larus numbering of one routine (constructed once)."""
        numbering = self._numberings.get(name)
        if numbering is None:
            numbering = BallLarusNumbering.for_cfg(
                self._cfgs[name], self._recording[name]
            )
            self._numberings[name] = numbering
        return numbering

    # -- public API -----------------------------------------------------------

    def run(
        self,
        args: Sequence[int] = (),
        inputs: Mapping[str, Sequence[int]] | None = None,
        entry_function: str = "main",
    ) -> RunResult:
        """Execute ``entry_function`` with integer ``args``.

        ``inputs`` overrides the initial contents of declared global arrays —
        this is how train vs. ref data sets are supplied.
        """
        # Each interpreted call nests a few Python frames; make sure the
        # interpreter's own depth limit (200) is reached before Python's.
        # The previous limit is restored on exit so embedding code never
        # observes a changed global.
        saved_limit = sys.getrecursionlimit()
        if saved_limit < 5000:
            sys.setrecursionlimit(5000)
        try:
            # One span and three counter bumps per *run* — never per
            # instruction — so the disabled-observability path stays on the
            # <5% overhead budget asserted by benchmarks/bench_interp.py.
            with get_tracer().span(
                "interp.run", engine=self.engine, entry=entry_function
            ) as span:
                result = self._run(args, inputs or {}, entry_function)
            span.set(instructions=result.instr_count, cost=result.cost)
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("interp_runs", engine=self.engine).inc()
                metrics.counter(
                    "interp_instructions", engine=self.engine
                ).inc(result.instr_count)
                metrics.counter("interp_cost_cycles", engine=self.engine).inc(
                    result.cost
                )
            return result
        finally:
            if saved_limit < 5000:
                sys.setrecursionlimit(saved_limit)

    def _run(
        self,
        args: Sequence[int],
        inputs: Mapping[str, Sequence[int]],
        entry_function: str,
    ) -> RunResult:
        fn = self.module.functions.get(entry_function)
        if fn is None:
            raise Trap(f"no function named {entry_function!r}")
        if len(args) != len(fn.params):
            raise Trap(
                f"{entry_function} expects {len(fn.params)} args, got {len(args)}"
            )
        if self._compiled is not None:
            return self._compiled.run(
                args, inputs, entry_function, self.profile_mode, self.max_steps
            )
        state = _RunState(self, inputs)
        ret = state.call(fn, [(int(a), True) for a in args])
        profiles: dict[str, PathProfile] = {}
        trace_profiles: dict[str, PathProfile] = {}
        for name, prof in state.bl_profilers.items():
            profiles[name] = prof.profile()
        for name, prof in state.trace_profilers.items():
            trace_profiles[name] = prof.profile()
        return RunResult(
            return_value=ret,
            output=state.output,
            instr_count=state.instr_count,
            cost=state.cost,
            block_counts=state.block_counts,
            profiles=profiles,
            trace_profiles=trace_profiles,
            site_stats=state.site_stats,
            memory=state.memory,
        )


class _RunState:
    """Mutable state of one run."""

    def __init__(self, interp: Interpreter, inputs: Mapping[str, Sequence[int]]) -> None:
        self.interp = interp
        self.module = interp.module
        self.memory: dict[str, list[int]] = {}
        for decl in self.module.arrays.values():
            self.memory[decl.name] = decl.initial_contents()
        for name, data in inputs.items():
            if name not in self.memory:
                raise Trap(f"input array {name!r} is not declared by the module")
            dest = self.memory[name]
            if len(data) > len(dest):
                raise Trap(
                    f"input for {name!r} has {len(data)} elements; array holds {len(dest)}"
                )
            for i, x in enumerate(data):
                dest[i] = int(x)
        self.output: list[tuple[int, ...]] = []
        self.instr_count = 0
        self.cost = 0
        self.block_counts: dict[tuple[str, str], int] = {}
        self.site_stats: dict[Site, SiteStats] = {}
        self.bl_profilers: dict[str, BallLarusProfiler] = {}
        self.trace_profilers: dict[str, TraceProfiler] = {}
        self.depth = 0

    # -- profilers ---------------------------------------------------------

    def _profilers(self, name: str):
        mode = self.interp.profile_mode
        result = []
        if mode in ("bl", "both"):
            if name not in self.bl_profilers:
                self.bl_profilers[name] = BallLarusProfiler(
                    self.interp._cfgs[name],
                    self.interp._recording[name],
                    numbering=self.interp.numbering(name),
                )
            result.append(self.bl_profilers[name])
        if mode in ("trace", "both"):
            if name not in self.trace_profilers:
                self.trace_profilers[name] = TraceProfiler(
                    self.interp._cfgs[name], self.interp._recording[name]
                )
            result.append(self.trace_profilers[name])
        if not result:
            result.append(NullProfiler())
        return result

    # -- execution -----------------------------------------------------------

    def call(self, fn: Function, args: list[tuple[int, bool]]) -> Optional[int]:
        """Execute one activation; ``args`` are (value, taint) pairs.

        Parameters are always re-tainted at entry: no intraprocedural scalar
        analysis can know them (the paper's model).
        """
        self.depth += 1
        if self.depth > 200:
            raise Trap(f"call depth limit exceeded entering {fn.name}")
        env: dict[str, int] = {}
        taint: dict[str, bool] = {}
        for param, (value, _) in zip(fn.params, args):
            env[param] = value
            taint[param] = True

        cm = self.interp.cost_model
        fallthrough = self.interp._fallthrough[fn.name]
        profilers = self._profilers(fn.name)
        for p in profilers:
            p.enter()
            p.edge(ENTRY, fn.entry)

        label = fn.entry
        ret_value: Optional[int] = None
        while True:
            block = fn.blocks[label]
            self.block_counts[(fn.name, label)] = (
                self.block_counts.get((fn.name, label), 0) + 1
            )
            for idx, instr in enumerate(block.instrs):
                self._step()
                self._execute(fn.name, label, idx, instr, env, taint, cm)
            term = block.terminator
            self._step()
            if isinstance(term, Jump):
                target = term.target
            elif isinstance(term, Branch):
                cond, _ = self._value(term.cond, env, taint)
                target = term.if_true if cond != 0 else term.if_false
            elif isinstance(term, Ret):
                if term.value is not None:
                    ret_value, _ = self._value(term.value, env, taint)
                self.cost += cm.transfer_cost(term, None, fallthrough[label])
                for p in profilers:
                    p.edge(label, EXIT)
                    p.leave()
                self.depth -= 1
                return ret_value
            else:  # pragma: no cover - validated IR has a terminator
                raise Trap(f"{fn.name}:{label}: missing terminator")
            self.cost += cm.transfer_cost(term, target, fallthrough[label])
            for p in profilers:
                p.edge(label, target)
            label = target

    def _step(self) -> None:
        self.instr_count += 1
        if self.instr_count > self.interp.max_steps:
            raise ExecutionLimit(
                f"exceeded {self.interp.max_steps} executed instructions"
            )

    def _value(
        self, op: Operand, env: dict[str, int], taint: dict[str, bool]
    ) -> tuple[int, bool]:
        if isinstance(op, Const):
            return op.value, False
        try:
            return env[op.name], taint.get(op.name, True)
        except KeyError:
            raise Trap(f"use of undefined variable {op.name!r}") from None

    def _execute(
        self,
        fn_name: str,
        label: str,
        idx: int,
        instr,
        env: dict[str, int],
        taint: dict[str, bool],
        cm: CostModel,
    ) -> None:
        self.cost += cm.instr_cost(instr)
        result: Optional[tuple[int, bool]] = None

        if isinstance(instr, Assign):
            result = self._value(instr.src, env, taint)
        elif isinstance(instr, BinOp):
            (a, ta) = self._value(instr.lhs, env, taint)
            (b, tb) = self._value(instr.rhs, env, taint)
            result = (eval_binop(instr.op, a, b), ta or tb)
        elif isinstance(instr, UnOp):
            (a, ta) = self._value(instr.src, env, taint)
            result = (eval_unop(instr.op, a), ta)
        elif isinstance(instr, Load):
            (i, _) = self._value(instr.index, env, taint)
            result = (self._load(instr.array, i), True)
        elif isinstance(instr, Store):
            (i, _) = self._value(instr.index, env, taint)
            (v, _) = self._value(instr.value, env, taint)
            self._store(instr.array, i, v)
        elif isinstance(instr, Call):
            values = [self._value(a, env, taint) for a in instr.args]
            ret = self._dispatch_call(instr.func, values)
            if instr.dest is not None:
                if ret is None:
                    raise Trap(f"{instr.func} returned no value but one is used")
                result = (ret, True)
        elif isinstance(instr, Print):
            self.output.append(
                tuple(self._value(a, env, taint)[0] for a in instr.args)
            )
        else:  # pragma: no cover
            raise Trap(f"unknown instruction {instr!r}")

        if result is not None and instr.dest is not None:
            value, tainted = result
            env[instr.dest] = value
            taint[instr.dest] = tainted
            if self.interp.track_sites:
                site = (fn_name, label, idx)
                stats = self.site_stats.get(site)
                if stats is None:
                    stats = self.site_stats[site] = SiteStats()
                stats.record(value, tainted)

    def _load(self, array: str, index: int) -> int:
        mem = self.memory.get(array)
        if mem is None:
            raise Trap(f"load from undeclared array {array!r}")
        if not 0 <= index < len(mem):
            raise Trap(f"load index {index} out of range for {array!r}[{len(mem)}]")
        return mem[index]

    def _store(self, array: str, index: int, value: int) -> None:
        mem = self.memory.get(array)
        if mem is None:
            raise Trap(f"store to undeclared array {array!r}")
        if not 0 <= index < len(mem):
            raise Trap(f"store index {index} out of range for {array!r}[{len(mem)}]")
        mem[index] = value

    def _dispatch_call(
        self, func: str, args: list[tuple[int, bool]]
    ) -> Optional[int]:
        target = self.module.functions.get(func)
        if target is not None:
            if len(args) != len(target.params):
                raise Trap(
                    f"{func} expects {len(target.params)} args, got {len(args)}"
                )
            return self.call(target, args)
        values = [v for v, _ in args]
        if func == "abs":
            _expect(func, values, 1)
            return abs(values[0])
        if func == "min2":
            _expect(func, values, 2)
            return min(values)
        if func == "max2":
            _expect(func, values, 2)
            return max(values)
        if func == "clamp":
            _expect(func, values, 3)
            lo, hi = values[1], values[2]
            return max(lo, min(values[0], hi))
        raise Trap(f"unknown function {func!r}")


def _expect(func: str, values: list[int], n: int) -> None:
    if len(values) != n:
        raise Trap(f"builtin {func} expects {n} args, got {len(values)}")


def run_module(
    module: Module,
    args: Sequence[int] = (),
    inputs: Mapping[str, Sequence[int]] | None = None,
    entry_function: str = "main",
    **kwargs,
) -> RunResult:
    """Convenience wrapper: build an :class:`Interpreter` and run
    ``entry_function`` (remaining keyword arguments configure the
    interpreter)."""
    return Interpreter(module, **kwargs).run(args, inputs, entry_function)
