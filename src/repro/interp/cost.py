"""The dynamic cost model.

The paper measured wall-clock speed of GCC-compiled SPARC binaries; our
substitute is a deterministic cost in abstract cycles charged by the
interpreter.  Two aspects matter for reproducing Table 2's *shape*:

* folding a computation to a constant must save cycles (``assign`` is cheaper
  than any ``binop``), and
* code duplication must be able to *cost* cycles, because on real hardware
  tail duplication adds jumps — the paper notes "a node can have at most one
  fall-through predecessor", so isolating paths introduces extra jumps.

We model fall-through explicitly: transferring control to the block that
immediately follows in the function's block order is free, any other transfer
pays ``taken_penalty``.  Constant folding can therefore speed a program up
while aggressive duplication slows it down, which is exactly the tension
Table 2 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.instructions import (
    Assign,
    BinOp,
    Branch,
    Call,
    Instr,
    Jump,
    Load,
    Print,
    Ret,
    Store,
    Terminator,
    UnOp,
)


@dataclass(frozen=True)
class CostModel:
    """Abstract cycle costs for IR operations."""

    assign: int = 1
    unop: int = 1
    binop: int = 2
    mul: int = 4
    div: int = 8
    load: int = 4
    store: int = 4
    call: int = 8
    print_: int = 2
    branch: int = 2
    jump: int = 0
    ret: int = 2
    #: Extra cycles when control transfers anywhere but the fall-through block.
    taken_penalty: int = 1

    def instr_cost(self, instr: Instr) -> int:
        """Cost of a straight-line instruction."""
        if isinstance(instr, Assign):
            return self.assign
        if isinstance(instr, BinOp):
            if instr.op == "mul":
                return self.mul
            if instr.op in ("div", "mod"):
                return self.div
            return self.binop
        if isinstance(instr, UnOp):
            return self.unop
        if isinstance(instr, Load):
            return self.load
        if isinstance(instr, Store):
            return self.store
        if isinstance(instr, Call):
            return self.call
        if isinstance(instr, Print):
            return self.print_
        raise TypeError(f"unknown instruction {type(instr).__name__}")

    def transfer_cost(self, term: Terminator, target: str | None, fallthrough: str | None) -> int:
        """Cost of executing ``term`` and transferring to ``target``.

        ``fallthrough`` is the label of the next block in layout order (or
        ``None`` at the end of the function).
        """
        if isinstance(term, Ret):
            return self.ret
        base = self.branch if isinstance(term, Branch) else self.jump
        if target is not None and target != fallthrough:
            base += self.taken_penalty
        return base


#: The default model used throughout the experiments.
DEFAULT_COST_MODEL = CostModel()
