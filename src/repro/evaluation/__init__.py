"""Experiment harness: workloads, per-coverage pipeline caching, and the
builders behind every table and figure."""

from .harness import (
    CA_SWEEP,
    DEFAULT_CA,
    DEFAULT_CR,
    Table2Row,
    Workload,
    WorkloadRun,
)
from .figures import render_series, sparkline
from .tables import format_table

__all__ = [
    "CA_SWEEP",
    "DEFAULT_CA",
    "DEFAULT_CR",
    "format_table",
    "render_series",
    "sparkline",
    "Table2Row",
    "Workload",
    "WorkloadRun",
]
