"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table (numbers right-aligned)."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(v) for v in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(
            " | ".join(
                c.rjust(w) if _numeric(c) else c.ljust(w)
                for c, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False
