"""ASCII rendering of figure series.

The paper's Figures 7–12 are line charts; the benchmark harness regenerates
their data as tables and, with these helpers, as quick terminal charts so a
reader can see the *shape* (saturation, outliers) without plotting tools.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of ``values`` (min..max scaled)."""
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return _BARS[4] * len(values)
    span = hi - lo
    return "".join(
        _BARS[1 + round((v - lo) / span * (len(_BARS) - 2))] for v in values
    )


def render_series(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str],
    title: str = "",
    value_format: str = "{:+.1%}",
) -> str:
    """Render named series as labelled sparklines with first/last values."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"  x: {' '.join(x_labels)}")
    width = max(len(name) for name in series) if series else 0
    for name, values in series.items():
        first = value_format.format(values[0])
        last = value_format.format(values[-1])
        lines.append(
            f"  {name.ljust(width)}  {sparkline(values)}  {first} -> {last}"
        )
    return "\n".join(lines)
