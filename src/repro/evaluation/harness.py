"""The experiment harness behind every table and figure.

A :class:`Workload` is a MiniC program plus train and ref inputs (standing in
for SPEC95's train/ref data sets).  A :class:`WorkloadRun` compiles it,
profiles the train input, and lazily runs the qualified-analysis pipeline at
requested coverages, caching everything so the coverage sweeps of Figures 9,
11 and 12 don't recompute shared work.

The harness also builds the two executables Table 2 compares:

* *Base* — Wegman–Zadek constant propagation on the original CFG, folding,
  DCE, profile-guided layout;
* *Optimized* — path-qualified constant propagation (trace, analyze, reduce),
  folding on the reduced graph, DCE, profile-guided layout;

and checks they produce identical output on the ref input before reporting
costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..core.qualified import QualifiedAnalysis, run_qualified
from ..dataflow import DATAFLOW_ENGINES, WZ_ENGINES, engine_scope, wz_engine_scope
from ..obs import Span, Tracer, get_tracer
from ..frontend.lower import compile_program
from ..interp.interpreter import Interpreter, RunResult
from ..ir.function import Module
from ..ir.validate import validate_module
from ..opt.codegen import fold_function, materialize, vertex_labels
from ..opt.dce import eliminate_dead_code
from ..opt.layout import edge_frequencies_from_labels, layout_function
from ..opt.straighten import straighten
from ..profiles.path_profile import PathProfile
from ..stats.classify import ConstantClassification, classify_constants

#: The coverage levels swept by Figures 9, 11 and 12.
CA_SWEEP: tuple[float, ...] = (0.0, 0.75, 0.875, 0.9375, 0.97, 1.0)

#: The paper's defaults (§6: CA = 0.97, CR = 0.95).
DEFAULT_CA = 0.97
DEFAULT_CR = 0.95


@dataclass(frozen=True)
class Workload:
    """A benchmark program with train and ref data sets."""

    name: str
    source: str
    train_args: tuple[int, ...]
    train_inputs: Mapping[str, Sequence[int]]
    ref_args: tuple[int, ...]
    ref_inputs: Mapping[str, Sequence[int]]
    description: str = ""


@dataclass
class Table2Row:
    """Running-time comparison for one workload (Table 2)."""

    name: str
    base_cost: int
    optimized_cost: int

    @property
    def speedup(self) -> float:
        """Base / optimized cost; > 1 means qualification helped."""
        if self.optimized_cost == 0:
            return 1.0
        return self.base_cost / self.optimized_cost


class WorkloadRun:
    """Compiled, profiled workload with cached per-coverage pipelines.

    The expensive steps — compilation, the train and ref profiling runs, and
    the per-coverage qualified pipelines — are factored into overridable
    methods so subclasses (notably
    :class:`repro.pipeline.CachedWorkloadRun`) can memoize them across
    processes and sessions without re-implementing any of the metrics below.
    """

    def __init__(
        self,
        workload: Workload,
        engine: str = "compiled",
        tracer: Optional[Tracer] = None,
        checker=None,
        dataflow_engine: str = "auto",
        wz_engine: str = "auto",
    ) -> None:
        if engine not in ("reference", "compiled"):
            raise ValueError(f"bad engine {engine!r}")
        if dataflow_engine not in DATAFLOW_ENGINES:
            raise ValueError(
                f"bad dataflow engine {dataflow_engine!r}; "
                f"choose from {DATAFLOW_ENGINES}"
            )
        if wz_engine not in WZ_ENGINES:
            raise ValueError(
                f"bad wz engine {wz_engine!r}; choose from {WZ_ENGINES}"
            )
        self.workload = workload
        self.engine = engine
        #: Which dataflow solver engine runs the set-problem analyses this
        #: harness triggers (lints, qualified pipelines, DCE in the Table 2
        #: builds) — threaded through :func:`repro.dataflow.engine_scope`.
        self.dataflow_engine = dataflow_engine
        #: Which Wegman–Zadek engine runs conditional constant propagation
        #: everywhere this harness triggers it (qualified pipelines, lints,
        #: Table 2 builds) — threaded through
        #: :func:`repro.dataflow.wz_engine_scope` and, for the pipeline
        #: proper, passed explicitly to :func:`run_qualified`.
        self.wz_engine = wz_engine
        # Self-verification hooks (null object when disabled; see
        # repro.checks.runner).  Imported lazily: the checks package must
        # stay importable from repro.ir, which this module imports.
        if checker is None:
            from ..checks.runner import NULL_CHECKER

            checker = NULL_CHECKER
        self.checker = checker
        # Stage timings are measured through spans.  When observability is
        # on, the stages land in the global trace; when it is off, a private
        # always-enabled tracer keeps ``timings`` real without publishing
        # anything.
        tr = tracer if tracer is not None else get_tracer()
        if not tr.enabled:
            tr = Tracer()
        self.tracer = tr
        self._stage_spans: dict[str, Span] = {}

        with tr.span("workload.compile", workload=workload.name) as span:
            self.module: Module = self._compile_module()
            validate_module(self.module)
        self._stage_spans["compile"] = span
        if checker.enabled:
            with engine_scope(dataflow_engine), wz_engine_scope(wz_engine):
                checker.after_compile(workload.name, self.module)

        with tr.span(
            "workload.train_run", workload=workload.name, engine=engine
        ) as span:
            self.train: RunResult = self._run_train()
        span.set(instructions=self.train.instr_count)
        self._stage_spans["train_run"] = span
        if checker.enabled:
            checker.after_run(workload.name, "train", self.module, self.train)

        with tr.span(
            "workload.ref_run", workload=workload.name, engine=engine
        ) as span:
            self.ref: RunResult = self._run_ref()
        span.set(instructions=self.ref.instr_count)
        self._stage_spans["ref_run"] = span
        if checker.enabled:
            checker.after_run(workload.name, "ref", self.module, self.ref)

        self._qualified: dict[tuple[float, float], dict[str, QualifiedAnalysis]] = {}
        self._classified: dict[
            tuple[float, float], dict[str, ConstantClassification]
        ] = {}
        self._lint: dict[tuple[float, float, float], tuple] = {}

    @property
    def timings(self) -> dict[str, float]:
        """Wall-clock seconds per stage (keys: ``compile``, ``train_run``,
        ``ref_run``) — a view derived from the stage spans, kept for
        compatibility with pre-observability consumers."""
        return {name: span.duration for name, span in self._stage_spans.items()}

    @property
    def compile_time(self) -> float:
        """Seconds spent compiling the workload (alias of ``timings``)."""
        return self.timings["compile"]

    # -- overridable pipeline steps ---------------------------------------

    def _compile_module(self) -> Module:
        return compile_program(self.workload.source)

    def _run_train(self) -> RunResult:
        return Interpreter(
            self.module, profile_mode="bl", track_sites=False, engine=self.engine
        ).run(self.workload.train_args, self.workload.train_inputs)

    def _run_ref(self) -> RunResult:
        return Interpreter(
            self.module, profile_mode="bl", track_sites=True, engine=self.engine
        ).run(self.workload.ref_args, self.workload.ref_inputs)

    def _compute_qualified(
        self, ca: float, cr: float
    ) -> dict[str, QualifiedAnalysis]:
        return {
            name: run_qualified(
                fn, self.train_profile(name), ca, cr, wz_engine=self.wz_engine
            )
            for name, fn in self.module.functions.items()
        }

    # -- analysis ---------------------------------------------------------

    def function_names(self) -> tuple[str, ...]:
        return tuple(self.module.functions)

    def train_profile(self, fn_name: str) -> PathProfile:
        """The training profile of one routine (empty if never called)."""
        return self.train.profiles.get(fn_name, PathProfile())

    def ref_profile(self, fn_name: str) -> PathProfile:
        return self.ref.profiles.get(fn_name, PathProfile())

    def qualified(
        self, ca: float = DEFAULT_CA, cr: float = DEFAULT_CR
    ) -> dict[str, QualifiedAnalysis]:
        """Per-routine pipeline results at the given coverage, cached."""
        key = (ca, cr)
        if key not in self._qualified:
            with engine_scope(self.dataflow_engine), wz_engine_scope(
                self.wz_engine
            ):
                with self.tracer.span(
                    "workload.qualify", workload=self.workload.name, ca=ca, cr=cr
                ):
                    self._qualified[key] = self._compute_qualified(ca, cr)
                # Deliberately also covers subclass cache hits: a corrupted
                # cached artifact fails its invariants just like a fresh one.
                if self.checker.enabled:
                    self.checker.after_qualified(
                        self.workload.name, self._qualified[key]
                    )
        return self._qualified[key]

    def lint(
        self,
        ca: float = DEFAULT_CA,
        cr: float = DEFAULT_CR,
        min_mass: Optional[float] = None,
    ) -> tuple:
        """Ranked analyzer findings (classic + path lints), cached.

        Subclasses memoize through :meth:`_compute_lint`, whose cache key
        must include the analyzer configuration (``min_mass`` alongside the
        coverage parameters and engines)."""
        from ..analyze.passes import DEFAULT_MIN_MASS

        if min_mass is None:
            min_mass = DEFAULT_MIN_MASS
        key = (ca, cr, min_mass)
        if key not in self._lint:
            with engine_scope(self.dataflow_engine), wz_engine_scope(
                self.wz_engine
            ):
                with self.tracer.span(
                    "workload.lint",
                    workload=self.workload.name,
                    ca=ca,
                    cr=cr,
                    min_mass=min_mass,
                ) as span:
                    self._lint[key] = self._compute_lint(ca, cr, min_mass)
                span.set(findings=len(self._lint[key]))
        return self._lint[key]

    def _compute_lint(self, ca: float, cr: float, min_mass: float) -> tuple:
        from ..analyze.runner import compute_findings

        return compute_findings(
            self.module,
            self.qualified(ca, cr),
            min_mass,
            workload=self.workload.name,
        )

    def classification(
        self, ca: float = DEFAULT_CA, cr: float = DEFAULT_CR
    ) -> dict[str, ConstantClassification]:
        """Per-routine constant classification against the ref profile."""
        key = (ca, cr)
        if key not in self._classified:
            qualified = self.qualified(ca, cr)
            with self.tracer.span(
                "workload.classify", workload=self.workload.name, ca=ca, cr=cr
            ):
                self._classified[key] = {
                    name: classify_constants(
                        qa, self.ref_profile(name), self.ref.site_stats
                    )
                    for name, qa in qualified.items()
                }
        return self._classified[key]

    # -- aggregate metrics ----------------------------------------------------

    @property
    def cfg_nodes(self) -> int:
        """Total CFG nodes (basic blocks) in the program — Table 1."""
        return sum(len(fn.blocks) for fn in self.module.functions.values())

    @property
    def executed_paths(self) -> int:
        """Distinct Ball–Larus paths executed in the training run — Table 1."""
        return sum(p.num_distinct for p in self.train.profiles.values())

    def hot_path_count(self, ca: float = DEFAULT_CA) -> int:
        """Paths needed to cover ``ca`` of training instructions — Table 1."""
        return sum(len(qa.hot_paths) for qa in self.qualified(ca).values())

    def analysis_time(self, ca: float, cr: float = DEFAULT_CR) -> float:
        """Total qualified-analysis seconds at coverage ``ca`` (Figure 12)."""
        return sum(qa.analysis_time for qa in self.qualified(ca, cr).values())

    def graph_sizes(
        self, ca: float, cr: float = DEFAULT_CR
    ) -> tuple[int, int, int]:
        """(original, traced, reduced) total real vertices (Figure 11)."""
        orig = hpg = red = 0
        for qa in self.qualified(ca, cr).values():
            orig += qa.original_size
            hpg += qa.hpg_size
            red += qa.reduced_size
        return orig, hpg, red

    def aggregate_classification(
        self, ca: float = DEFAULT_CA, cr: float = DEFAULT_CR
    ) -> ConstantClassification:
        """Whole-program classification: per-routine counts summed."""
        rows = list(self.classification(ca, cr).values())
        return ConstantClassification(
            total_dynamic=sum(r.total_dynamic for r in rows),
            local=sum(r.local for r in rows),
            unknowable=sum(r.unknowable for r in rows),
            iterative_nonlocal=sum(r.iterative_nonlocal for r in rows),
            qualified_nonlocal=sum(r.qualified_nonlocal for r in rows),
            baseline_constants=sum(r.baseline_constants for r in rows),
            qualified_constants=sum(r.qualified_constants for r in rows),
            identical_extra=sum(r.identical_extra for r in rows),
            variable=sum(r.variable for r in rows),
            mixed=sum(r.mixed for r in rows),
        )

    # -- executables (Table 2) ---------------------------------------------------

    def build_base_module(self) -> Module:
        """Original CFG + Wegman–Zadek folding + DCE + layout."""
        with engine_scope(self.dataflow_engine), wz_engine_scope(self.wz_engine):
            return self._build_base_module()

    def _build_base_module(self) -> Module:
        out = self._fresh_module()
        for name, fn in self.module.functions.items():
            qa = self.qualified(0.0)[name]
            folded = fold_function(fn, qa.baseline)
            eliminate_dead_code(folded)
            straighten(folded)
            freqs = {
                (u, v): c
                for (u, v), c in self.train_profile(name).edge_frequencies().items()
                if u in folded.blocks and v in folded.blocks
            }
            layout_function(folded, freqs)
            out.add_function(folded)
        validate_module(out)
        return out

    def build_optimized_module(
        self, ca: float = DEFAULT_CA, cr: float = DEFAULT_CR
    ) -> Module:
        """Reduced hot-path graph + qualified folding + DCE + layout."""
        with engine_scope(self.dataflow_engine), wz_engine_scope(self.wz_engine):
            return self._build_optimized_module(ca, cr)

    def _build_optimized_module(
        self, ca: float = DEFAULT_CA, cr: float = DEFAULT_CR
    ) -> Module:
        out = self._fresh_module()
        for name, fn in self.module.functions.items():
            qa = self.qualified(ca, cr)[name]
            if qa.traced:
                reduced = qa.reduced
                optimized = materialize(reduced, qa.reduced_analysis, fold=True)
                labels = vertex_labels(reduced)
                freqs = edge_frequencies_from_labels(
                    qa.reduced_profile.edge_frequencies(), labels
                )
                freqs = {
                    (u, v): c
                    for (u, v), c in freqs.items()
                    if u in optimized.blocks and v in optimized.blocks
                }
            else:
                optimized = fold_function(fn, qa.baseline)
                freqs = {
                    (u, v): c
                    for (u, v), c in self.train_profile(name)
                    .edge_frequencies()
                    .items()
                    if u in optimized.blocks and v in optimized.blocks
                }
            eliminate_dead_code(optimized)
            straighten(optimized)
            freqs = {
                (u, v): c
                for (u, v), c in freqs.items()
                if u in optimized.blocks and v in optimized.blocks
            }
            layout_function(optimized, freqs)
            out.add_function(optimized)
        validate_module(out)
        return out

    def _fresh_module(self) -> Module:
        out = Module()
        for decl in self.module.arrays.values():
            out.add_array(decl)
        return out

    def table2(self, ca: float = DEFAULT_CA, cr: float = DEFAULT_CR) -> Table2Row:
        """Run base and optimized builds on the ref input and compare costs.

        Raises if either build changes observable behaviour.
        """
        with self.tracer.span(
            "workload.build_base", workload=self.workload.name
        ):
            base = self.build_base_module()
        with self.tracer.span(
            "workload.build_optimized", workload=self.workload.name, ca=ca, cr=cr
        ):
            optimized = self.build_optimized_module(ca, cr)
        base_run = Interpreter(
            base, profile_mode=None, track_sites=False, engine=self.engine
        ).run(self.workload.ref_args, self.workload.ref_inputs)
        opt_run = Interpreter(
            optimized, profile_mode=None, track_sites=False, engine=self.engine
        ).run(self.workload.ref_args, self.workload.ref_inputs)
        if (
            base_run.output != self.ref.output
            or opt_run.output != self.ref.output
            or base_run.return_value != self.ref.return_value
            or opt_run.return_value != self.ref.return_value
        ):
            raise AssertionError(
                f"{self.workload.name}: optimized build changed behaviour"
            )
        return Table2Row(
            name=self.workload.name,
            base_cost=base_run.cost,
            optimized_cost=opt_run.cost,
        )
