"""Content-addressed artifact cache for the analysis pipeline.

Every expensive pipeline artifact — compiled modules, Ball–Larus profiling
runs, qualification automata / hot-path graphs (inside
:class:`~repro.core.qualified.QualifiedAnalysis` bundles) — is memoized
under a key derived *only* from content: the module source text, the input
data, the coverage parameters, and (for derived artifacts) the canonical
profile fingerprint.  Identical inputs therefore share artifacts across
coverage sweeps, across processes of a parallel run, and across sessions.

Keys are SHA-256 over a canonical JSON rendering of the key parts plus a
schema version; bumping :data:`SCHEMA_VERSION` invalidates every persisted
artifact at once (the invalidation story is documented in
``docs/PIPELINE.md``).  Values are stored in a two-level hierarchy: a
bounded in-process LRU in front of an optional on-disk store
(``<root>/<kind>/<hash>.pkl``, written atomically via a temp file +
``os.replace`` so concurrent workers never observe partial artifacts).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional, Union

from ..obs import get_metrics, get_tracer

#: Bump to invalidate all persisted artifacts (e.g. on IR format changes).
#: v2: per-function qualified/lint artifacts, IR-fingerprint run keys, and
#: tagged canonicalization of bytes / non-finite floats in ``content_key``.
SCHEMA_VERSION = 2

#: Artifact kinds the pipeline stores; each gets its own subdirectory and
#: its own row in the hit/miss statistics.
KIND_MODULE = "module"
KIND_TRAIN_RUN = "train-run"
KIND_REF_RUN = "ref-run"
KIND_QUALIFIED = "qualified"
KIND_LINT = "lint"
KIND_SWEEP_CELL = "sweep-cell"
KIND_SWEEP_SUMMARY = "sweep-summary"

#: The kinds whose recomputation means "we compiled or profiled again".
COMPILE_PROFILE_KINDS = (KIND_MODULE, KIND_TRAIN_RUN, KIND_REF_RUN)

#: Default bound on in-memory entries per :class:`ArtifactCache`.  Long
#: sweeps touch thousands of per-function artifacts; without a cap the
#: memory layer would pin every one of them live for the process lifetime.
DEFAULT_MEMORY_ENTRIES = 512


def _canonical(part: Any) -> Any:
    """Reduce a key part to canonically-JSON-serializable data.

    Bytes and non-finite floats get *tagged* encodings (single-key mappings
    ``{"__bytes__": hex}`` / ``{"__float__": "nan"|"inf"|"-inf"}``) instead
    of falling through to ``repr`` or to JSON's non-standard ``NaN`` token —
    both of which would silently produce keys that other JSON parsers (or
    future selves) disagree about.  Finite numbers, strings, and containers
    keep their plain canonical form, so existing keys are unaffected.
    """
    if isinstance(part, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(part.items(), key=lambda kv: str(kv[0]))}
    if isinstance(part, (list, tuple)):
        return [_canonical(v) for v in part]
    if isinstance(part, float) and not isinstance(part, bool):
        if math.isfinite(part):
            return part
        return {"__float__": repr(part)}
    if isinstance(part, bytes):
        return {"__bytes__": part.hex()}
    if isinstance(part, (str, int, bool)) or part is None:
        return part
    return repr(part)


def content_key(*parts: Any) -> str:
    """SHA-256 content hash of the given key parts (order-sensitive)."""
    h = hashlib.sha256()
    h.update(f"repro-pipeline-v{SCHEMA_VERSION}".encode())
    for part in parts:
        h.update(b"\x00")
        h.update(
            json.dumps(
                _canonical(part),
                sort_keys=True,
                separators=(",", ":"),
                allow_nan=False,
            ).encode()
        )
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counts per artifact kind.

    ``misses[kind]`` equals the number of times the underlying computation
    actually ran — the differential tests assert a warm cache performs zero
    compiles and zero profiling runs by checking exactly these counters.
    """

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    stores: dict[str, int] = field(default_factory=dict)
    #: Artifacts found on disk but unreadable (truncated/stale pickles);
    #: each one was silently treated as a miss and recomputed.
    corrupt: dict[str, int] = field(default_factory=dict)
    #: Entries dropped from the bounded in-memory layer (LRU).  A disk-backed
    #: cache reloads them on the next lookup; a purely in-memory cache
    #: recomputes.
    evictions: dict[str, int] = field(default_factory=dict)

    #: Counter dicts, for the bulk merge/copy/diff operations below.
    _COUNTERS = ("hits", "misses", "stores", "corrupt", "evictions")

    def record_hit(self, kind: str) -> None:
        self.hits[kind] = self.hits.get(kind, 0) + 1

    def record_miss(self, kind: str) -> None:
        self.misses[kind] = self.misses.get(kind, 0) + 1

    def record_store(self, kind: str) -> None:
        self.stores[kind] = self.stores.get(kind, 0) + 1

    def record_corrupt(self, kind: str) -> None:
        self.corrupt[kind] = self.corrupt.get(kind, 0) + 1

    def record_eviction(self, kind: str) -> None:
        self.evictions[kind] = self.evictions.get(kind, 0) + 1

    def computations(self, kinds: Iterable[str]) -> int:
        """How many times the computations behind ``kinds`` actually ran."""
        return sum(self.misses.get(kind, 0) for kind in kinds)

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def merge(self, other: "CacheStats") -> None:
        """Fold another stats object (e.g. from a worker process) into this."""
        for field_name in self._COUNTERS:
            mine = getattr(self, field_name)
            for kind, n in getattr(other, field_name).items():
                mine[kind] = mine.get(kind, 0) + n

    def copy(self) -> "CacheStats":
        return CacheStats(
            **{name: dict(getattr(self, name)) for name in self._COUNTERS}
        )

    def diff(self, earlier: "CacheStats") -> "CacheStats":
        """Counts accumulated since ``earlier`` (a previous :meth:`copy`)."""
        out = CacheStats()
        for field_name in self._COUNTERS:
            mine = getattr(self, field_name)
            theirs = getattr(earlier, field_name)
            target = getattr(out, field_name)
            for kind in set(mine) | set(theirs):
                n = mine.get(kind, 0) - theirs.get(kind, 0)
                if n:
                    target[kind] = n
        return out

    def summary(self) -> str:
        kinds = sorted(set(self.hits) | set(self.misses))
        parts = []
        for kind in kinds:
            part = (
                f"{kind}: {self.hits.get(kind, 0)} hit / "
                f"{self.misses.get(kind, 0)} computed"
            )
            if self.corrupt.get(kind):
                part += f" / {self.corrupt[kind]} corrupt"
            if self.evictions.get(kind):
                part += f" / {self.evictions[kind]} evicted"
            parts.append(part)
        return "; ".join(parts) if parts else "empty"


class ArtifactCache:
    """Two-level (memory, disk) content-addressed store.

    ``root=None`` gives a purely in-process cache — the deterministic
    fallback when no ``--cache-dir`` is configured.  All artifacts are plain
    Python object graphs (IR modules, run results, analysis bundles), so the
    on-disk format is pickle; the *keys* carry all the invalidation logic.

    Safe to share across threads (the analysis service hands one cache to
    every request worker): the memory layer and statistics are lock-guarded,
    disk writes go through a temp file + atomic ``os.replace``, torn or
    stale on-disk artifacts read back as misses, and concurrent ``memo``
    calls for the *same* key single-flight — the first caller computes, the
    rest block and reuse its artifact (counted as hits, so ``misses`` still
    equals the number of times the computation actually ran).
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        memory_entries: Optional[int] = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        if memory_entries is not None and memory_entries < 1:
            raise ValueError(
                f"memory_entries must be >= 1 or None, got {memory_entries}"
            )
        self.root: Optional[Path] = Path(root) if root is not None else None
        #: LRU bound on the memory layer (``None`` = unbounded).  Evicted
        #: entries reload from disk when a root is configured; a purely
        #: in-memory cache recomputes them, so keep the cap generous.
        self.memory_entries = memory_entries
        self.stats = CacheStats()
        self._memory: "OrderedDict[tuple[str, str], Any]" = OrderedDict()
        self._lock = threading.Lock()
        #: In-flight computations, keyed like ``_memory``; followers wait on
        #: the leader's event instead of recomputing.
        self._inflight: dict[tuple[str, str], threading.Event] = {}

    # -- core protocol -----------------------------------------------------

    def _memory_put(self, mem_key: tuple[str, str], value: Any) -> None:
        """Insert into the LRU memory layer; caller holds ``_lock``.

        Eviction never touches ``_inflight``: single-flight followers wait
        on the leader's event regardless of what the LRU drops.
        """
        self._memory[mem_key] = value
        self._memory.move_to_end(mem_key)
        if self.memory_entries is None:
            return
        while len(self._memory) > self.memory_entries:
            (evicted_kind, _), _ = self._memory.popitem(last=False)
            self.stats.record_eviction(evicted_kind)
            get_metrics().counter("cache_evictions", kind=evicted_kind).inc()

    def memo(self, kind: str, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``(kind, key)``, computing on miss."""
        mem_key = (kind, key)
        metrics = get_metrics()
        while True:
            with self._lock:
                if mem_key in self._memory:
                    self.stats.record_hit(kind)
                    value = self._memory[mem_key]
                    self._memory.move_to_end(mem_key)
                    hit_level = "memory"
                    break
                event = self._inflight.get(mem_key)
                if event is None:
                    self._inflight[mem_key] = threading.Event()
                    event = None  # we are the leader
            if event is not None:
                # Another thread is computing this artifact; wait for it and
                # re-check.  If the leader failed, its event fires with the
                # key still absent and the loop elects a new leader.
                event.wait()
                continue
            try:
                value = self._load(kind, key)
                if value is not None:
                    with self._lock:
                        self.stats.record_hit(kind)
                        self._memory_put(mem_key, value)
                    metrics.counter("cache_hits", kind=kind, level="disk").inc()
                    return value
                with self._lock:
                    self.stats.record_miss(kind)
                metrics.counter("cache_misses", kind=kind).inc()
                value = compute()
                with self._lock:
                    self._memory_put(mem_key, value)
                self._store(kind, key, value)
                return value
            finally:
                with self._lock:
                    event = self._inflight.pop(mem_key, None)
                if event is not None:
                    event.set()
        metrics.counter("cache_hits", kind=kind, level=hit_level).inc()
        return value

    def contains(self, kind: str, key: str) -> bool:
        if (kind, key) in self._memory:
            return True
        return self.root is not None and self._path(kind, key).exists()

    def stats_snapshot(self) -> CacheStats:
        """A consistent copy of the statistics, safe to take while other
        threads are actively counting into this cache."""
        with self._lock:
            return self.stats.copy()

    # -- disk layer --------------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        assert self.root is not None
        return self.root / kind / f"{key}.pkl"

    #: Everything a torn, truncated, or stale pickle can raise while being
    #: deserialized.  ``ValueError`` covers ``struct.error`` and unicode
    #: decode failures; Index/Key/Type errors come from opcode streams cut
    #: mid-object.  Anything else (e.g. ``MemoryError``) still propagates.
    _TORN_READ_ERRORS = (
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ImportError,
        IndexError,
        KeyError,
        TypeError,
        ValueError,
    )

    def _load(self, kind: str, key: str) -> Optional[Any]:
        if self.root is None:
            return None
        path = self._path(kind, key)
        try:
            with open(path, "rb") as f:
                return pickle.load(f)
        except (FileNotFoundError, NotADirectoryError):
            return None
        except self._TORN_READ_ERRORS + (OSError,):
            # A truncated or stale artifact is a miss, never an error: the
            # recomputation overwrites it atomically below.  It is still an
            # *event* worth surfacing — a persistently corrupting store is a
            # deployment problem the counters make visible.
            with self._lock:
                self.stats.record_corrupt(kind)
            get_metrics().counter("cache_corrupt", kind=kind).inc()
            get_tracer().event("cache.corrupt", kind=kind, path=str(path))
            return None

    def _store(self, kind: str, key: str, value: Any) -> None:
        if self.root is None:
            return
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The temp file lives in the destination directory so the final
        # ``os.replace`` is a same-filesystem atomic rename: a concurrent
        # reader sees either the old complete artifact or the new one,
        # never a partial write.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            # Size from the temp file, not the destination: another writer
            # may replace (or a cleaner unlink) the destination between our
            # rename and a stat of it.
            size = os.path.getsize(tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        with self._lock:
            self.stats.record_store(kind)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("cache_stores", kind=kind).inc()
            metrics.counter("cache_store_bytes", kind=kind).inc(size)
