"""Fan workload × coverage sweep jobs out over a process pool.

The serial evaluation harness recomputes each figure's sweep in one
process; :class:`ParallelDriver` instead treats every ``(workload, CA)``
pair — plus one Table-2 summary per workload — as an independent job.  Jobs
run over :mod:`concurrent.futures` (``jobs > 1``) or inline in a
deterministic serial fallback (``jobs == 1``); either way the results are
assembled in canonical workload/coverage order, so the rendered figure and
table artifacts are byte-identical regardless of the job count or the
completion order.

All numbers flowing through a job are deterministic (counts, cycle costs,
ratios of counts).  Wall-clock analysis time is measured and carried on each
cell for reporting, but deliberately kept out of the rendered artifacts so
they stay comparable across machines and job counts.

With a shared ``cache_dir`` the jobs cooperate through the content-addressed
artifact cache: the first job to need a compiled module or profiling run
persists it, and every other job (and every later session) reuses it —
worker processes additionally keep a per-process run table so a worker that
already built a workload serves all its coverage levels from memory.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..checks.diagnostics import Diagnostic, Diagnostics
from ..evaluation.harness import CA_SWEEP, DEFAULT_CA, DEFAULT_CR, WorkloadRun
from ..evaluation.figures import render_series
from ..evaluation.tables import format_table
from ..obs import (
    MetricsRegistry,
    Tracer,
    diff_snapshots,
    get_metrics,
    get_tracer,
    observability_enabled,
    set_metrics,
    set_tracer,
)
from ..workloads import WORKLOAD_NAMES, get_workload
from .cache import (
    ArtifactCache,
    CacheStats,
    KIND_MODULE,
    KIND_SWEEP_CELL,
    KIND_SWEEP_SUMMARY,
    content_key,
)
from .cached_run import make_run


@dataclass(frozen=True)
class SweepCell:
    """Deterministic metrics for one (workload, coverage) point."""

    workload: str
    ca: float
    cr: float
    #: Figure 9: relative increase in dynamic constant instructions.
    constant_increase: float
    #: Figure 11: (original, traced, reduced) real-vertex totals.
    sizes: tuple[int, int, int]
    #: Table 1: hot paths needed to reach this coverage.
    hot_paths: int
    #: Figure 12 raw material (wall-clock; excluded from rendered artifacts).
    analysis_time: float


@dataclass(frozen=True)
class WorkloadSummary:
    """Per-workload scalars (Table 1 structure, Table 2 costs)."""

    workload: str
    cfg_nodes: int
    executed_paths: int
    hot_paths_default: int
    base_cost: int
    optimized_cost: int

    @property
    def speedup(self) -> float:
        if self.optimized_cost == 0:
            return 1.0
        return self.base_cost / self.optimized_cost


@dataclass
class SweepResult:
    """Everything a figure/table renderer needs, in canonical order."""

    workloads: tuple[str, ...]
    ca_values: tuple[float, ...]
    cr: float
    default_ca: float
    cells: dict[tuple[str, float], SweepCell]
    summaries: dict[str, WorkloadSummary]
    #: Cache statistics merged across all jobs (and worker processes).
    cache_stats: CacheStats = field(default_factory=CacheStats)
    #: Checker findings merged across all jobs (empty unless ``check=True``).
    diagnostics: Diagnostics = field(default_factory=Diagnostics)
    #: Ranked analyzer findings per workload (empty unless ``lint=True``).
    #: Each workload's tuple is computed exactly once — in its summary job —
    #: so the mapping is identical regardless of the pool width.
    lint_findings: dict[str, tuple[Diagnostic, ...]] = field(default_factory=dict)

    # -- renderers ---------------------------------------------------------

    def artifacts(self) -> dict[str, str]:
        """Rendered figure/table texts, keyed by artifact name.

        Byte-identical for identical inputs regardless of ``jobs``: every
        value here is a deterministic function of the workload definitions.
        """
        return {
            "fig9": self._fig9(),
            "fig11": self._fig11(),
            "table1": self._table1(),
            "table2": self._table2(),
        }

    def _ca_headers(self) -> list[str]:
        return [f"CA={ca:g}" for ca in self.ca_values]

    def _fig9(self) -> str:
        series = {
            name: [self.cells[(name, ca)].constant_increase for ca in self.ca_values]
            for name in self.workloads
        }
        rows = [
            [name] + [f"{v:+.1%}" for v in values]
            for name, values in series.items()
        ]
        return (
            format_table(
                ["Program"] + self._ca_headers(),
                rows,
                title=(
                    "Figure 9: increase in dynamic constant instructions vs "
                    "coverage (baseline CA = 0)"
                ),
            )
            + "\n\n"
            + render_series(
                series, [f"{ca:g}" for ca in self.ca_values], title="shape:"
            )
        )

    def _fig11(self) -> str:
        before_rows = []
        after_rows = []
        for name in self.workloads:
            sizes = [self.cells[(name, ca)].sizes for ca in self.ca_values]
            orig = sizes[0][0]
            before_rows.append(
                [name] + [f"{(hpg - orig) / orig:+.0%}" for (_, hpg, _) in sizes]
            )
            after_rows.append(
                [name] + [f"{(red - orig) / orig:+.0%}" for (_, _, red) in sizes]
            )
        header = ["Program"] + self._ca_headers()
        return (
            format_table(
                header,
                before_rows,
                title="Figure 11 (a/c): CFG-node growth BEFORE reduction vs coverage",
            )
            + "\n\n"
            + format_table(
                header,
                after_rows,
                title="Figure 11 (b/d): CFG-node growth AFTER reduction vs coverage",
            )
        )

    def _table1(self) -> str:
        rows = [
            [
                s.workload,
                s.cfg_nodes,
                s.executed_paths,
                s.hot_paths_default,
            ]
            for s in (self.summaries[name] for name in self.workloads)
        ]
        return format_table(
            [
                "Program",
                "CFG nodes",
                "Executed paths",
                f"Hot paths (CA={self.default_ca:g})",
            ],
            rows,
            title="Table 1: workload statistics",
        )

    def _table2(self) -> str:
        rows = [
            [s.workload, s.base_cost, s.optimized_cost, f"{s.speedup:.3f}x"]
            for s in (self.summaries[name] for name in self.workloads)
        ]
        return format_table(
            ["Program", "Base (cycles)", "Optimized (cycles)", "Speedup"],
            rows,
            title="Table 2: running cost after constant propagation (ref input)",
        )


# ---------------------------------------------------------------------------
# job bodies — module level so they pickle into worker processes
# ---------------------------------------------------------------------------

#: Per-process memo of built runs, so a pool worker that already compiled
#: and profiled a workload serves its remaining coverage jobs from memory.
_RUN_TABLE: dict[tuple[str, Optional[str], bool, str, str], WorkloadRun] = {}

#: Per-process shared caches for incremental sweeps, one per
#: (workload, cache_dir), so cell/summary memos and any runs they build
#: count into a single stats stream.
_CACHE_TABLE: dict[tuple[str, Optional[str]], ArtifactCache] = {}


def _obtain_cache(name: str, cache_dir: Optional[str]) -> ArtifactCache:
    key = (name, cache_dir)
    cache = _CACHE_TABLE.get(key)
    if cache is None:
        cache = ArtifactCache(cache_dir)
        _CACHE_TABLE[key] = cache
    return cache


def _obtain_run(
    name: str,
    cache_dir: Optional[str],
    check: bool = False,
    dataflow_engine: str = "auto",
    wz_engine: str = "auto",
    incremental: bool = False,
) -> WorkloadRun:
    key = (name, cache_dir, check, dataflow_engine, wz_engine)
    run = _RUN_TABLE.get(key)
    if run is None:
        store = _obtain_cache(name, cache_dir) if incremental else cache_dir
        run = make_run(
            get_workload(name),
            store,
            check=check,
            dataflow_engine=dataflow_engine,
            wz_engine=wz_engine,
        )
        _RUN_TABLE[key] = run
    return run


def _cell_from_run(run: WorkloadRun, ca: float, cr: float) -> SweepCell:
    return SweepCell(
        workload=run.workload.name,
        ca=ca,
        cr=cr,
        constant_increase=run.aggregate_classification(ca, cr).constant_increase,
        sizes=run.graph_sizes(ca, cr),
        hot_paths=run.hot_path_count(ca),
        analysis_time=run.analysis_time(ca, cr),
    )


def _summary_from_run(
    run: WorkloadRun, default_ca: float, cr: float
) -> WorkloadSummary:
    row = run.table2(default_ca, cr)
    return WorkloadSummary(
        workload=run.workload.name,
        cfg_nodes=run.cfg_nodes,
        executed_paths=run.executed_paths,
        hot_paths_default=run.hot_path_count(default_ca),
        base_cost=row.base_cost,
        optimized_cost=row.optimized_cost,
    )


def _stats_of(run: WorkloadRun) -> CacheStats:
    cache = getattr(run, "cache", None)
    return cache.stats if isinstance(cache, ArtifactCache) else CacheStats()


# -- worker-side observability ----------------------------------------------
#
# When the submitting process has observability on, each job carries an
# ``obs`` flag; the first flagged job a worker sees installs enabled
# process-global tracer/registry instances.  Every job then ships back the
# spans finished and the metric *deltas* accumulated since the previous job
# in that worker, so the parent can fold them in without double counting.

#: Metric snapshot already reported back by this worker process.
_WORKER_OBS_BASE: Optional[dict] = None


def _ensure_worker_obs(enabled: bool) -> bool:
    """Install enabled obs globals in this worker, once.  Returns whether
    worker-side observability is active."""
    global _WORKER_OBS_BASE
    if not enabled:
        return observability_enabled()
    if not get_tracer().enabled:
        set_tracer(Tracer())
    if not get_metrics().enabled:
        set_metrics(MetricsRegistry())
    if _WORKER_OBS_BASE is None:
        _WORKER_OBS_BASE = get_metrics().snapshot()
    return True


def _obs_delta(active: bool) -> Optional[tuple[list[dict], dict]]:
    """This job's span records and metric-snapshot delta, or ``None`` when
    worker-side observability is off."""
    global _WORKER_OBS_BASE
    if not active:
        return None
    records = get_tracer().drain_records()
    current = get_metrics().snapshot()
    delta = diff_snapshots(current, _WORKER_OBS_BASE or {})
    _WORKER_OBS_BASE = current
    return records, delta


#: Per-process snapshot of stats already reported back by earlier jobs, so a
#: worker serving several jobs for one workload never double-reports counts.
_REPORTED: dict[tuple[str, Optional[str]], CacheStats] = {}


def _stats_delta(
    name: str, cache_dir: Optional[str], current: CacheStats
) -> CacheStats:
    key = (name, cache_dir)
    delta = current.diff(_REPORTED.get(key, CacheStats()))
    _REPORTED[key] = current.copy()
    return delta


#: Checker findings already shipped back by this worker, per run key, so a
#: worker serving several jobs for one workload reports each finding once.
_DIAG_REPORTED: dict[tuple[str, Optional[str]], int] = {}


def _diag_delta(
    name: str, cache_dir: Optional[str], run: Optional[WorkloadRun]
) -> list[dict]:
    if run is None:
        # Incremental sweeps serve warm cells without ever building the
        # run, so there is no checker to report from (see INCREMENTAL.md).
        return []
    key = (name, cache_dir)
    records = run.checker.diagnostics.records
    start = _DIAG_REPORTED.get(key, 0)
    _DIAG_REPORTED[key] = len(records)
    return [d.to_dict() for d in records[start:]]


# -- incremental sweep memos -------------------------------------------------
#
# With ``incremental=True`` the driver memoizes whole cells and summaries in
# the artifact cache, keyed by the workload's *module fingerprint* (lowered
# IR content) plus its data sets and the sweep configuration.  After an
# edit, only the cells of workloads whose function set changed miss; warm
# cells are served without compiling, profiling, or analyzing anything —
# the memoized values are deterministic functions of the key, except the
# carried wall-clock ``analysis_time``, which rendered artifacts already
# exclude.  Warm cells also skip checker re-runs (their artifacts were
# checked when first computed).


def _workload_module_fp(name: str, cache: ArtifactCache) -> str:
    from ..frontend.fingerprint import module_fingerprint
    from ..frontend.lower import compile_program

    w = get_workload(name)
    module = cache.memo(
        KIND_MODULE,
        content_key("module", w.source),
        lambda: compile_program(w.source),
    )
    return module_fingerprint(module)


def _workload_data_part(name: str) -> list:
    w = get_workload(name)
    return [
        list(w.train_args),
        {k: list(v) for k, v in w.train_inputs.items()},
        list(w.ref_args),
        {k: list(v) for k, v in w.ref_inputs.items()},
    ]


def _incremental_cell(
    name: str,
    ca: float,
    cr: float,
    cache_dir: Optional[str],
    check: bool,
    dataflow_engine: str,
    wz_engine: str,
) -> tuple[SweepCell, Optional[WorkloadRun]]:
    cache = _obtain_cache(name, cache_dir)
    key = content_key(
        "sweep-cell",
        _workload_module_fp(name, cache),
        _workload_data_part(name),
        ca,
        cr,
        dataflow_engine,
        wz_engine,
    )
    cell = cache.memo(
        KIND_SWEEP_CELL,
        key,
        lambda: _cell_from_run(
            _obtain_run(
                name, cache_dir, check, dataflow_engine, wz_engine,
                incremental=True,
            ),
            ca,
            cr,
        ),
    )
    return cell, _RUN_TABLE.get((name, cache_dir, check, dataflow_engine, wz_engine))


def _incremental_summary(
    name: str,
    default_ca: float,
    cr: float,
    cache_dir: Optional[str],
    check: bool,
    dataflow_engine: str,
    wz_engine: str,
    lint: bool,
    min_mass: Optional[float],
) -> tuple[WorkloadSummary, Optional[list], Optional[WorkloadRun]]:
    cache = _obtain_cache(name, cache_dir)
    key = content_key(
        "sweep-summary",
        _workload_module_fp(name, cache),
        _workload_data_part(name),
        default_ca,
        cr,
        dataflow_engine,
        wz_engine,
        bool(lint),
        min_mass,
    )

    def compute():
        run = _obtain_run(
            name, cache_dir, check, dataflow_engine, wz_engine,
            incremental=True,
        )
        summary = _summary_from_run(run, default_ca, cr)
        lint_dicts = (
            [d.to_dict() for d in run.lint(default_ca, cr, min_mass)]
            if lint
            else None
        )
        return summary, lint_dicts

    summary, lint_dicts = cache.memo(KIND_SWEEP_SUMMARY, key, compute)
    return (
        summary,
        lint_dicts,
        _RUN_TABLE.get((name, cache_dir, check, dataflow_engine, wz_engine)),
    )


def _cell_job(
    name: str,
    ca: float,
    cr: float,
    cache_dir: Optional[str],
    obs: bool = False,
    check: bool = False,
    dataflow_engine: str = "auto",
    wz_engine: str = "auto",
    incremental: bool = False,
) -> tuple:
    active = _ensure_worker_obs(obs)
    with get_tracer().span("driver.cell", workload=name, ca=ca):
        if incremental:
            cell, run = _incremental_cell(
                name, ca, cr, cache_dir, check, dataflow_engine, wz_engine
            )
            stats = _obtain_cache(name, cache_dir).stats
        else:
            run = _obtain_run(name, cache_dir, check, dataflow_engine, wz_engine)
            cell = _cell_from_run(run, ca, cr)
            stats = _stats_of(run)
    return (
        "cell",
        name,
        ca,
        cell,
        _stats_delta(name, cache_dir, stats),
        _diag_delta(name, cache_dir, run),
        _obs_delta(active),
    )


def _summary_job(
    name: str,
    default_ca: float,
    cr: float,
    cache_dir: Optional[str],
    obs: bool = False,
    check: bool = False,
    dataflow_engine: str = "auto",
    wz_engine: str = "auto",
    lint: bool = False,
    min_mass: Optional[float] = None,
    incremental: bool = False,
) -> tuple:
    active = _ensure_worker_obs(obs)
    with get_tracer().span("driver.summary", workload=name):
        if incremental:
            summary, lint_dicts, run = _incremental_summary(
                name, default_ca, cr, cache_dir, check,
                dataflow_engine, wz_engine, lint, min_mass,
            )
            stats = _obtain_cache(name, cache_dir).stats
        else:
            run = _obtain_run(name, cache_dir, check, dataflow_engine, wz_engine)
            summary = _summary_from_run(run, default_ca, cr)
            # Analyzer findings ride on the summary job (exactly one per
            # workload), shipped as dicts across the process boundary; the
            # parent's mapping is therefore the same for any pool width.
            lint_dicts = None
            if lint:
                lint_dicts = [
                    d.to_dict() for d in run.lint(default_ca, cr, min_mass)
                ]
            stats = _stats_of(run)
    return (
        "summary",
        name,
        summary,
        _stats_delta(name, cache_dir, stats),
        _diag_delta(name, cache_dir, run),
        _obs_delta(active),
        lint_dicts,
    )


def _suite_cell_job(
    target: str,
    instance_name: str,
    cache_dir: Optional[str],
    archive_dir: Optional[str],
    obs: bool = False,
    wz_engine: Optional[str] = None,
):
    """One workload-matrix cell, shipped to a pool worker by name.

    Targets and instances cross the process boundary as strings and are
    resolved worker-side (generated targets re-derive deterministically from
    their spec), mirroring the workload-name convention of :func:`_cell_job`.
    ``wz_engine``, when given, overrides the resolved instance's
    Wegman-Zadek engine (the ``suite --wz-engine`` flag).
    """
    from dataclasses import replace

    from ..workloads.matrix import resolve_instance, run_cell

    active = _ensure_worker_obs(obs)
    instance = resolve_instance(instance_name)
    if wz_engine is not None:
        instance = replace(instance, wz_engine=wz_engine)
    with get_tracer().span(
        "driver.suite_cell", target=target, instance=instance_name
    ):
        cell = run_cell(target, instance, cache_dir, archive_dir)
    return target, instance_name, cell, _obs_delta(active)


class ParallelDriver:
    """Runs coverage sweeps serially or over a process pool.

    ``jobs == 1`` is the deterministic in-process fallback; ``jobs > 1``
    fans out over :class:`concurrent.futures.ProcessPoolExecutor`.  Both
    paths produce identical :class:`SweepResult` values (and therefore
    byte-identical :meth:`SweepResult.artifacts`).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Union[str, None] = None,
        cr: float = DEFAULT_CR,
        default_ca: float = DEFAULT_CA,
        check: bool = False,
        dataflow_engine: str = "auto",
        wz_engine: str = "auto",
        lint: bool = False,
        min_mass: Optional[float] = None,
        incremental: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.cr = cr
        self.default_ca = default_ca
        #: Verify every pipeline stage of every job (SweepResult.diagnostics).
        self.check = check
        #: Dataflow solver engine for every job's analyses.
        self.dataflow_engine = dataflow_engine
        #: Wegman-Zadek engine for every job's conditional-constant runs.
        self.wz_engine = wz_engine
        #: Run the profile-qualified analyzer once per workload
        #: (SweepResult.lint_findings).
        self.lint = lint
        #: Analyzer mass threshold (``None`` = the analyzer default).
        self.min_mass = min_mass
        #: Memoize whole sweep cells/summaries by module fingerprint: after
        #: an edit, only cells whose workload's function set changed re-run.
        #: Warm cells skip checker re-runs (artifacts were checked when
        #: first computed) — see ``docs/INCREMENTAL.md``.
        self.incremental = incremental

    def sweep(
        self,
        workloads: Sequence[str] = WORKLOAD_NAMES,
        ca_values: Sequence[float] = CA_SWEEP,
    ) -> SweepResult:
        workloads = tuple(workloads)
        ca_values = tuple(ca_values)
        result = SweepResult(
            workloads=workloads,
            ca_values=ca_values,
            cr=self.cr,
            default_ca=self.default_ca,
            cells={},
            summaries={},
        )
        with get_tracer().span(
            "driver.sweep",
            workloads=len(workloads),
            ca_values=len(ca_values),
            jobs=self.jobs,
        ):
            if self.jobs == 1:
                self._sweep_serial(result)
            else:
                self._sweep_parallel(result)
        missing = [
            (name, ca)
            for name in workloads
            for ca in ca_values
            if (name, ca) not in result.cells
        ]
        if missing or set(result.summaries) != set(workloads):
            raise RuntimeError(f"sweep incomplete: missing {missing}")
        return result

    def suite(
        self,
        targets: Sequence[str],
        instances: Sequence[str],
        archive_dir: Optional[str] = None,
        wz_engine: Optional[str] = None,
    ):
        """Run the workload matrix (:mod:`repro.workloads.matrix`) over the
        driver's pool.

        ``jobs == 1`` delegates to the serial :func:`run_suite` reference
        path; ``jobs > 1`` fans each (target, instance) cell out as its own
        process-pool job.  Both produce identical
        :class:`~repro.workloads.matrix.MatrixResult` values — cells are
        deterministic and the archive is content-addressed, so concurrent
        writers agree.  ``wz_engine``, when given, overrides every
        instance's Wegman-Zadek engine (and hence the cell keys).
        """
        from dataclasses import replace

        from ..workloads.matrix import (
            MatrixResult,
            resolve_instances,
            run_suite,
        )

        insts = resolve_instances(instances)
        if wz_engine is not None:
            insts = tuple(replace(i, wz_engine=wz_engine) for i in insts)
        if self.jobs == 1:
            return run_suite(targets, insts, self.cache_dir, archive_dir)
        result = MatrixResult(
            targets=tuple(targets),
            instances=tuple(i.name for i in insts),
        )
        tracer = get_tracer()
        obs = observability_enabled()
        with tracer.span(
            "suite.run",
            targets=len(result.targets),
            instances=len(result.instances),
            jobs=self.jobs,
        ) as span:
            parent_id = span.span_id if span is not None else None
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs
            ) as pool:
                futures = [
                    pool.submit(
                        _suite_cell_job, target, name, self.cache_dir,
                        archive_dir, obs, wz_engine,
                    )
                    for target in result.targets
                    for name in result.instances
                ]
                for future in concurrent.futures.as_completed(futures):
                    target, name, cell, obs_payload = future.result()
                    result.cells[(target, name)] = cell
                    if obs_payload is not None:
                        records, metric_delta = obs_payload
                        if tracer.enabled:
                            tracer.absorb_records(records, parent_id=parent_id)
                        metrics = get_metrics()
                        if metrics.enabled:
                            metrics.merge_snapshot(metric_delta)
        missing = [
            (t, i)
            for t in result.targets
            for i in result.instances
            if (t, i) not in result.cells
        ]
        if missing:
            raise RuntimeError(f"suite incomplete: missing {missing}")
        return result

    # -- serial fallback ---------------------------------------------------

    def _sweep_serial(self, result: SweepResult) -> None:
        if self.incremental:
            self._sweep_serial_incremental(result)
            return
        for name in result.workloads:
            with get_tracer().span("driver.workload", workload=name):
                run = make_run(
                    get_workload(name),
                    self.cache_dir,
                    check=self.check,
                    dataflow_engine=self.dataflow_engine,
                    wz_engine=self.wz_engine,
                )
                for ca in result.ca_values:
                    result.cells[(name, ca)] = _cell_from_run(run, ca, self.cr)
                result.summaries[name] = _summary_from_run(
                    run, self.default_ca, self.cr
                )
                if self.lint:
                    result.lint_findings[name] = tuple(
                        run.lint(self.default_ca, self.cr, self.min_mass)
                    )
            result.cache_stats.merge(_stats_of(run))
            result.diagnostics.extend(run.checker.diagnostics)

    def _sweep_serial_incremental(self, result: SweepResult) -> None:
        """Serial sweep over the per-workload cell/summary memos.

        Stats and diagnostics are reported as *deltas* (like pool workers)
        because the per-process cache and run tables persist across sweeps
        — a second sweep in the same process must not re-report them.
        """
        for name in result.workloads:
            with get_tracer().span("driver.workload", workload=name):
                run = None
                for ca in result.ca_values:
                    cell, run = _incremental_cell(
                        name, ca, self.cr, self.cache_dir, self.check,
                        self.dataflow_engine, self.wz_engine,
                    )
                    result.cells[(name, ca)] = cell
                summary, lint_dicts, run = _incremental_summary(
                    name, self.default_ca, self.cr, self.cache_dir,
                    self.check, self.dataflow_engine, self.wz_engine,
                    self.lint, self.min_mass,
                )
                result.summaries[name] = summary
                if lint_dicts is not None:
                    result.lint_findings[name] = tuple(
                        Diagnostic.from_dict(d) for d in lint_dicts
                    )
            stats = _obtain_cache(name, self.cache_dir).stats
            result.cache_stats.merge(_stats_delta(name, self.cache_dir, stats))
            for d in Diagnostics.from_dicts(
                _diag_delta(name, self.cache_dir, run)
            ):
                result.diagnostics.add(d)

    # -- process-pool fan-out ----------------------------------------------

    def _sweep_parallel(self, result: SweepResult) -> None:
        tracer = get_tracer()
        obs = observability_enabled()
        sweep_span = tracer.current()
        parent_id = sweep_span.span_id if sweep_span is not None else None
        # Several workers may independently build (and check) the same
        # workload; identical findings are merged once.
        seen_diags: set = set(result.diagnostics.records)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.jobs
        ) as pool:
            futures = [
                pool.submit(
                    _cell_job, name, ca, self.cr, self.cache_dir, obs,
                    self.check, self.dataflow_engine, self.wz_engine,
                    self.incremental,
                )
                for name in result.workloads
                for ca in result.ca_values
            ]
            futures += [
                pool.submit(
                    _summary_job,
                    name,
                    self.default_ca,
                    self.cr,
                    self.cache_dir,
                    obs,
                    self.check,
                    self.dataflow_engine,
                    self.wz_engine,
                    self.lint,
                    self.min_mass,
                    self.incremental,
                )
                for name in result.workloads
            ]
            for future in concurrent.futures.as_completed(futures):
                payload = future.result()
                if payload[0] == "cell":
                    _, name, ca, cell, stats, diags, obs_payload = payload
                    result.cells[(name, ca)] = cell
                else:
                    _, name, summary, stats, diags, obs_payload, lint_dicts = payload
                    result.summaries[name] = summary
                    if lint_dicts is not None:
                        result.lint_findings[name] = tuple(
                            Diagnostic.from_dict(d) for d in lint_dicts
                        )
                result.cache_stats.merge(stats)
                for d in Diagnostics.from_dicts(diags):
                    if d not in seen_diags:
                        seen_diags.add(d)
                        result.diagnostics.add(d)
                if obs_payload is not None:
                    records, metric_delta = obs_payload
                    if tracer.enabled:
                        tracer.absorb_records(records, parent_id=parent_id)
                    metrics = get_metrics()
                    if metrics.enabled:
                        metrics.merge_snapshot(metric_delta)
