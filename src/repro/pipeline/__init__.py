"""Parallel, cached analysis pipeline.

The production-facing layer over the evaluation harness: a content-addressed
:class:`ArtifactCache` that memoizes compiled modules, profiling runs, and
qualified-analysis bundles across coverage sweeps / processes / sessions,
and a :class:`ParallelDriver` that fans workload × coverage jobs over a
process pool with a deterministic serial fallback.  See ``docs/PIPELINE.md``.
"""

from .cache import (
    ArtifactCache,
    CacheStats,
    COMPILE_PROFILE_KINDS,
    KIND_MODULE,
    KIND_QUALIFIED,
    KIND_REF_RUN,
    KIND_TRAIN_RUN,
    SCHEMA_VERSION,
    content_key,
)
from .cached_run import CachedWorkloadRun, make_run
from .driver import ParallelDriver, SweepCell, SweepResult, WorkloadSummary

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "CachedWorkloadRun",
    "COMPILE_PROFILE_KINDS",
    "content_key",
    "KIND_MODULE",
    "KIND_QUALIFIED",
    "KIND_REF_RUN",
    "KIND_TRAIN_RUN",
    "make_run",
    "ParallelDriver",
    "SCHEMA_VERSION",
    "SweepCell",
    "SweepResult",
    "WorkloadSummary",
]
