"""Parallel, cached analysis pipeline.

The production-facing layer over the evaluation harness: a content-addressed
:class:`ArtifactCache` that memoizes compiled modules, profiling runs, and
per-function qualified/lint artifacts across coverage sweeps / processes /
sessions, a :class:`ParallelDriver` that fans workload × coverage jobs over
a process pool with a deterministic serial fallback, and an
:class:`IncrementalSession` that re-analyzes only the functions a source
edit touched and reports the differences.  See ``docs/PIPELINE.md`` and
``docs/INCREMENTAL.md``.
"""

from .cache import (
    ArtifactCache,
    CacheStats,
    COMPILE_PROFILE_KINDS,
    DEFAULT_MEMORY_ENTRIES,
    KIND_LINT,
    KIND_MODULE,
    KIND_QUALIFIED,
    KIND_REF_RUN,
    KIND_SWEEP_CELL,
    KIND_SWEEP_SUMMARY,
    KIND_TRAIN_RUN,
    SCHEMA_VERSION,
    content_key,
)
from .cached_run import (
    CachedWorkloadRun,
    lint_function_key,
    make_run,
    qualified_function_key,
)
from .driver import ParallelDriver, SweepCell, SweepResult, WorkloadSummary
from .incremental import (
    DIFF_SCHEMA,
    IncrementalSession,
    diff_workloads,
    edited_workload,
    render_diff_text,
    seeded_edit,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "CachedWorkloadRun",
    "COMPILE_PROFILE_KINDS",
    "content_key",
    "DEFAULT_MEMORY_ENTRIES",
    "DIFF_SCHEMA",
    "diff_workloads",
    "edited_workload",
    "IncrementalSession",
    "KIND_LINT",
    "KIND_MODULE",
    "KIND_QUALIFIED",
    "KIND_REF_RUN",
    "KIND_SWEEP_CELL",
    "KIND_SWEEP_SUMMARY",
    "KIND_TRAIN_RUN",
    "lint_function_key",
    "make_run",
    "ParallelDriver",
    "qualified_function_key",
    "render_diff_text",
    "SCHEMA_VERSION",
    "seeded_edit",
    "SweepCell",
    "SweepResult",
    "WorkloadSummary",
]
