"""Function-granular incremental re-analysis with differential reports.

An :class:`IncrementalSession` takes two versions of one workload (old
source → new source), runs both through a shared :class:`ArtifactCache`,
and reports what the edit actually cost and actually changed:

* a **per-function ledger** — for each function in the new program,
  whether its qualified pipeline and lint artifacts were served warm
  (``"hit"``: same cache key as the old version) or recomputed
  (``"recompute"``: the edit changed the function's IR or its training
  profile);
* **finding deltas** — new / fixed / unchanged lint findings, partitioned
  through the analyzer's content-addressed baseline machinery so the
  identity notion matches ``--fail-on-new`` CI gating exactly;
* **diagnostic deltas** — the same partition over pipeline-checker
  diagnostics when ``check=True``;
* **sharpening deltas** — per-function qualified-vs-iterative non-local
  constant counts, old vs. new, for every function whose numbers moved.

Everything outside the ``timings`` key is a deterministic function of
(old workload, new workload, configuration): the ledger is computed from
cache-*key* equality, not from observed cache traffic, so the daemon's
``/v1/diff`` is bit-identical to a direct CLI ``repro diff`` regardless
of what either cache already holds (the same contract ``/v1/lint``
keeps).  Observed cache counters live under ``timings`` with the
wall-clock numbers.

The per-function granularity comes from :mod:`repro.pipeline.cached_run`:
qualified and lint artifacts key on ``(function fingerprint, profile
fingerprint, CA, CR, engines)``, so an edit to ``f`` leaves ``g``'s
automata, hot-path graphs, and qualified dataflow warm — unless the edit
changed ``g``'s *profile* (e.g. ``f`` now calls ``g`` differently), in
which case ``g`` correctly re-analyzes and the ledger says so.
"""

from __future__ import annotations

import re
import time
from typing import Mapping, Optional

from ..checks.diagnostics import Diagnostic
from ..evaluation.harness import DEFAULT_CA, DEFAULT_CR, Workload
from ..frontend.fingerprint import changed_functions
from ..obs import get_tracer
from .cache import ArtifactCache, CacheStats, content_key
from .cached_run import (
    CachedWorkloadRun,
    lint_function_key,
    make_run,
    qualified_function_key,
)

#: Version of the differential report payload.
DIFF_SCHEMA = 1

HIT = "hit"
RECOMPUTE = "recompute"


def seeded_edit(source: str, function: Optional[str] = None) -> str:
    """A deterministic one-function edit: the benchmark / smoke workload.

    Injects a local variable declaration at the top of ``function``'s body
    (the first function in the program when unnamed).  The declaration
    changes that function's lowered IR — so its fingerprint, qualified
    pipeline, and lint re-key — without touching control flow, which keeps
    every routine's training profile (and therefore every *other*
    function's cache keys) unchanged.  This is the worst-case-cheapest
    edit: exactly one function should recompute.
    """
    if function is None:
        pattern = r"func\s+(\w+)\s*\([^)]*\)\s*\{"
    else:
        pattern = rf"func\s+({re.escape(function)})\s*\([^)]*\)\s*\{{"
    match = re.search(pattern, source)
    if match is None:
        target = function or "<first function>"
        raise ValueError(f"seeded_edit: no function header for {target!r}")
    at = match.end()
    return source[:at] + " var __incremental_edit = 1;" + source[at:]


def edited_workload(workload: Workload, function: Optional[str] = None) -> Workload:
    """The workload with :func:`seeded_edit` applied to its source."""
    return Workload(
        name=workload.name,
        source=seeded_edit(workload.source, function),
        train_args=workload.train_args,
        train_inputs=workload.train_inputs,
        ref_args=workload.ref_args,
        ref_inputs=workload.ref_inputs,
        description=workload.description,
    )


def _diag_identity(diag: Diagnostic) -> tuple:
    """The stable identity used to match diagnostics across versions —
    the same fields the lint baseline fingerprints hash."""
    return (diag.code, diag.function, diag.block, diag.instr, diag.message)


def _stats_dict(stats: CacheStats) -> dict:
    return {
        name: dict(sorted(getattr(stats, name).items()))
        for name in ("hits", "misses", "stores", "corrupt", "evictions")
    }


class IncrementalSession:
    """One old→new re-analysis over a shared artifact cache.

    The session runs the *old* version first (priming or reusing the
    cache), then the *new* version — whose unchanged functions are served
    warm — and assembles the differential report.  Build it, then call
    :meth:`report`.
    """

    def __init__(
        self,
        old: Workload,
        new: Workload,
        cache=None,
        *,
        ca: float = DEFAULT_CA,
        cr: float = DEFAULT_CR,
        min_mass: Optional[float] = None,
        engine: str = "compiled",
        check: bool = False,
        dataflow_engine: str = "auto",
        wz_engine: str = "auto",
    ) -> None:
        from ..analyze.passes import DEFAULT_MIN_MASS

        self.old_workload = old
        self.new_workload = new
        self.cache = (
            cache if isinstance(cache, ArtifactCache) else ArtifactCache(cache)
        )
        self.ca = ca
        self.cr = cr
        self.min_mass = DEFAULT_MIN_MASS if min_mass is None else min_mass
        self.engine = engine
        self.check = check
        self.dataflow_engine = dataflow_engine
        self.wz_engine = wz_engine
        self.old_run: Optional[CachedWorkloadRun] = None
        self.new_run: Optional[CachedWorkloadRun] = None
        self._report: Optional[dict] = None

    # -- runs --------------------------------------------------------------

    def _build_run(self, workload: Workload) -> CachedWorkloadRun:
        run = make_run(
            workload,
            self.cache,
            engine=self.engine,
            check=self.check,
            dataflow_engine=self.dataflow_engine,
            wz_engine=self.wz_engine,
        )
        # Drive the full pipeline so checker hooks fire and artifacts land.
        run.qualified(self.ca, self.cr)
        run.lint(self.ca, self.cr, self.min_mass)
        run.classification(self.ca, self.cr)
        return run

    # -- report sections ---------------------------------------------------

    def _fn_keys(self, run: CachedWorkloadRun, name: str) -> tuple[str, str]:
        """(qualified key, lint key) of one function in one run."""
        fp = run.function_fingerprints()[name]
        pfp = run.profile_fingerprint(name)
        return (
            qualified_function_key(
                fp, pfp, self.ca, self.cr, self.dataflow_engine, self.wz_engine
            ),
            lint_function_key(
                fp,
                pfp,
                self.ca,
                self.cr,
                self.min_mass,
                self.dataflow_engine,
                self.wz_engine,
            ),
        )

    def _ledger(self) -> dict:
        """Per-function and per-stage hit/recompute, by cache-*key* equality.

        A function "hits" when its new key equals its old key — i.e. the
        artifact the new run needs is the artifact the old run produced.
        This is a deterministic property of the two program versions, so
        the ledger is comparable across daemon and CLI executions.
        """
        old, new = self.old_run, self.new_run
        stages = {
            "module": HIT
            if self.old_workload.source == self.new_workload.source
            else RECOMPUTE,
            "train": HIT
            if content_key(
                "train",
                old.module_fingerprint(),
                list(self.old_workload.train_args),
                {k: list(v) for k, v in self.old_workload.train_inputs.items()},
            )
            == content_key(
                "train",
                new.module_fingerprint(),
                list(self.new_workload.train_args),
                {k: list(v) for k, v in self.new_workload.train_inputs.items()},
            )
            else RECOMPUTE,
            "ref": HIT
            if content_key(
                "ref",
                old.module_fingerprint(),
                list(self.old_workload.ref_args),
                {k: list(v) for k, v in self.old_workload.ref_inputs.items()},
            )
            == content_key(
                "ref",
                new.module_fingerprint(),
                list(self.new_workload.ref_args),
                {k: list(v) for k, v in self.new_workload.ref_inputs.items()},
            )
            else RECOMPUTE,
        }
        functions = {}
        old_names = set(old.module.functions)
        for name in new.module.functions:
            if name in old_names:
                old_q, old_l = self._fn_keys(old, name)
                new_q, new_l = self._fn_keys(new, name)
                functions[name] = {
                    "qualified": HIT if new_q == old_q else RECOMPUTE,
                    "lint": HIT if new_l == old_l else RECOMPUTE,
                }
            else:
                functions[name] = {"qualified": RECOMPUTE, "lint": RECOMPUTE}
        return {"stages": stages, "functions": functions}

    def _finding_deltas(self) -> dict:
        # Imported lazily: repro.analyze imports the pipeline package, so a
        # top-level import here would be circular.
        from ..analyze.baseline import baseline_of, partition

        target = self.new_workload.name
        old_pairs = [(target, d) for d in self.old_run.lint(self.ca, self.cr, self.min_mass)]
        new_pairs = [(target, d) for d in self.new_run.lint(self.ca, self.cr, self.min_mass)]
        fresh, unchanged = partition(new_pairs, baseline_of(old_pairs))
        fixed, _ = partition(old_pairs, baseline_of(new_pairs))
        return {
            "new": [d.to_dict() for _, d in fresh],
            "fixed": [d.to_dict() for _, d in fixed],
            "unchanged": [d.to_dict() for _, d in unchanged],
        }

    def _diagnostic_deltas(self) -> dict:
        old_records = tuple(self.old_run.checker.diagnostics.records)
        new_records = tuple(self.new_run.checker.diagnostics.records)
        old_ids = {_diag_identity(d) for d in old_records}
        new_ids = {_diag_identity(d) for d in new_records}
        return {
            "new": [
                d.to_dict() for d in new_records if _diag_identity(d) not in old_ids
            ],
            "fixed": [
                d.to_dict() for d in old_records if _diag_identity(d) not in new_ids
            ],
            "unchanged": [
                d.to_dict() for d in new_records if _diag_identity(d) in old_ids
            ],
        }

    def _sharpening_deltas(self) -> dict:
        """Per-function qualified-vs-iterative movement, only where it moved."""
        old_cls = self.old_run.classification(self.ca, self.cr)
        new_cls = self.new_run.classification(self.ca, self.cr)
        out = {}
        for name in sorted(set(old_cls) & set(new_cls)):
            o, n = old_cls[name], new_cls[name]
            if (o.iterative_nonlocal, o.qualified_nonlocal) == (
                n.iterative_nonlocal,
                n.qualified_nonlocal,
            ):
                continue
            out[name] = {
                "iterative_nonlocal": {
                    "old": o.iterative_nonlocal,
                    "new": n.iterative_nonlocal,
                },
                "qualified_nonlocal": {
                    "old": o.qualified_nonlocal,
                    "new": n.qualified_nonlocal,
                },
            }
        return out

    # -- entry point -------------------------------------------------------

    def report(self) -> dict:
        """Run both versions and assemble the differential report."""
        if self._report is not None:
            return self._report
        tracer = get_tracer()
        before = self.cache.stats_snapshot()
        with tracer.span("incremental.old", workload=self.old_workload.name):
            t0 = time.perf_counter()
            self.old_run = self._build_run(self.old_workload)
            old_s = time.perf_counter() - t0
        with tracer.span("incremental.new", workload=self.new_workload.name):
            t0 = time.perf_counter()
            self.new_run = self._build_run(self.new_workload)
            new_s = time.perf_counter() - t0
        changed, added, removed, unchanged = changed_functions(
            self.old_run.module, self.new_run.module
        )
        report = {
            "schema": DIFF_SCHEMA,
            "workload": self.new_workload.name,
            "config": {
                "ca": self.ca,
                "cr": self.cr,
                "min_mass": self.min_mass,
                "engine": self.engine,
                "check": self.check,
                "dataflow_engine": self.dataflow_engine,
                "wz_engine": self.wz_engine,
            },
            "functions": {
                "changed": list(changed),
                "added": list(added),
                "removed": list(removed),
                "unchanged": list(unchanged),
            },
            "ledger": self._ledger(),
            "findings": self._finding_deltas(),
            "diagnostics": self._diagnostic_deltas(),
            "sharpening": self._sharpening_deltas(),
            # The only non-deterministic section (stripped by
            # ``comparable_payload``): wall clock plus the *observed* cache
            # traffic this session generated.
            "timings": {
                "old_s": old_s,
                "new_s": new_s,
                "cache": _stats_dict(
                    self.cache.stats_snapshot().diff(before)
                ),
            },
        }
        self._report = report
        return report


def diff_workloads(
    old: Workload,
    new: Workload,
    cache=None,
    **config,
) -> dict:
    """One-shot :class:`IncrementalSession` convenience wrapper."""
    return IncrementalSession(old, new, cache, **config).report()


def render_diff_text(report: Mapping) -> str:
    """A human-readable rendering of a differential report."""
    lines = [f"incremental diff: {report['workload']}"]
    fns = report["functions"]
    lines.append(
        "functions: "
        f"{len(fns['changed'])} changed, {len(fns['added'])} added, "
        f"{len(fns['removed'])} removed, {len(fns['unchanged'])} unchanged"
    )
    for label in ("changed", "added", "removed"):
        if fns[label]:
            lines.append(f"  {label}: {', '.join(fns[label])}")
    ledger = report["ledger"]
    stage_bits = ", ".join(
        f"{stage}={state}" for stage, state in ledger["stages"].items()
    )
    lines.append(f"stages: {stage_bits}")
    recomputed = sorted(
        name
        for name, states in ledger["functions"].items()
        if RECOMPUTE in states.values()
    )
    warm = len(ledger["functions"]) - len(recomputed)
    lines.append(
        f"ledger: {warm} function(s) warm, {len(recomputed)} recomputed"
        + (f" ({', '.join(recomputed)})" if recomputed else "")
    )
    findings = report["findings"]
    lines.append(
        "findings: "
        f"{len(findings['new'])} new, {len(findings['fixed'])} fixed, "
        f"{len(findings['unchanged'])} unchanged"
    )
    for kind, sign in (("new", "+"), ("fixed", "-")):
        for d in findings[kind]:
            where = d.get("function") or "?"
            block = d.get("block")
            loc = f"{where}:{block}" if block else where
            lines.append(f"  {sign} {d['code']} {loc}: {d['message']}")
    diags = report.get("diagnostics", {})
    if diags.get("new") or diags.get("fixed"):
        lines.append(
            "checker diagnostics: "
            f"{len(diags['new'])} new, {len(diags['fixed'])} fixed"
        )
    sharp = report.get("sharpening", {})
    for name, delta in sharp.items():
        q = delta["qualified_nonlocal"]
        i = delta["iterative_nonlocal"]
        lines.append(
            f"sharpening {name}: qualified {q['old']} -> {q['new']}, "
            f"iterative {i['old']} -> {i['new']}"
        )
    timings = report.get("timings")
    if timings:
        lines.append(
            f"time: old {timings['old_s']:.3f}s, new {timings['new_s']:.3f}s"
        )
    return "\n".join(lines)


__all__ = [
    "DIFF_SCHEMA",
    "HIT",
    "RECOMPUTE",
    "IncrementalSession",
    "diff_workloads",
    "edited_workload",
    "render_diff_text",
    "seeded_edit",
]
