"""A :class:`~repro.evaluation.harness.WorkloadRun` backed by the artifact
cache.

Key derivation (see ``docs/PIPELINE.md`` for the full rules):

* compiled module — hash of the MiniC source text alone;
* train / ref profiling runs — hash of (source, args, input arrays), so a
  new data set re-profiles but a new coverage level does not;
* qualified pipelines — hash of (source, canonical *profile fingerprint*,
  CA, CR): the derived artifacts depend on the training profile's content,
  not on how it was collected, so any run reproducing the same profile
  shares the automata and hot-path graphs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.qualified import QualifiedAnalysis
from ..evaluation.harness import Workload, WorkloadRun
from ..interp.interpreter import RunResult
from ..ir.function import Module
from ..obs import get_tracer
from ..profiles.serialize import fingerprint_profiles
from .cache import (
    ArtifactCache,
    KIND_LINT,
    KIND_MODULE,
    KIND_QUALIFIED,
    KIND_REF_RUN,
    KIND_TRAIN_RUN,
    content_key,
)


def _inputs_part(inputs: Mapping[str, Sequence[int]]) -> dict[str, list[int]]:
    return {name: list(values) for name, values in inputs.items()}


class CachedWorkloadRun(WorkloadRun):
    """Workload run whose expensive steps go through an :class:`ArtifactCache`.

    Cache keys hash the run's *inputs* (source, args, data sets), not the
    execution engine — both engines produce equal :class:`RunResult` values,
    so artifacts cached by one remain valid for the other.
    """

    def __init__(
        self,
        workload: Workload,
        cache: ArtifactCache,
        engine: str = "compiled",
        checker=None,
        dataflow_engine: str = "auto",
        wz_engine: str = "auto",
    ) -> None:
        self.cache = cache
        super().__init__(
            workload,
            engine=engine,
            checker=checker,
            dataflow_engine=dataflow_engine,
            wz_engine=wz_engine,
        )

    # -- pipeline steps, memoized -----------------------------------------

    def _memo(self, kind: str, key: str, compute):
        """One cache lookup, spanned so traces show where a stage's time
        went (recompute vs. load) and whether it hit."""
        before = self.cache.stats.hits.get(kind, 0)
        with get_tracer().span("cache.memo", kind=kind) as span:
            value = self.cache.memo(kind, key, compute)
        span.set(hit=self.cache.stats.hits.get(kind, 0) > before)
        return value

    def _compile_module(self) -> Module:
        key = content_key("module", self.workload.source)
        return self._memo(KIND_MODULE, key, super()._compile_module)

    def _run_train(self) -> RunResult:
        w = self.workload
        key = content_key(
            "train", w.source, list(w.train_args), _inputs_part(w.train_inputs)
        )
        return self._memo(KIND_TRAIN_RUN, key, super()._run_train)

    def _run_ref(self) -> RunResult:
        w = self.workload
        key = content_key(
            "ref", w.source, list(w.ref_args), _inputs_part(w.ref_inputs)
        )
        return self._memo(KIND_REF_RUN, key, super()._run_ref)

    def _compute_qualified(
        self, ca: float, cr: float
    ) -> dict[str, QualifiedAnalysis]:
        # The dataflow and WZ engines are part of the key: the engines prove
        # equal solutions, but a cached artifact should always be
        # reproducible by the exact configuration that produced it.
        key = content_key(
            "qualified",
            self.workload.source,
            fingerprint_profiles(self.train.profiles),
            ca,
            cr,
            self.dataflow_engine,
            self.wz_engine,
        )
        return self._memo(
            KIND_QUALIFIED, key, lambda: super(CachedWorkloadRun, self)._compute_qualified(ca, cr)
        )

    def _compute_lint(self, ca: float, cr: float, min_mass: float) -> tuple:
        # Analyzer configuration is part of the key: findings (and their
        # ranking) depend on the mass threshold and, for the analyzer's own
        # solves, the engines that ran them.
        key = content_key(
            "lint",
            self.workload.source,
            fingerprint_profiles(self.train.profiles),
            ca,
            cr,
            min_mass,
            self.dataflow_engine,
            self.wz_engine,
        )
        return self._memo(
            KIND_LINT,
            key,
            lambda: super(CachedWorkloadRun, self)._compute_lint(
                ca, cr, min_mass
            ),
        )


def make_run(
    workload: Workload,
    cache_dir=None,
    engine: str = "compiled",
    check: bool = False,
    dataflow_engine: str = "auto",
    wz_engine: str = "auto",
) -> WorkloadRun:
    """Build a run, cached when a cache directory (or cache) is given.

    With ``check=True`` a fresh :class:`~repro.checks.runner.PipelineChecker`
    verifies every stage (including cached artifacts) as it completes.
    """
    checker = None
    if check:
        from ..checks.runner import PipelineChecker

        checker = PipelineChecker()
    if cache_dir is None:
        return WorkloadRun(
            workload,
            engine=engine,
            checker=checker,
            dataflow_engine=dataflow_engine,
            wz_engine=wz_engine,
        )
    cache = cache_dir if isinstance(cache_dir, ArtifactCache) else ArtifactCache(cache_dir)
    return CachedWorkloadRun(
        workload,
        cache,
        engine=engine,
        checker=checker,
        dataflow_engine=dataflow_engine,
        wz_engine=wz_engine,
    )
