"""A :class:`~repro.evaluation.harness.WorkloadRun` backed by the artifact
cache.

Key derivation (see ``docs/PIPELINE.md`` for the full rules):

* compiled module — hash of the MiniC source text alone;
* train / ref profiling runs — hash of (*module fingerprint*, args, input
  arrays): the module fingerprint digests the lowered IR, so a
  whitespace-only edit recompiles (cheap) but does not re-profile, while a
  new data set re-profiles and a new coverage level does not;
* qualified pipelines and lint — **per function**: each function's
  artifact is keyed by (function fingerprint, that routine's *profile
  fingerprint*, CA, CR, engines).  Qualification and lint are
  function-local computations, so an edit to ``f`` leaves ``g``'s
  automata, hot-path graphs, qualified dataflow, and findings as warm
  hits — this is what makes :mod:`repro.pipeline.incremental` cheap.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..core.qualified import QualifiedAnalysis
from ..evaluation.harness import Workload, WorkloadRun
from ..frontend.fingerprint import function_fingerprints, module_fingerprint
from ..interp.interpreter import RunResult
from ..ir.function import Module
from ..obs import get_tracer
from ..profiles.serialize import fingerprint_profile
from .cache import (
    ArtifactCache,
    KIND_LINT,
    KIND_MODULE,
    KIND_QUALIFIED,
    KIND_REF_RUN,
    KIND_TRAIN_RUN,
    content_key,
)


def _inputs_part(inputs: Mapping[str, Sequence[int]]) -> dict[str, list[int]]:
    return {name: list(values) for name, values in inputs.items()}


def qualified_function_key(
    fn_fingerprint: str,
    profile_fingerprint: str,
    ca: float,
    cr: float,
    dataflow_engine: str,
    wz_engine: str,
) -> str:
    """Cache key of one function's qualified pipeline artifact.

    Exposed (rather than inlined in :class:`CachedWorkloadRun`) so the
    incremental session can probe hit/miss per function before running.
    """
    # The dataflow and WZ engines are part of the key: the engines prove
    # equal solutions, but a cached artifact should always be reproducible
    # by the exact configuration that produced it.
    return content_key(
        "qualified-fn",
        fn_fingerprint,
        profile_fingerprint,
        ca,
        cr,
        dataflow_engine,
        wz_engine,
    )


def lint_function_key(
    fn_fingerprint: str,
    profile_fingerprint: str,
    ca: float,
    cr: float,
    min_mass: float,
    dataflow_engine: str,
    wz_engine: str,
) -> str:
    """Cache key of one function's ranked lint findings."""
    # Analyzer configuration is part of the key: findings (and their
    # ranking) depend on the mass threshold and, for the analyzer's own
    # solves, the engines that ran them.
    return content_key(
        "lint-fn",
        fn_fingerprint,
        profile_fingerprint,
        ca,
        cr,
        min_mass,
        dataflow_engine,
        wz_engine,
    )


class CachedWorkloadRun(WorkloadRun):
    """Workload run whose expensive steps go through an :class:`ArtifactCache`.

    Cache keys hash the run's *inputs* (source, args, data sets), not the
    execution engine — both engines produce equal :class:`RunResult` values,
    so artifacts cached by one remain valid for the other.
    """

    def __init__(
        self,
        workload: Workload,
        cache: ArtifactCache,
        engine: str = "compiled",
        checker=None,
        dataflow_engine: str = "auto",
        wz_engine: str = "auto",
    ) -> None:
        self.cache = cache
        self._fn_fingerprints: Optional[dict[str, str]] = None
        self._module_fingerprint: Optional[str] = None
        self._profile_fingerprints: dict[str, str] = {}
        super().__init__(
            workload,
            engine=engine,
            checker=checker,
            dataflow_engine=dataflow_engine,
            wz_engine=wz_engine,
        )

    # -- fingerprints ------------------------------------------------------

    def function_fingerprints(self) -> dict[str, str]:
        """Per-function IR fingerprints of the compiled module, memoized."""
        if self._fn_fingerprints is None:
            self._fn_fingerprints = function_fingerprints(self.module)
        return self._fn_fingerprints

    def module_fingerprint(self) -> str:
        """The whole-module IR fingerprint, memoized."""
        if self._module_fingerprint is None:
            self._module_fingerprint = module_fingerprint(self.module)
        return self._module_fingerprint

    def profile_fingerprint(self, fn_name: str) -> str:
        """Content digest of one routine's training profile, memoized."""
        if fn_name not in self._profile_fingerprints:
            self._profile_fingerprints[fn_name] = fingerprint_profile(
                self.train_profile(fn_name)
            )
        return self._profile_fingerprints[fn_name]

    # -- pipeline steps, memoized -----------------------------------------

    def _memo(self, kind: str, key: str, compute):
        """One cache lookup, spanned so traces show where a stage's time
        went (recompute vs. load) and whether it hit."""
        before = self.cache.stats.hits.get(kind, 0)
        with get_tracer().span("cache.memo", kind=kind) as span:
            value = self.cache.memo(kind, key, compute)
        span.set(hit=self.cache.stats.hits.get(kind, 0) > before)
        return value

    def _compile_module(self) -> Module:
        key = content_key("module", self.workload.source)
        return self._memo(KIND_MODULE, key, super()._compile_module)

    def _run_train(self) -> RunResult:
        w = self.workload
        key = content_key(
            "train",
            self.module_fingerprint(),
            list(w.train_args),
            _inputs_part(w.train_inputs),
        )
        return self._memo(KIND_TRAIN_RUN, key, super()._run_train)

    def _run_ref(self) -> RunResult:
        w = self.workload
        key = content_key(
            "ref",
            self.module_fingerprint(),
            list(w.ref_args),
            _inputs_part(w.ref_inputs),
        )
        return self._memo(KIND_REF_RUN, key, super()._run_ref)

    def _compute_qualified(
        self, ca: float, cr: float
    ) -> dict[str, QualifiedAnalysis]:
        # One cache entry *per function*: each routine's pipeline depends
        # only on its own IR and its own training profile, so edits to other
        # functions leave it warm.
        from ..core.qualified import run_qualified

        fps = self.function_fingerprints()
        out: dict[str, QualifiedAnalysis] = {}
        for name, fn in self.module.functions.items():
            key = qualified_function_key(
                fps[name],
                self.profile_fingerprint(name),
                ca,
                cr,
                self.dataflow_engine,
                self.wz_engine,
            )
            out[name] = self._memo(
                KIND_QUALIFIED,
                key,
                lambda fn=fn, name=name: run_qualified(
                    fn,
                    self.train_profile(name),
                    ca,
                    cr,
                    wz_engine=self.wz_engine,
                ),
            )
        return out

    def _compute_lint(self, ca: float, cr: float, min_mass: float) -> tuple:
        # Lint is function-local too (both lint passes inspect one function
        # / one routine's qualified analysis at a time), so findings are
        # cached per function and the module result is the re-ranked
        # concatenation — identical to a whole-module lint because
        # ``rank`` is a deterministic total order over the same multiset.
        from ..analyze.runner import compute_function_findings, rank

        qualified = self.qualified(ca, cr)
        fps = self.function_fingerprints()
        findings = []
        for name, fn in self.module.functions.items():
            key = lint_function_key(
                fps[name],
                self.profile_fingerprint(name),
                ca,
                cr,
                min_mass,
                self.dataflow_engine,
                self.wz_engine,
            )
            findings.extend(
                self._memo(
                    KIND_LINT,
                    key,
                    lambda fn=fn, name=name: compute_function_findings(
                        fn,
                        qualified.get(name),
                        min_mass,
                        workload=self.workload.name,
                    ),
                )
            )
        return rank(findings)


def make_run(
    workload: Workload,
    cache_dir=None,
    engine: str = "compiled",
    check: bool = False,
    dataflow_engine: str = "auto",
    wz_engine: str = "auto",
) -> WorkloadRun:
    """Build a run, cached when a cache directory (or cache) is given.

    With ``check=True`` a fresh :class:`~repro.checks.runner.PipelineChecker`
    verifies every stage (including cached artifacts) as it completes.
    """
    checker = None
    if check:
        from ..checks.runner import PipelineChecker

        checker = PipelineChecker()
    if cache_dir is None:
        return WorkloadRun(
            workload,
            engine=engine,
            checker=checker,
            dataflow_engine=dataflow_engine,
            wz_engine=wz_engine,
        )
    cache = cache_dir if isinstance(cache_dir, ArtifactCache) else ArtifactCache(cache_dir)
    return CachedWorkloadRun(
        workload,
        cache,
        engine=engine,
        checker=checker,
        dataflow_engine=dataflow_engine,
        wz_engine=wz_engine,
    )
