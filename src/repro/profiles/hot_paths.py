"""Hot-path selection (§3 step 1 of the paper).

Hot paths are the minimal set of profiled paths that cover a fraction ``CA``
of the training run's dynamic instructions: paths are considered in
descending order of instructions executed along them (length × frequency) and
marked hot until the coverage goal is met.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from .path_profile import BLPath, PathProfile

Vertex = Hashable


def select_hot_paths(
    profile: PathProfile,
    block_sizes: Mapping[Vertex, int],
    coverage: float,
) -> tuple[BLPath, ...]:
    """The minimal hot-path set covering ``coverage`` of dynamic instructions.

    ``coverage`` is the paper's ``CA`` in [0, 1]; ``CA = 0`` selects no paths
    (plain Wegman–Zadek analysis), ``CA = 1`` selects every executed path.
    Ties are broken deterministically (by path contents) so repeated runs
    select identical sets.
    """
    if not 0.0 <= coverage <= 1.0:
        raise ValueError(f"coverage must be in [0, 1], got {coverage}")
    if coverage == 0.0:
        return ()

    weighted = [
        (path.weight(block_sizes) * count, path)
        for path, count in profile.items()
    ]
    total = sum(w for w, _ in weighted)
    if total == 0:
        return ()
    # Descending by dynamic instructions; deterministic tie-break.
    weighted.sort(key=lambda item: (-item[0], item[1].vertices))

    goal = coverage * total
    covered = 0
    hot: list[BLPath] = []
    for w, path in weighted:
        if covered >= goal:
            break
        hot.append(path)
        covered += w
    return tuple(hot)


def coverage_of(
    paths: tuple[BLPath, ...],
    profile: PathProfile,
    block_sizes: Mapping[Vertex, int],
) -> float:
    """Fraction of dynamic instructions covered by ``paths``."""
    total = profile.total_instructions(block_sizes)
    if total == 0:
        return 0.0
    covered = sum(p.weight(block_sizes) * profile.count(p) for p in set(paths))
    return covered / total
