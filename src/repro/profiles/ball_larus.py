"""Ball–Larus path numbering, instrumentation increments, and regeneration.

This implements the efficient-path-profiling machinery of [BL96] adapted to
the paper's Definition 7 formulation, in which a path runs from the target of
one recording edge up to and including the next recording edge.

For each vertex ``v``, ``num_paths(v)`` counts the Ball–Larus path *suffixes*
beginning at ``v``:

    num_paths(v) = (number of recording out-edges of v)
                 + sum(num_paths(w) for non-recording edges (v, w))

Each path starting at a start vertex ``s`` then has a unique id in
``[0, num_paths(s))``, obtained by summing per-edge increments along the way
(non-recording edges) plus a final offset contributed by the terminating
recording edge.  Regeneration inverts the numbering.

A profiler therefore needs one *path register* plus one table lookup per
branch — the low overhead that makes path profiling practical — and the
interpreter's :class:`~repro.interp.profiler.BallLarusProfiler` does exactly
this.  Property tests check that the increment-based profile always equals
the trace-splitting oracle of :func:`~repro.profiles.path_profile.split_trace`.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..ir.cfg import Cfg, Edge
from .path_profile import BLPath
from .recording import path_start_vertices

Vertex = Hashable


class BallLarusNumbering:
    """Path numbering for a CFG and recording-edge set."""

    def __init__(self, cfg: Cfg, recording: frozenset[Edge]) -> None:
        self.cfg = cfg
        self.recording = recording
        #: non-recording out-neighbours of each vertex, in edge order
        self._nonrec: dict[Vertex, tuple[Vertex, ...]] = {}
        #: recording out-neighbours of each vertex, in edge order
        self._rec: dict[Vertex, tuple[Vertex, ...]] = {}
        for v in cfg.vertices:
            succs = cfg.succs(v)
            self._nonrec[v] = tuple(w for w in succs if (v, w) not in recording)
            self._rec[v] = tuple(w for w in succs if (v, w) in recording)
        self._num_paths = self._compute_num_paths()
        self._edge_inc, self._final_offset = self._compute_increments()
        self.start_vertices = path_start_vertices(cfg, recording)

    @classmethod
    def for_cfg(cls, cfg: Cfg, recording: frozenset[Edge]) -> "BallLarusNumbering":
        """A numbering for ``(cfg, recording)``, cached on the cfg.

        The numbering is deterministic given its inputs, so every consumer
        of the same cfg (train run, ref run, both engines, cached sweeps)
        can share one instance instead of recomputing the DAG recursion.
        """
        cache = cfg.__dict__.setdefault("_numbering_cache", {})
        key = recording
        numbering = cache.get(key)
        if numbering is None:
            numbering = cls(cfg, recording)
            cache[key] = numbering
        return numbering

    # -- numbering ----------------------------------------------------------

    def _compute_num_paths(self) -> dict[Vertex, int]:
        order = self._topological_order()
        num: dict[Vertex, int] = {}
        for v in reversed(order):
            total = len(self._rec[v])
            for w in self._nonrec[v]:
                total += num[w]
            num[v] = total
        return num

    def _topological_order(self) -> list[Vertex]:
        """Topological order of the graph restricted to non-recording edges."""
        indeg: dict[Vertex, int] = {v: 0 for v in self.cfg.vertices}
        for v in self.cfg.vertices:
            for w in self._nonrec[v]:
                indeg[w] += 1
        worklist = [v for v in self.cfg.vertices if indeg[v] == 0]
        order: list[Vertex] = []
        while worklist:
            v = worklist.pop()
            order.append(v)
            for w in self._nonrec[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    worklist.append(w)
        if len(order) != self.cfg.num_vertices:
            raise ValueError("graph is cyclic without its recording edges")
        return order

    def num_paths_from(self, v: Vertex) -> int:
        """Number of Ball–Larus path suffixes beginning at ``v``."""
        return self._num_paths[v]

    def _compute_increments(self) -> tuple[dict[Edge, int], dict[Edge, int]]:
        edge_inc: dict[Edge, int] = {}
        final_offset: dict[Edge, int] = {}
        for v in self.cfg.vertices:
            offset = 0
            for w in self._nonrec[v]:
                edge_inc[(v, w)] = offset
                offset += self._num_paths[w]
            for w in self._rec[v]:
                final_offset[(v, w)] = offset
                offset += 1
        return edge_inc, final_offset

    def edge_increment(self, edge: Edge) -> int:
        """Path-register increment for a non-recording edge."""
        return self._edge_inc[edge]

    def final_offset(self, edge: Edge) -> int:
        """Offset added when a recording edge terminates a path."""
        return self._final_offset[edge]

    # -- path <-> id --------------------------------------------------------

    def path_id(self, path: BLPath) -> tuple[Vertex, int]:
        """The (start vertex, id) pair of a Ball–Larus path."""
        pid = 0
        edges = path.edges()
        for edge in edges[:-1]:
            if edge in self.recording:
                raise ValueError(f"interior edge {edge!r} is a recording edge")
            pid += self._edge_inc[edge]
        last = edges[-1]
        if last not in self.recording:
            raise ValueError(f"final edge {last!r} is not a recording edge")
        pid += self._final_offset[last]
        return path.start, pid

    def regenerate(self, start: Vertex, pid: int) -> BLPath:
        """The unique Ball–Larus path with the given start vertex and id."""
        if not 0 <= pid < self._num_paths.get(start, 0):
            raise ValueError(
                f"path id {pid} out of range for start {start!r} "
                f"(num_paths={self._num_paths.get(start, 0)})"
            )
        vertices: list[Vertex] = [start]
        v = start
        while True:
            advanced = False
            for w in self._nonrec[v]:
                n = self._num_paths[w]
                if pid < n:
                    vertices.append(w)
                    v = w
                    advanced = True
                    break
                pid -= n
            if advanced:
                continue
            # pid now indexes a recording out-edge of v.
            w = self._rec[v][pid]
            vertices.append(w)
            return BLPath(tuple(vertices))

    def all_paths_from(self, start: Vertex) -> Iterator[BLPath]:
        """All Ball–Larus paths from ``start`` in id order.

        Potentially exponential; intended for tests and tiny graphs.
        """
        for pid in range(self._num_paths.get(start, 0)):
            yield self.regenerate(start, pid)

    @property
    def total_potential_paths(self) -> int:
        """Total potential Ball–Larus paths in the routine — the paper's
        "universe of billions of acyclic paths" a profile samples from."""
        return sum(self._num_paths[s] for s in self.start_vertices)
