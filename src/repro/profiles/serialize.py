"""Path-profile serialization.

Real profilers persist profiles between the training run and the analysis
run (the paper's PP pass writes a profile that the later PW pass reads).
This module provides a line-oriented text format::

    # repro path profile v1
    routine work
    path 70 A B C E F H I __exit__
    path 30 A B D E F H B
    routine main
    path 1 entry loop body loop

Vertex names are the IR block labels (plus the virtual ``__entry__`` /
``__exit__``), which contain no whitespace by construction.  Only profiles
over label-named graphs (original CFGs) are serializable; traced-graph
profiles are derived data — re-translate after loading.
"""

from __future__ import annotations

from typing import Mapping, TextIO

from .path_profile import BLPath, PathProfile

_HEADER = "# repro path profile v1"


class ProfileFormatError(Exception):
    """Raised when parsing a malformed profile file."""


def dump_profiles(profiles: Mapping[str, PathProfile], out: TextIO) -> None:
    """Write per-routine profiles in the text format."""
    out.write(_HEADER + "\n")
    for routine, profile in profiles.items():
        out.write(f"routine {routine}\n")
        for path, count in sorted(
            profile.items(), key=lambda pc: tuple(map(str, pc[0].vertices))
        ):
            vertices = " ".join(str(v) for v in path.vertices)
            out.write(f"path {count} {vertices}\n")


def dumps_profiles(profiles: Mapping[str, PathProfile]) -> str:
    """:func:`dump_profiles` into a string."""
    import io

    buffer = io.StringIO()
    dump_profiles(profiles, buffer)
    return buffer.getvalue()


def fingerprint_profiles(profiles: Mapping[str, PathProfile]) -> str:
    """A stable content digest of per-routine profiles.

    The digest is the SHA-256 of the canonical text serialization with
    routines emitted in sorted order, so two profiles with the same paths and
    counts fingerprint identically regardless of collection order.  The
    pipeline cache uses this to key derived artifacts (automata, hot-path
    graphs, analyses) by *profile content* rather than by how the profile was
    produced.
    """
    import hashlib

    ordered = {name: profiles[name] for name in sorted(profiles, key=str)}
    return hashlib.sha256(dumps_profiles(ordered).encode()).hexdigest()


def fingerprint_profile(profile: PathProfile) -> str:
    """A stable content digest of a *single* routine's profile.

    Unlike :func:`fingerprint_profiles`, the routine's name is not part of
    the digest: the fingerprint identifies the observed path multiset
    alone.  The incremental pipeline keys per-function artifacts
    (automata, HPGs, qualified dataflow, lint) on
    ``(function fingerprint, profile fingerprint, ...)`` so an edit to one
    function leaves every other function's artifacts warm even though the
    whole-module profiling run was re-executed.
    """
    import hashlib

    body = dumps_profiles({"__routine__": profile})
    return hashlib.sha256(body.encode()).hexdigest()


def load_profiles(source: TextIO) -> dict[str, PathProfile]:
    """Parse the text format back into per-routine profiles."""
    lines = source.read().splitlines()
    if not lines or lines[0].strip() != _HEADER:
        raise ProfileFormatError(f"missing header {_HEADER!r}")
    profiles: dict[str, PathProfile] = {}
    current: PathProfile | None = None
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "routine":
            if len(parts) != 2:
                raise ProfileFormatError(f"line {lineno}: bad routine line")
            name = parts[1]
            if name in profiles:
                raise ProfileFormatError(
                    f"line {lineno}: duplicate routine {name!r}"
                )
            current = profiles.setdefault(name, PathProfile())
        elif parts[0] == "path":
            if current is None:
                raise ProfileFormatError(
                    f"line {lineno}: path before any routine"
                )
            if len(parts) < 4:
                raise ProfileFormatError(
                    f"line {lineno}: a path needs a count and >= 2 vertices"
                )
            try:
                count = int(parts[1])
            except ValueError:
                raise ProfileFormatError(
                    f"line {lineno}: bad count {parts[1]!r}"
                ) from None
            current.add(BLPath(tuple(parts[2:])), count)
        else:
            raise ProfileFormatError(
                f"line {lineno}: unknown directive {parts[0]!r}"
            )
    return profiles


def loads_profiles(text: str) -> dict[str, PathProfile]:
    """:func:`load_profiles` from a string."""
    import io

    return load_profiles(io.StringIO(text))
