"""Recording-edge computation.

Ball–Larus acyclic paths start and end at *recording edges*.  Per the paper
(§2.3), the minimum recording set contains

* every edge leaving the entry vertex,
* every edge entering the exit vertex, and
* every retreating edge,

so that removing the recording edges leaves an acyclic graph.  Additional
edges may be designated recording edges (``extra``), which shortens paths.
"""

from __future__ import annotations

from typing import Iterable

from ..ir.cfg import Cfg, Edge


def recording_edges(cfg: Cfg, extra: Iterable[Edge] = ()) -> frozenset[Edge]:
    """The recording-edge set of ``cfg``: entry edges, exit edges, retreating
    edges, and any ``extra`` edges (which must exist in the graph).
    """
    edges: set[Edge] = set()
    for succ in cfg.succs(cfg.entry):
        edges.add((cfg.entry, succ))
    for pred in cfg.preds(cfg.exit):
        edges.add((pred, cfg.exit))
    edges.update(cfg.retreating_edges())
    for e in extra:
        if not cfg.has_edge(*e):
            raise ValueError(f"extra recording edge {e!r} is not a CFG edge")
        edges.add(e)
    if not cfg.is_acyclic_without(edges):
        # retreating_edges() guarantees this; a failure indicates a graph bug.
        raise AssertionError("recording edges do not acyclify the graph")
    return frozenset(edges)


def path_start_vertices(cfg: Cfg, recording: frozenset[Edge]) -> tuple:
    """Vertices at which Ball–Larus paths may start: targets of recording
    edges, in deterministic (vertex-insertion) order, excluding the exit.
    """
    targets = {v for _, v in recording}
    return tuple(v for v in cfg.vertices if v in targets and v != cfg.exit)
