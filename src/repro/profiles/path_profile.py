"""Ball–Larus paths and path profiles (Definitions 7 and 8 of the paper).

A :class:`BLPath` is the paper's ``[•, v0, v1, ..., vk]``: an implicit leading
``•`` (a recording edge was just traversed), then vertices from the target of
that recording edge up to and including the target of the next recording
edge.  Only the final edge of the path is a recording edge.

A :class:`PathProfile` is a multiset of Ball–Larus paths — the number of times
each occurred as a subpath of the executed program paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


@dataclass(frozen=True)
class BLPath:
    """A Ball–Larus path, stored as its vertex sequence ``v0..vk``.

    ``v0`` is the target of the recording edge that started the path; the
    final edge ``(v_{k-1}, v_k)`` is the recording edge that ended it.
    """

    vertices: tuple[Vertex, ...]

    def __post_init__(self) -> None:
        if len(self.vertices) < 2:
            raise ValueError("a Ball-Larus path has at least two vertices")

    @property
    def start(self) -> Vertex:
        return self.vertices[0]

    @property
    def end(self) -> Vertex:
        return self.vertices[-1]

    def edges(self) -> tuple[Edge, ...]:
        """The edges of the path, in order; the last one is recording."""
        return tuple(zip(self.vertices, self.vertices[1:]))

    def interior(self) -> tuple[Vertex, ...]:
        """Vertices whose instructions this path accounts for: all but the
        last.  The final vertex belongs to the *next* path, so summing
        interior sizes over a split trace counts each executed block once.
        """
        return self.vertices[:-1]

    def weight(self, block_sizes: Mapping[Vertex, int]) -> int:
        """Instructions executed along the path (its *length* in the paper's
        "length times frequency" hot-path ordering)."""
        return sum(block_sizes.get(v, 0) for v in self.interior())

    def __len__(self) -> int:
        return len(self.vertices)

    def __str__(self) -> str:
        return "[• " + " ".join(str(v) for v in self.vertices) + "]"


class PathProfile:
    """A multiset of Ball–Larus paths with integer counts."""

    def __init__(self, counts: Mapping[BLPath, int] | None = None) -> None:
        self._counts: dict[BLPath, int] = {}
        if counts:
            for path, count in counts.items():
                self.add(path, count)

    def add(self, path: BLPath, count: int = 1) -> None:
        """Record ``count`` more traversals of ``path``."""
        if count < 0:
            raise ValueError("path counts cannot be negative")
        if count:
            self._counts[path] = self._counts.get(path, 0) + count

    def count(self, path: BLPath) -> int:
        return self._counts.get(path, 0)

    def paths(self) -> tuple[BLPath, ...]:
        """Distinct paths, in first-recorded order."""
        return tuple(self._counts)

    def items(self) -> Iterator[tuple[BLPath, int]]:
        return iter(self._counts.items())

    @property
    def num_distinct(self) -> int:
        """Number of distinct executed paths (Table 1's "Paths" column)."""
        return len(self._counts)

    @property
    def total_count(self) -> int:
        """Total path traversals."""
        return sum(self._counts.values())

    def total_instructions(self, block_sizes: Mapping[Vertex, int]) -> int:
        """Total dynamic instructions accounted for by the profile."""
        return sum(p.weight(block_sizes) * c for p, c in self._counts.items())

    def block_frequencies(self) -> dict[Vertex, int]:
        """Execution count of each vertex, derived from the profile.

        Each path contributes its count to every *interior* vertex occurrence,
        so frequencies partition the executed trace exactly (see
        :meth:`BLPath.interior`).
        """
        freq: dict[Vertex, int] = {}
        for path, count in self._counts.items():
            for v in path.interior():
                freq[v] = freq.get(v, 0) + count
        return freq

    def edge_frequencies(self) -> dict[Edge, int]:
        """Traversal count of each edge, derived from the profile."""
        freq: dict[Edge, int] = {}
        for path, count in self._counts.items():
            for e in path.edges():
                freq[e] = freq.get(e, 0) + count
        return freq

    def merged_with(self, other: "PathProfile") -> "PathProfile":
        """A new profile combining the counts of both."""
        merged = PathProfile(dict(self._counts))
        for path, count in other.items():
            merged.add(path, count)
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathProfile):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        return f"PathProfile({self.num_distinct} paths, {self.total_count} total)"


def split_trace(
    trace: Iterable[Vertex], recording: frozenset[Edge]
) -> list[BLPath]:
    """Cut an executed vertex trace into Ball–Larus paths at recording edges.

    ``trace`` is the full vertex sequence of one routine activation, starting
    at the virtual entry and ending at the virtual exit.  This is the paper's
    Definition 8 made operational, and serves as the oracle against which the
    increment-based profiler is validated.
    """
    paths: list[BLPath] = []
    current: list[Vertex] | None = None
    prev: Vertex | None = None
    first = True
    for v in trace:
        if first:
            prev = v
            first = False
            continue
        edge = (prev, v)
        if edge in recording:
            if current is not None:
                current.append(v)
                paths.append(BLPath(tuple(current)))
            current = [v]
        else:
            if current is None:
                raise ValueError(
                    f"trace begins with non-recording edge {edge!r}"
                )
            current.append(v)
        prev = v
    if current is not None and len(current) > 1:
        raise ValueError("trace ended in the middle of a Ball-Larus path")
    return paths


def profile_from_traces(
    traces: Iterable[Iterable[Vertex]], recording: frozenset[Edge]
) -> PathProfile:
    """Build a :class:`PathProfile` from executed traces (Definition 8)."""
    profile = PathProfile()
    for trace in traces:
        for path in split_trace(trace, recording):
            profile.add(path)
    return profile
