"""Ball–Larus path profiling: recording edges, path numbering, profiles,
and hot-path selection (§2.3 and §3 of the paper)."""

from .ball_larus import BallLarusNumbering
from .hot_paths import coverage_of, select_hot_paths
from .path_profile import BLPath, PathProfile, profile_from_traces, split_trace
from .recording import path_start_vertices, recording_edges
from .serialize import (
    ProfileFormatError,
    dump_profiles,
    dumps_profiles,
    fingerprint_profile,
    fingerprint_profiles,
    load_profiles,
    loads_profiles,
)

__all__ = [
    "BallLarusNumbering",
    "BLPath",
    "coverage_of",
    "dump_profiles",
    "dumps_profiles",
    "fingerprint_profile",
    "fingerprint_profiles",
    "load_profiles",
    "loads_profiles",
    "ProfileFormatError",
    "PathProfile",
    "path_start_vertices",
    "profile_from_traces",
    "recording_edges",
    "select_hot_paths",
    "split_trace",
]
