"""Lattice values for constant propagation.

The scalar lattice is the standard flat (three-level) constant lattice::

            TOP                (no evidence yet / optimistic "any constant")
      ... -2 -1 0 1 2 ...      (known constant)
            BOT                (known non-constant)

Environments (:class:`ConstEnv`) map variables to flat values; variables not
present map to :data:`TOP`.  The environment lattice adds an
:data:`UNREACHABLE` top element used by the conditional algorithm for blocks
no executable path has reached.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Union


class _Top:
    """Singleton: optimistic "no evidence yet"."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TOP"

    def __reduce__(self):
        # Pickle as a reference to the module-level singleton, so identity
        # checks (`v is TOP`) still hold on values loaded from the artifact
        # cache or shipped across process-pool boundaries.
        return "TOP"


class _Bot:
    """Singleton: known non-constant."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "BOT"

    def __reduce__(self):
        return "BOT"


TOP = _Top()
BOT = _Bot()

#: A point in the flat constant lattice.
FlatValue = Union[int, _Top, _Bot]


def meet_flat(a: FlatValue, b: FlatValue) -> FlatValue:
    """Meet (greatest lower bound) in the flat lattice."""
    if a is TOP:
        return b
    if b is TOP:
        return a
    if a is BOT or b is BOT:
        return BOT
    return a if a == b else BOT


def leq_flat(a: FlatValue, b: FlatValue) -> bool:
    """True if ``a`` is below-or-equal ``b`` in the flat lattice."""
    return meet_flat(a, b) == a if isinstance(a, int) else (a is BOT or b is TOP)


def is_const(v: FlatValue) -> bool:
    """True for a known-constant lattice value."""
    return isinstance(v, int)


class ConstEnv:
    """An immutable variable environment over the flat lattice.

    Only non-TOP entries are stored.  ``ConstEnv()`` is the environment
    mapping every variable to TOP (the lattice top among *reachable* states).
    """

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, FlatValue] | None = None) -> None:
        self._values: dict[str, FlatValue] = {}
        if values:
            for name, v in values.items():
                if v is not TOP:
                    self._values[name] = v

    @classmethod
    def _from_raw(cls, values: dict[str, FlatValue]) -> "ConstEnv":
        """Adopt ``values`` (no TOP entries, caller-owned) without copying —
        the decode path of the dense engines."""
        env = cls()
        env._values = values
        return env

    def get(self, name: str) -> FlatValue:
        """The lattice value of ``name`` (TOP if absent)."""
        return self._values.get(name, TOP)

    def set(self, name: str, value: FlatValue) -> "ConstEnv":
        """A new environment with ``name`` bound to ``value``.

        Returns ``self`` when the binding is already in place (sentinels by
        identity, constants by value) — rebinding a variable to its current
        value is the common case at a fixpoint, and the environment is
        immutable, so aliasing is safe.
        """
        existing = self._values.get(name, TOP)
        if value is existing or value == existing:
            return self
        new = ConstEnv()
        new._values = dict(self._values)
        if value is TOP:
            new._values.pop(name, None)
        else:
            new._values[name] = value
        return new

    def meet(self, other: "ConstEnv") -> "ConstEnv":
        """Pointwise meet of two environments.

        ``meet`` is idempotent and TOP (the empty environment) is its
        identity, so the aliasing fast paths below return an existing
        object whenever the result would be pointwise equal to one.
        """
        if self is other or not other._values:
            return self
        if not self._values:
            return other
        if self._values == other._values:
            return self
        new = ConstEnv()
        values: dict[str, FlatValue] = {}
        for name in self._values.keys() | other._values.keys():
            v = meet_flat(self.get(name), other.get(name))
            if v is not TOP:
                values[name] = v
        new._values = values
        return new

    def leq(self, other: "ConstEnv") -> bool:
        """True if ``self`` is pointwise below-or-equal ``other``."""
        for name in self._values.keys() | other._values.keys():
            if not leq_flat(self.get(name), other.get(name)):
                return False
        return True

    def items(self) -> Iterator[tuple[str, FlatValue]]:
        """Non-TOP bindings, sorted by name for determinism."""
        return iter(sorted(self._values.items(), key=lambda kv: kv[0]))

    def to_dict(self) -> dict[str, FlatValue]:
        """A mutable copy of the non-TOP bindings (scratch space for the
        dense transfer lowering)."""
        return dict(self._values)

    def constants(self) -> dict[str, int]:
        """The known-constant bindings."""
        return {k: v for k, v in self._values.items() if isinstance(v, int)}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstEnv):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(frozenset(self._values.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.items())
        return f"ConstEnv({inner})"


class _Unreachable:
    """Singleton environment-lattice top: no executable path reaches here."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "UNREACHABLE"

    def __reduce__(self):
        return "UNREACHABLE"


UNREACHABLE = _Unreachable()

#: An environment-lattice point: UNREACHABLE or a concrete environment.
EnvValue = Union[ConstEnv, _Unreachable]


def meet_env(a: EnvValue, b: EnvValue) -> EnvValue:
    """Meet in the environment lattice (UNREACHABLE is the top)."""
    if a is UNREACHABLE:
        return b
    if b is UNREACHABLE:
        return a
    return a.meet(b)


def leq_env(a: EnvValue, b: EnvValue) -> bool:
    """Ordering in the environment lattice (UNREACHABLE is the top, so
    everything is below it)."""
    if b is UNREACHABLE:
        return True
    if a is UNREACHABLE:
        return False
    return a.leq(b)
