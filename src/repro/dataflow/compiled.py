"""Bitset-compiled kernel for separable (gen/kill) dataflow problems.

The generic solver of :mod:`repro.dataflow.framework` re-executes each
block's transfer function — a Python loop over instructions allocating
``frozenset``s — on every relaxation.  For the classic *separable* problems
(reaching definitions, liveness, available expressions, very busy
expressions, copy propagation) each fact evolves independently: a block
either sets it, clears it, or leaves it alone.  Any such transfer collapses
to two constants computable once per block::

    f(X) = gen | (X & ~kill)

where ``gen`` is the net effect on the empty set and ``kill`` covers every
fact the block may clear (a fact both cleared and later re-set lands in
``gen``, which wins the ``|``).  This kernel lowers a problem once to those
``(gen, kill)`` Python-int bitsets (arbitrary precision: one int *is* the
whole bit vector, and ``&``/``|``/``~`` run word-parallel in C), then
iterates the same three worklist strategies as the generic engine over
preallocated ``IN``/``OUT`` lists indexed by dense vertex id — no hashing,
no set allocation, no per-iteration transfer interpretation.

A problem opts in by overriding
:meth:`~repro.dataflow.framework.DataflowProblem.as_genkill` (usually via
:func:`build_genkill`); :func:`~repro.dataflow.framework.solve` dispatches
here automatically under ``engine="auto"``.  The generic path remains the
oracle — differential tests assert both engines produce identical
:class:`~repro.dataflow.framework.Solution`s, including identical
:class:`~repro.dataflow.framework.SolverStats` work accounting, on plain
CFGs and on hot-path graphs.

Must problems and the ``ALL`` sentinel
--------------------------------------
The intersection-meet problems use the universal-set token ``ALL`` as top,
and their transfers treat an ``ALL`` input to a *real* block as the empty
set (``ALL`` only legitimately flows through virtual vertices).  The kernel
mirrors this exactly with ``None`` as the in-band ``ALL``: ``None`` is the
meet identity, a real block transfers it as ``0``, a virtual vertex passes
it through, and the decode step maps it back to the problem's ``top()`` —
so even vertices unreachable in the analysis direction decode to the same
values the generic engine computes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Optional

from ..obs import get_metrics, get_tracer
from .dense import DenseGraph, FactIndex
from .framework import (
    Solution,
    SolverBudgetExceeded,
    SolverStats,
    _emit_solver_metrics,
)
from .graph_view import GraphView

Vertex = Hashable

#: Below this many CFG vertices ``engine="auto"`` prefers the generic
#: solver: the kernel's fixed costs (gen/kill lowering, dense-graph
#: freezing, mask decode) are not amortized on tiny graphs.  Measured on
#: organic generated programs and the SPEC95-alike workload CFGs
#: (``benchmarks/bench_suite.py``): the kernel loses 0.4–0.9x below ~10
#: vertices and wins from ~13 up (1.1–1.9x), so the boundary sits in the
#: break-even band.  ``engine="compiled"`` still forces the kernel at any
#: size; ``tests/test_compiled_dataflow.py`` pins both sides.
AUTO_MIN_VERTICES = 12

#: Bits per machine word of a CPython big int (the unit of meet parallelism).
_WORD_BITS = 64


@dataclass
class GenKillSpec:
    """A separable problem lowered over one graph view.

    ``gen``/``kill`` hold one bitset per *real* vertex (virtual vertices are
    identity and appear in neither); ``meet`` is ``"union"`` or
    ``"intersection"``; ``top`` is the decoded value of the never-visited
    state (only meaningful for intersection problems, where it is the
    ``ALL`` sentinel).
    """

    meet: str
    top: object
    facts: FactIndex
    boundary_mask: int
    universe_mask: int
    gen: dict
    kill: dict

    @property
    def words_per_meet(self) -> int:
        """Machine words one ``&``/``|`` touches — the parallelism won."""
        return max(1, -(-len(self.facts) // _WORD_BITS))


def build_genkill(
    problem,
    view: GraphView,
    *,
    meet: str,
    lower_block: Callable,
    fact_vars: Callable,
) -> GenKillSpec:
    """Lower ``problem`` over ``view`` to per-vertex gen/kill bitsets.

    ``lower_block(vertex, block) -> (gen_facts, killed_vars)`` must return
    the block's *net* gen facts (its transfer of the empty set, in emission
    order) and every variable it defines; ``fact_vars(fact)`` names the
    variables whose redefinition clears the fact.  The fact universe is the
    boundary value plus every block's gen facts — by induction every value
    the fixpoint iteration can produce is drawn from it, so the masks lose
    nothing.
    """
    if meet not in ("union", "intersection"):
        raise ValueError(f"bad meet kind {meet!r}")
    boundary = problem.boundary()
    facts = FactIndex()
    for fact in boundary:
        facts.add(fact)
    lowered: dict = {}
    for v in view.cfg.vertices:
        block = view.block_of(v)
        if block is None:
            continue
        gen_facts, killed_vars = lower_block(v, block)
        lowered[v] = (gen_facts, killed_vars)
        for fact in gen_facts:
            facts.add(fact)
    universe = (1 << len(facts)) - 1
    var_masks: dict = {}
    for fid, fact in enumerate(facts.facts):
        bit = 1 << fid
        for name in fact_vars(fact):
            var_masks[name] = var_masks.get(name, 0) | bit
    gen: dict = {}
    kill: dict = {}
    for v, (gen_facts, killed_vars) in lowered.items():
        gen[v] = facts.mask_of(gen_facts)
        k = 0
        for name in killed_vars:
            k |= var_masks.get(name, 0)
        kill[v] = k
    return GenKillSpec(
        meet=meet,
        top=problem.top(),
        facts=facts,
        boundary_mask=facts.mask_of(boundary),
        universe_mask=universe,
        gen=gen,
        kill=kill,
    )


def solve_compiled(
    problem,
    view: GraphView,
    *,
    strategy: str = "rpo",
    max_visits: Optional[int] = None,
    collect_stats: bool = False,
) -> Optional[Solution]:
    """Solve a separable problem through its gen/kill lowering.

    Returns ``None`` when the problem's ``as_genkill`` declines this view
    (the caller falls back to the generic engine).  Otherwise the returned
    :class:`Solution` — values decoded back to ``frozenset``s (or the
    problem's top sentinel) keyed by the original vertices — is equal to the
    generic engine's, stats included.
    """
    tracer = get_tracer()
    cfg = view.cfg
    forward = problem.direction == "forward"
    with tracer.span(
        "dataflow.compile", direction=problem.direction, engine="compiled"
    ) as cspan:
        spec = problem.as_genkill(view)
        if spec is None:
            return None
        dense = DenseGraph(cfg, forward)
        n = len(dense)
        universe = spec.universe_mask
        gen = [0] * n
        keep = [universe] * n
        real = bytearray(n)
        id_of = dense.id_of
        for v, mask in spec.gen.items():
            vid = id_of[v]
            gen[vid] = mask
            keep[vid] = universe & ~spec.kill[v]
            real[vid] = 1
        cspan.set(vertices=n, facts=len(spec.facts))

    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("dataflow_compiled_solves", direction=problem.direction).inc()
        metrics.gauge("dataflow_words_per_meet").set(spec.words_per_meet)

    is_union = spec.meet == "union"
    top0 = 0 if is_union else None
    IN: list = [top0] * n
    OUT: list = [top0] * n
    start_id = dense.start_id
    IN[start_id] = spec.boundary_mask
    prev_ids = dense.prev_ids
    next_ids = dense.next_ids
    counts = [0] * n
    visits = 0
    stats = SolverStats(strategy=strategy, engine="compiled")

    def relax(vid: int) -> bool:
        """Dense-id twin of the generic solver's ``relax``."""
        nonlocal visits
        visits += 1
        c = counts[vid] + 1
        counts[vid] = c
        if max_visits is not None and c > max_visits:
            get_metrics().counter(
                "solver_budget_exceeded", strategy=strategy
            ).inc()
            raise SolverBudgetExceeded(
                f"vertex {dense.verts[vid]!r} relaxed more than {max_visits} "
                f"times (strategy={strategy})"
            )
        preds = prev_ids[vid]
        if vid == start_id:
            acc = spec.boundary_mask
            if is_union:
                for p in preds:
                    acc |= OUT[p]
            else:
                for p in preds:
                    out = OUT[p]
                    if out is not None:
                        acc &= out
            IN[vid] = acc
        elif preds:
            if is_union:
                acc = 0
                for p in preds:
                    acc |= OUT[p]
            else:
                acc = None
                for p in preds:
                    out = OUT[p]
                    if out is not None:
                        acc = out if acc is None else acc & out
            IN[vid] = acc
        x = IN[vid]
        if real[vid]:
            if x is None:
                # ALL reaching a real block is treated as the empty set,
                # exactly like the generic must-problem transfers.
                x = 0
            new_out = (x & keep[vid]) | gen[vid]
        else:
            new_out = x
        if new_out == OUT[vid] or (new_out is None and OUT[vid] is None):
            return False
        OUT[vid] = new_out
        return True

    with tracer.span(
        "dataflow.solve",
        strategy=strategy,
        direction=problem.direction,
        vertices=n,
        engine="compiled",
    ) as span:
        if strategy == "round_robin":
            order = dense.sweep_ids
            stats.peak_worklist = len(order)
            changed = True
            while changed:
                changed = False
                for vid in order:
                    if relax(vid):
                        changed = True
        elif strategy == "lifo":
            worklist = list(dense.sweep_ids)
            on_list = bytearray(n)
            for vid in worklist:
                on_list[vid] = 1
            stats.pushes = len(worklist)
            while worklist:
                if len(worklist) > stats.peak_worklist:
                    stats.peak_worklist = len(worklist)
                vid = worklist.pop()
                on_list[vid] = 0
                if relax(vid):
                    for w in next_ids[vid]:
                        if not on_list[w]:
                            worklist.append(w)
                            on_list[w] = 1
                            stats.pushes += 1
        else:  # rpo priority worklist — a vertex's dense id IS its priority
            heap = list(dense.sweep_ids)
            heapq.heapify(heap)
            on_list = bytearray(n)
            for vid in heap:
                on_list[vid] = 1
            stats.pushes = len(heap)
            while heap:
                if len(heap) > stats.peak_worklist:
                    stats.peak_worklist = len(heap)
                vid = heapq.heappop(heap)
                on_list[vid] = 0
                if relax(vid):
                    for w in next_ids[vid]:
                        if not on_list[w]:
                            heapq.heappush(heap, w)
                            on_list[w] = 1
                            stats.pushes += 1
        span.set(visits=visits)

    stats.visits = visits
    verts = dense.verts
    stats.visits_by_vertex = {
        verts[vid]: c for vid, c in enumerate(counts) if c
    }
    _emit_solver_metrics(stats, max_visits)

    decode = spec.facts.decode
    top = spec.top
    # Equal masks decode to one shared frozenset — pass-through chains alias
    # their neighbour's value just like the generic solver (whose virtual
    # transfer returns its input object), keeping the decoded Solution's
    # footprint at parity with the oracle's.
    seen: dict = {}

    def decoded(x):
        if x is None:
            return top
        val = seen.get(x)
        if val is None:
            val = seen[x] = decode(x)
        return val

    value_in: dict = {}
    value_out: dict = {}
    for v in cfg.vertices:
        vid = id_of[v]
        value_in[v] = decoded(IN[vid])
        value_out[v] = decoded(OUT[vid])
    return Solution(value_in, value_out, stats if collect_stats else None)
