"""The generic monotone data-flow framework (Definitions 1–4 of the paper).

A :class:`DataflowProblem` supplies the lattice (top, meet) and monotone
transfer functions; :func:`solve` computes the good solution by iteration to
a fixpoint.  The solver makes no reducibility assumption — the paper notes
that tracing produces irreducible graphs, so "tracing should only be used
with data-flow solvers that can handle irreducible graphs", and iterative
solving is exactly such a solver.

Problems are written against a :class:`~repro.dataflow.graph_view.GraphView`,
so every instance runs unchanged on hot-path graphs: that is the qualified
analysis of Definition 6, where the traced problem keeps the lattice and
transfer functions of the original and only the graph changes.

Three worklist strategies are available behind the same :func:`solve`
signature:

* ``"rpo"`` (default) — a priority worklist ordered by reverse postorder in
  the direction of the analysis.  On the irreducible, retreating-edge-heavy
  hot-path graphs tracing produces, processing a vertex only after its
  forward predecessors cuts revisits dramatically relative to a LIFO stack.
* ``"lifo"`` — the historical stack-based worklist, kept for comparison.
* ``"round_robin"`` — chaotic iteration: full sweeps over all vertices until
  a sweep changes nothing.  Deliberately simple; it is the reference
  implementation the property-based tests compare the others against.

Every strategy handles the start vertex uniformly inside the loop: its input
is always ``boundary() ⊓ (meet of predecessor outputs)``, so a start vertex
with predecessors — possible on hot-path graphs, e.g. a retreating edge back
to the entry copy — never consumes a stale input computed before iteration
began.
"""

from __future__ import annotations

import contextvars
import heapq
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Generic, Hashable, Optional, TypeVar

from ..ir.basic_block import BasicBlock
from ..obs import get_metrics, get_tracer
from .graph_view import GraphView

L = TypeVar("L")
Vertex = Hashable

SOLVER_STRATEGIES = ("rpo", "lifo", "round_robin")

#: ``generic`` re-runs transfer functions each relaxation (the oracle);
#: ``compiled`` lowers separable problems to gen/kill bitsets (see
#: :mod:`repro.dataflow.compiled`); ``auto`` picks compiled exactly when the
#: problem overrides :meth:`DataflowProblem.as_genkill`.
DATAFLOW_ENGINES = ("auto", "generic", "compiled")

_DEFAULT_ENGINE = "auto"

#: Context-carried engine override (:func:`engine_scope`).  A contextvar
#: rather than the module global, so concurrent threads — e.g. two analysis
#: service requests with different ``dataflow_engine`` knobs — scope their
#: engines independently instead of racing on a process-wide default.
_SCOPED_ENGINE: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_dataflow_engine", default=None
)


def get_default_engine() -> str:
    """The engine :func:`solve` uses when called without ``engine=``: the
    innermost :func:`engine_scope` of the current context, else the
    process-wide default."""
    scoped = _SCOPED_ENGINE.get()
    return scoped if scoped is not None else _DEFAULT_ENGINE


def set_default_engine(engine: str) -> str:
    """Install a new process-wide default engine; returns the previous one."""
    global _DEFAULT_ENGINE
    if engine not in DATAFLOW_ENGINES:
        raise ValueError(
            f"bad dataflow engine {engine!r}; choose from {DATAFLOW_ENGINES}"
        )
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


@contextmanager
def engine_scope(engine: str):
    """Run a block under a different default engine (how the harness and
    CLI thread ``--dataflow-engine`` through code that calls :func:`solve`
    many layers down without widening every signature).  Thread-safe: the
    override is visible only to the context that entered the scope."""
    if engine not in DATAFLOW_ENGINES:
        raise ValueError(
            f"bad dataflow engine {engine!r}; choose from {DATAFLOW_ENGINES}"
        )
    token = _SCOPED_ENGINE.set(engine)
    try:
        yield
    finally:
        _SCOPED_ENGINE.reset(token)


class DataflowProblem(ABC, Generic[L]):
    """A monotone data-flow problem over a graph view."""

    #: "forward" or "backward".
    direction: str = "forward"

    @abstractmethod
    def top(self) -> L:
        """The lattice top (the initial optimistic value)."""

    @abstractmethod
    def meet(self, a: L, b: L) -> L:
        """The lattice meet (greatest lower bound)."""

    @abstractmethod
    def boundary(self) -> L:
        """The value at the graph boundary: the entry for forward problems,
        the exit for backward problems (the paper's ``l_r``)."""

    @abstractmethod
    def transfer(self, vertex: Vertex, block: Optional[BasicBlock], value: L) -> L:
        """The transfer function of ``vertex`` (identity for virtual
        vertices, i.e. when ``block`` is None, unless overridden)."""

    def equal(self, a: L, b: L) -> bool:
        """Lattice-value equality (override for non-``==`` representations)."""
        return a == b

    def as_genkill(self, view: GraphView):
        """Lower this problem over ``view`` to a gen/kill bitset spec.

        The base implementation returns ``None``: the problem is not
        separable and always solves through the generic engine.  Separable
        problems override this (usually via
        :func:`repro.dataflow.compiled.build_genkill`) and thereby opt in
        to the compiled engine under ``engine="auto"``.  An override may
        still return ``None`` for a particular view to decline it.
        """
        return None


class SolverBudgetExceeded(RuntimeError):
    """A vertex exceeded the solver's per-vertex visit budget.

    Monotone problems over finite lattices always converge, so hitting the
    budget means either a non-monotone transfer function, an ``equal`` that
    never stabilizes, or an infinite-ascending-chain lattice — all contract
    violations worth failing loudly on rather than spinning forever.
    """


@dataclass
class SolverStats:
    """Work accounting for one :func:`solve` call."""

    strategy: str
    #: Which engine did the work ("generic" or "compiled").
    engine: str = "generic"
    #: Vertices popped (or swept) and relaxed, total.
    visits: int = 0
    #: Relaxations per vertex.
    visits_by_vertex: dict = field(default_factory=dict)
    #: Largest worklist observed (sweep width for round_robin).
    peak_worklist: int = 0
    #: Worklist insertions, including the initial seeding (0 for the
    #: sweep-based round_robin strategy, which has no worklist).
    pushes: int = 0

    def count(self, v: Vertex) -> int:
        self.visits += 1
        n = self.visits_by_vertex.get(v, 0) + 1
        self.visits_by_vertex[v] = n
        return n

    @property
    def max_visits_per_vertex(self) -> int:
        return max(self.visits_by_vertex.values(), default=0)


@dataclass
class Solution(Generic[L]):
    """Fixpoint solution: values at vertex entry and exit.

    For backward problems ``value_in`` is the value *flowing into* the vertex
    from its successors (i.e. at the vertex's exit in program order) and
    ``value_out`` the transferred value.
    """

    value_in: dict[Vertex, L]
    value_out: dict[Vertex, L]
    #: Present when :func:`solve` was asked to collect work accounting.
    stats: Optional[SolverStats] = None


def priority_order(cfg, forward: bool = True) -> dict[Vertex, int]:
    """Reverse-postorder priority of every vertex, in the analysis direction.

    Forward problems get RPO from the entry over successor edges; backward
    problems get RPO from the exit over predecessor edges.  Vertices
    unreachable in that direction (possible on hot-path graphs and on raw
    test graphs) are appended after the reachable ones in insertion order,
    so every vertex has a priority and none is starved.
    """
    start = cfg.entry if forward else cfg.exit
    next_of = cfg.succs if forward else cfg.preds
    post: list[Vertex] = []
    color: dict[Vertex, int] = {start: 1}
    stack: list[tuple[Vertex, int]] = [(start, 0)]
    while stack:
        v, i = stack[-1]
        succs = next_of(v)
        if i < len(succs):
            stack[-1] = (v, i + 1)
            w = succs[i]
            if color.get(w, 0) == 0:
                color[w] = 1
                stack.append((w, 0))
        else:
            color[v] = 2
            post.append(v)
            stack.pop()
    order = list(reversed(post))
    placed = set(order)
    for v in cfg.vertices:
        if v not in placed:
            order.append(v)
    return {v: i for i, v in enumerate(order)}


def solve(
    problem: DataflowProblem[L],
    view: GraphView,
    *,
    strategy: str = "rpo",
    max_visits: Optional[int] = None,
    collect_stats: bool = False,
    engine: Optional[str] = None,
) -> Solution[L]:
    """Iterate ``problem`` over ``view`` to its greatest fixpoint.

    ``strategy`` picks the worklist discipline (see the module docstring);
    ``max_visits`` caps relaxations per vertex (a divergence safety valve —
    :class:`SolverBudgetExceeded` is raised when exceeded); with
    ``collect_stats`` the returned :class:`Solution` carries a
    :class:`SolverStats` describing the work done.  ``engine`` overrides the
    process default (:func:`set_default_engine`): ``"compiled"`` demands the
    bitset kernel (an error for non-separable problems), ``"generic"``
    forces the oracle, ``"auto"`` — the default default — compiles the
    problems that declare a gen/kill lowering, but only on graphs with at
    least :data:`~repro.dataflow.compiled.AUTO_MIN_VERTICES` vertices; below
    that the kernel's fixed costs are not amortized and the generic solver
    is faster.
    """
    forward = problem.direction == "forward"
    if not forward and problem.direction != "backward":
        raise ValueError(f"bad direction {problem.direction!r}")
    if strategy not in SOLVER_STRATEGIES:
        raise ValueError(
            f"bad strategy {strategy!r}; choose from {SOLVER_STRATEGIES}"
        )
    if engine is None:
        engine = get_default_engine()
    if engine not in DATAFLOW_ENGINES:
        raise ValueError(
            f"bad dataflow engine {engine!r}; choose from {DATAFLOW_ENGINES}"
        )
    if engine != "generic":
        separable = type(problem).as_genkill is not DataflowProblem.as_genkill
        if separable:
            from .compiled import AUTO_MIN_VERTICES, solve_compiled

            # Under "auto" the kernel must also *pay off*: on tiny graphs
            # its lowering/decode overhead loses to the generic solver, so
            # auto takes the generic path below the measured crossover.
            if (
                engine == "compiled"
                or view.cfg.num_vertices >= AUTO_MIN_VERTICES
            ):
                solution = solve_compiled(
                    problem,
                    view,
                    strategy=strategy,
                    max_visits=max_visits,
                    collect_stats=collect_stats,
                )
                if solution is not None:
                    return solution
        elif engine == "compiled":
            raise ValueError(
                f"{type(problem).__name__} declares no gen/kill lowering; "
                f"it cannot run on the compiled engine"
            )

    cfg = view.cfg
    start = cfg.entry if forward else cfg.exit
    next_of = cfg.succs if forward else cfg.preds
    prev_of = cfg.preds if forward else cfg.succs

    value_in: dict[Vertex, L] = {}
    value_out: dict[Vertex, L] = {}
    for v in cfg.vertices:
        value_in[v] = problem.top()
        value_out[v] = problem.top()
    value_in[start] = problem.boundary()

    stats = SolverStats(strategy=strategy)

    def relax(v: Vertex) -> bool:
        """Recompute ``v``'s input and output; True if the output changed."""
        if max_visits is not None and stats.count(v) > max_visits:
            get_metrics().counter(
                "solver_budget_exceeded", strategy=strategy
            ).inc()
            raise SolverBudgetExceeded(
                f"vertex {v!r} relaxed more than {max_visits} times "
                f"(strategy={strategy})"
            )
        if max_visits is None:
            stats.count(v)
        preds = prev_of(v)
        if v == start:
            # The boundary always contributes, and so does every predecessor
            # — a start vertex with a self-loop or other incoming edge gets
            # both, on the first relaxation and on every later one.
            acc = problem.boundary()
            for p in preds:
                acc = problem.meet(acc, value_out[p])
            value_in[v] = acc
        elif preds:
            acc = value_out[preds[0]]
            for p in preds[1:]:
                acc = problem.meet(acc, value_out[p])
            value_in[v] = acc
        new_out = problem.transfer(v, view.block_of(v), value_in[v])
        if problem.equal(new_out, value_out[v]):
            return False
        value_out[v] = new_out
        return True

    with get_tracer().span(
        "dataflow.solve",
        strategy=strategy,
        direction=problem.direction,
        vertices=len(value_in),
        engine="generic",
    ) as span:
        if strategy == "round_robin":
            order = list(cfg.vertices)
            stats.peak_worklist = len(order)
            changed = True
            while changed:
                changed = False
                for v in order:
                    if relax(v):
                        changed = True
        elif strategy == "lifo":
            worklist = list(cfg.vertices)
            on_list = set(worklist)
            stats.pushes = len(worklist)
            while worklist:
                stats.peak_worklist = max(stats.peak_worklist, len(worklist))
                v = worklist.pop()
                on_list.discard(v)
                if relax(v):
                    for w in next_of(v):
                        if w not in on_list:
                            worklist.append(w)
                            on_list.add(w)
                            stats.pushes += 1
        else:  # rpo priority worklist
            prio = priority_order(cfg, forward)
            heap: list[tuple[int, Vertex]] = [(prio[v], v) for v in cfg.vertices]
            heapq.heapify(heap)
            on_list = set(cfg.vertices)
            stats.pushes = len(heap)
            while heap:
                stats.peak_worklist = max(stats.peak_worklist, len(heap))
                _, v = heapq.heappop(heap)
                on_list.discard(v)
                if relax(v):
                    for w in next_of(v):
                        if w not in on_list:
                            heapq.heappush(heap, (prio[w], w))
                            on_list.add(w)
                            stats.pushes += 1
        span.set(visits=stats.visits)

    _emit_solver_metrics(stats, max_visits)
    return Solution(value_in, value_out, stats if collect_stats else None)


#: Relaxations per vertex at the fixpoint; >8 on these small graphs means a
#: pathological iteration order worth investigating.
_VISIT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


def _emit_solver_metrics(stats: SolverStats, max_visits: Optional[int]) -> None:
    """Publish one solve call's work accounting (no-op when metrics are
    disabled, so the solver costs nothing extra in normal runs)."""
    metrics = get_metrics()
    if not metrics.enabled:
        return
    labels = {"strategy": stats.strategy, "engine": stats.engine}
    metrics.counter("solver_solves", **labels).inc()
    metrics.counter("solver_visits", **labels).inc(stats.visits)
    metrics.counter("solver_pushes", **labels).inc(stats.pushes)
    metrics.histogram(
        "solver_max_visits_per_vertex", buckets=_VISIT_BUCKETS, **labels
    ).observe(stats.max_visits_per_vertex)
    if max_visits is not None:
        metrics.gauge("solver_visit_budget", **labels).set(max_visits)
