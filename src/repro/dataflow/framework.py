"""The generic monotone data-flow framework (Definitions 1–4 of the paper).

A :class:`DataflowProblem` supplies the lattice (top, meet) and monotone
transfer functions; :func:`solve` computes the good solution by iteration to
a fixpoint.  The solver makes no reducibility assumption — the paper notes
that tracing produces irreducible graphs, so "tracing should only be used
with data-flow solvers that can handle irreducible graphs", and iterative
solving is exactly such a solver.

Problems are written against a :class:`~repro.dataflow.graph_view.GraphView`,
so every instance runs unchanged on hot-path graphs: that is the qualified
analysis of Definition 6, where the traced problem keeps the lattice and
transfer functions of the original and only the graph changes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Generic, Hashable, Optional, TypeVar

from ..ir.basic_block import BasicBlock
from .graph_view import GraphView

L = TypeVar("L")
Vertex = Hashable


class DataflowProblem(ABC, Generic[L]):
    """A monotone data-flow problem over a graph view."""

    #: "forward" or "backward".
    direction: str = "forward"

    @abstractmethod
    def top(self) -> L:
        """The lattice top (the initial optimistic value)."""

    @abstractmethod
    def meet(self, a: L, b: L) -> L:
        """The lattice meet (greatest lower bound)."""

    @abstractmethod
    def boundary(self) -> L:
        """The value at the graph boundary: the entry for forward problems,
        the exit for backward problems (the paper's ``l_r``)."""

    @abstractmethod
    def transfer(self, vertex: Vertex, block: Optional[BasicBlock], value: L) -> L:
        """The transfer function of ``vertex`` (identity for virtual
        vertices, i.e. when ``block`` is None, unless overridden)."""

    def equal(self, a: L, b: L) -> bool:
        """Lattice-value equality (override for non-``==`` representations)."""
        return a == b


@dataclass
class Solution(Generic[L]):
    """Fixpoint solution: values at vertex entry and exit.

    For backward problems ``value_in`` is the value *flowing into* the vertex
    from its successors (i.e. at the vertex's exit in program order) and
    ``value_out`` the transferred value.
    """

    value_in: dict[Vertex, L]
    value_out: dict[Vertex, L]


def solve(problem: DataflowProblem[L], view: GraphView) -> Solution[L]:
    """Iterate ``problem`` over ``view`` to its greatest fixpoint."""
    cfg = view.cfg
    forward = problem.direction == "forward"
    if not forward and problem.direction != "backward":
        raise ValueError(f"bad direction {problem.direction!r}")

    start = cfg.entry if forward else cfg.exit
    next_of = cfg.succs if forward else cfg.preds
    prev_of = cfg.preds if forward else cfg.succs

    value_in: dict[Vertex, L] = {}
    value_out: dict[Vertex, L] = {}
    for v in cfg.vertices:
        value_in[v] = problem.top()
        value_out[v] = problem.top()
    value_in[start] = problem.boundary()
    value_out[start] = problem.transfer(start, view.block_of(start), value_in[start])

    worklist = list(cfg.vertices)
    on_list = set(worklist)
    while worklist:
        v = worklist.pop()
        on_list.discard(v)
        preds = prev_of(v)
        if preds:
            acc = value_out[preds[0]]
            for p in preds[1:]:
                acc = problem.meet(acc, value_out[p])
            if v == start:
                acc = problem.meet(acc, problem.boundary())
            value_in[v] = acc
        new_out = problem.transfer(v, view.block_of(v), value_in[v])
        if not problem.equal(new_out, value_out[v]):
            value_out[v] = new_out
            for w in next_of(v):
                if w not in on_list:
                    worklist.append(w)
                    on_list.add(w)
    return Solution(value_in, value_out)
