"""Data-flow analysis: lattices, the monotone framework, the iterative
solver, and Wegman–Zadek conditional constant propagation."""

from .framework import (
    DATAFLOW_ENGINES,
    DataflowProblem,
    Solution,
    SolverBudgetExceeded,
    SolverStats,
    engine_scope,
    get_default_engine,
    priority_order,
    set_default_engine,
    solve,
)
from .graph_view import GraphView
from .lattice import (
    BOT,
    TOP,
    UNREACHABLE,
    ConstEnv,
    EnvValue,
    FlatValue,
    is_const,
    leq_env,
    leq_flat,
    meet_env,
    meet_flat,
)
from .local import local_constant_sites
from .mop import mop_for_function, mop_solution
from .transfer import (
    block_site_values,
    eval_operand,
    eval_pure,
    transfer_block,
    transfer_instr,
)
from .wegman_zadek import (
    WZ_ENGINES,
    CondConstResult,
    analyze,
    get_default_wz_engine,
    set_default_wz_engine,
    wz_engine_scope,
)

__all__ = [
    "analyze",
    "block_site_values",
    "BOT",
    "DATAFLOW_ENGINES",
    "engine_scope",
    "get_default_engine",
    "set_default_engine",
    "priority_order",
    "SolverBudgetExceeded",
    "SolverStats",
    "CondConstResult",
    "ConstEnv",
    "DataflowProblem",
    "EnvValue",
    "eval_operand",
    "eval_pure",
    "FlatValue",
    "GraphView",
    "is_const",
    "leq_env",
    "leq_flat",
    "local_constant_sites",
    "meet_env",
    "meet_flat",
    "mop_for_function",
    "mop_solution",
    "Solution",
    "solve",
    "TOP",
    "transfer_block",
    "transfer_instr",
    "UNREACHABLE",
    "WZ_ENGINES",
    "get_default_wz_engine",
    "set_default_wz_engine",
    "wz_engine_scope",
]
