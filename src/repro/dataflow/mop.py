"""A reference meet-over-all-paths (MOP) solver.

§2 of the paper frames everything against the meet-over-all-paths solution
``l_v = /\\ M(p)(l_r)`` over all entry paths ``p``.  This module computes
that meet *by enumeration* for the constant-propagation problem, bounding
loop unrolling, so tests can compare the iterative and qualified solutions
against the theoretical reference:

* on acyclic graphs the enumeration is exact;
* constant propagation is not distributive, so the iterative fixpoint may be
  strictly below MOP (the classic ``x = a + b`` diamond) — a property test
  asserts the ≤ direction;
* the qualified solution at a traced vertex ``(v, q)`` meets only over the
  paths driving the automaton to ``q``, which is why it can beat MOP
  (§1.1's partition argument).

Exponential in the worst case — a test/reference tool, not a production
solver.
"""

from __future__ import annotations

from typing import Hashable, Optional

from .graph_view import GraphView
from .lattice import UNREACHABLE, ConstEnv, EnvValue, meet_env
from .transfer import transfer_block

Vertex = Hashable


def mop_solution(
    view: GraphView,
    entry_env: Optional[ConstEnv] = None,
    max_paths: int = 20_000,
    max_occurrences: int = 2,
) -> dict[Vertex, EnvValue]:
    """Enumerate entry paths and meet their environments at each vertex.

    ``max_occurrences`` bounds how often a vertex may repeat on one path
    (loop unrolling depth); on acyclic graphs any value >= 1 is exact.
    Raises :class:`RuntimeError` if more than ``max_paths`` paths arise.
    """
    if entry_env is None:
        entry_env = ConstEnv()
    solution: dict[Vertex, EnvValue] = {v: UNREACHABLE for v in view.cfg.vertices}
    counter = {"paths": 0}

    def walk(vertex: Vertex, env: ConstEnv, seen: dict[Vertex, int]) -> None:
        counter["paths"] += 1
        if counter["paths"] > max_paths:
            raise RuntimeError(f"more than {max_paths} paths; graph too large")
        solution[vertex] = meet_env(solution[vertex], env)
        block = view.block_of(vertex)
        out_env = transfer_block(block, env) if block is not None else env
        for succ in view.cfg.succs(vertex):
            occurrences = seen.get(succ, 0)
            if occurrences >= max_occurrences:
                continue
            next_seen = dict(seen)
            next_seen[succ] = occurrences + 1
            walk(succ, out_env, next_seen)

    start_env = entry_env
    walk(view.cfg.entry, start_env, {view.cfg.entry: 1})
    return solution


def mop_for_function(view: GraphView, **kwargs) -> dict[Vertex, EnvValue]:
    """MOP with the standard boundary: parameters bottom, all else top."""
    from .lattice import BOT

    entry_env = ConstEnv({p: BOT for p in view.params})
    return mop_solution(view, entry_env, **kwargs)
