"""Available expressions (forward, must, intersection meet).

The lattice top is the special token :data:`ALL` (the universal set), so the
meet behaves correctly before a vertex has been visited.  Expressions are
canonicalized: commutative operators order their operands.
"""

from __future__ import annotations

from typing import Hashable, Optional, Union

from ...ir.basic_block import BasicBlock
from ...ir.instructions import BinOp, Instr, UnOp
from ...ir.operands import Const, Operand, Var
from ...ir.ops import COMMUTATIVE
from ..compiled import build_genkill
from ..framework import DataflowProblem

Vertex = Hashable


class _All:
    __slots__ = ()

    def __repr__(self) -> str:
        return "ALL"

    def __reduce__(self):
        # Preserve singleton identity across pickling (artifact cache,
        # process-pool workers).
        return "ALL"


ALL = _All()
ExprSet = Union[frozenset, _All]

#: A canonical expression: (op, operand keys...).
Expr = tuple


def _operand_key(op: Operand):
    return ("c", op.value) if isinstance(op, Const) else ("v", op.name)


def expression_of(instr: Instr) -> Optional[Expr]:
    """The canonical expression computed by ``instr`` (None if it computes
    nothing re-usable)."""
    if isinstance(instr, BinOp):
        a, b = _operand_key(instr.lhs), _operand_key(instr.rhs)
        if instr.op in COMMUTATIVE and b < a:
            a, b = b, a
        return (instr.op, a, b)
    if isinstance(instr, UnOp):
        return (instr.op, _operand_key(instr.src))
    return None


def _expr_vars(expr: Expr) -> tuple[str, ...]:
    return tuple(key[1] for key in expr[1:] if key[0] == "v")


class AvailableExpressions(DataflowProblem[ExprSet]):
    """Which expressions are available (computed on every path, operands
    unchanged since) at each vertex entry."""

    direction = "forward"

    def top(self) -> ExprSet:
        return ALL

    def meet(self, a: ExprSet, b: ExprSet) -> ExprSet:
        if a is ALL:
            return b
        if b is ALL:
            return a
        return a & b

    def boundary(self) -> ExprSet:
        return frozenset()

    def equal(self, a: ExprSet, b: ExprSet) -> bool:
        if a is ALL or b is ALL:
            return a is b
        return a == b

    def transfer(
        self, vertex: Vertex, block: Optional[BasicBlock], value: ExprSet
    ) -> ExprSet:
        if block is None or value is ALL:
            # ALL only flows through virtual vertices; real blocks are
            # reached from the entry whose boundary is the empty set.
            if block is None:
                return value
        current: set[Expr] = set() if value is ALL else set(value)
        for instr in block.instrs:
            expr = expression_of(instr)
            if expr is not None:
                current.add(expr)
            if instr.dest is not None:
                current = {
                    e for e in current if instr.dest not in _expr_vars(e)
                }
        return frozenset(current)

    def as_genkill(self, view):
        def lower(vertex, block):
            # Forward scan, gen before kill per instruction (transfer()
            # adds the computed expression, then the destination clears
            # expressions using it — including that one, for x = x + y).
            gen = dict[Expr, bool]()
            killed = set()
            for instr in block.instrs:
                expr = expression_of(instr)
                if expr is not None:
                    gen[expr] = True
                if instr.dest is not None:
                    killed.add(instr.dest)
                    for e in [e for e in gen if instr.dest in _expr_vars(e)]:
                        del gen[e]
            return tuple(gen), tuple(killed)

        return build_genkill(
            self, view, meet="intersection", lower_block=lower,
            fact_vars=_expr_vars,
        )
