"""Plain constant propagation as a generic framework instance.

The Wegman–Zadek module implements *conditional* constant propagation with
its own SSA-less worklist; this is the textbook unconditional variant over
the same flat lattice and abstract evaluator, packaged as a
:class:`~repro.dataflow.framework.DataflowProblem` so it can run on any
graph view (including hot-path graphs) and serve as a differential-testing
counterpart for the solver strategies.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ...ir.basic_block import BasicBlock
from ..framework import DataflowProblem
from ..lattice import BOT, ConstEnv, EnvValue, UNREACHABLE, meet_env
from ..transfer import transfer_block

Vertex = Hashable


class ConstantPropagation(DataflowProblem[EnvValue]):
    """Forward must-analysis: which variables are compile-time constants.

    The lattice point is either :data:`UNREACHABLE` (the environment-lattice
    top, for vertices no iteration has reached yet) or a
    :class:`~repro.dataflow.lattice.ConstEnv`.  Parameters are
    :data:`~repro.dataflow.lattice.BOT` at the boundary, matching the
    interpreter's taint model.
    """

    direction = "forward"

    def __init__(self, params: tuple[str, ...] = ()) -> None:
        self.params = params

    def top(self) -> EnvValue:
        return UNREACHABLE

    def meet(self, a: EnvValue, b: EnvValue) -> EnvValue:
        return meet_env(a, b)

    def boundary(self) -> EnvValue:
        env = ConstEnv()
        for p in self.params:
            env = env.set(p, BOT)
        return env

    def transfer(
        self, vertex: Vertex, block: Optional[BasicBlock], value: EnvValue
    ) -> EnvValue:
        if value is UNREACHABLE or block is None:
            return value
        return transfer_block(block, value)
