"""Live variables (backward, may, union meet)."""

from __future__ import annotations

from typing import Hashable, Optional

from ...ir.basic_block import BasicBlock
from ...ir.operands import Var
from ..compiled import build_genkill
from ..framework import DataflowProblem

Vertex = Hashable


class LiveVariables(DataflowProblem[frozenset]):
    """Which variables are live (may be read before redefinition) at each
    point; the per-vertex solution is liveness at block *entry*."""

    direction = "backward"

    def top(self) -> frozenset:
        return frozenset()

    def meet(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def boundary(self) -> frozenset:
        return frozenset()

    def transfer(
        self, vertex: Vertex, block: Optional[BasicBlock], value: frozenset
    ) -> frozenset:
        if block is None:
            return value
        live = set(value)
        if block.terminator is not None:
            for op in block.terminator.uses():
                if isinstance(op, Var):
                    live.add(op.name)
        for instr in reversed(block.instrs):
            if instr.dest is not None:
                live.discard(instr.dest)
            for op in instr.uses():
                if isinstance(op, Var):
                    live.add(op.name)
        return frozenset(live)

    def as_genkill(self, view):
        def lower(vertex, block):
            # Net gen = upward-exposed uses: the same backward scan as
            # transfer() (terminator uses count as the block's end), run
            # from the empty set.
            gen = dict[str, bool]()
            killed = set()
            if block.terminator is not None:
                for op in block.terminator.uses():
                    if isinstance(op, Var):
                        gen[op.name] = True
            for instr in reversed(block.instrs):
                if instr.dest is not None:
                    gen.pop(instr.dest, None)
                    killed.add(instr.dest)
                for op in instr.uses():
                    if isinstance(op, Var):
                        gen[op.name] = True
            return tuple(gen), tuple(killed)

        return build_genkill(
            self, view, meet="union", lower_block=lower,
            fact_vars=lambda v: (v,),
        )
