"""Classic data-flow problem instances.

These demonstrate that the framework — and therefore path qualification,
which only swaps the graph — applies to any monotone problem, as the paper
states ("the technique can be applied to any data-flow problem").
"""

from .available_exprs import ALL, AvailableExpressions
from .const_prop import ConstantPropagation
from .copy_prop import CopyPropagation
from .liveness import LiveVariables
from .signs import NEG, POS, ZERO, SignAnalysis
from .very_busy import VeryBusyExpressions
from .reaching_defs import ReachingDefinitions

__all__ = [
    "ALL",
    "AvailableExpressions",
    "ConstantPropagation",
    "CopyPropagation",
    "LiveVariables",
    "NEG",
    "POS",
    "SignAnalysis",
    "VeryBusyExpressions",
    "ZERO",
    "ReachingDefinitions",
]
