"""Very busy (anticipated) expressions — backward, must, intersection meet.

An expression is very busy at a point if it is evaluated on *every* path
from that point before any of its operands change.  The classic use is code
hoisting; here it completes the framework's coverage of the four classic
bit-vector problems (reaching defs: forward/may; liveness: backward/may;
available exprs: forward/must; very busy: backward/must).
"""

from __future__ import annotations

from typing import Hashable, Optional, Union

from ...ir.basic_block import BasicBlock
from ..compiled import build_genkill
from ..framework import DataflowProblem
from .available_exprs import ALL, Expr, _All, _expr_vars, expression_of

Vertex = Hashable
ExprSet = Union[frozenset, _All]


class VeryBusyExpressions(DataflowProblem[ExprSet]):
    """Which expressions are very busy on entry to each vertex.

    ``value_out`` of a vertex is the set at its *entry* in program order
    (the backward solver's transferred value)."""

    direction = "backward"

    def top(self) -> ExprSet:
        return ALL

    def meet(self, a: ExprSet, b: ExprSet) -> ExprSet:
        if a is ALL:
            return b
        if b is ALL:
            return a
        return a & b

    def boundary(self) -> ExprSet:
        return frozenset()

    def equal(self, a: ExprSet, b: ExprSet) -> bool:
        if a is ALL or b is ALL:
            return a is b
        return a == b

    def transfer(
        self, vertex: Vertex, block: Optional[BasicBlock], value: ExprSet
    ) -> ExprSet:
        if block is None:
            return value
        current: set[Expr] = set() if value is ALL else set(value)
        for instr in reversed(block.instrs):
            if instr.dest is not None:
                # Backward: kill before gen of the same instruction, so an
                # expression using its own destination is not anticipated
                # above the redefinition.
                current = {
                    e for e in current if instr.dest not in _expr_vars(e)
                }
            expr = expression_of(instr)
            if expr is not None:
                current.add(expr)
        return frozenset(current)

    def as_genkill(self, view):
        def lower(vertex, block):
            # Reversed scan, kill before gen per instruction — so an
            # expression using its own destination IS anticipated above
            # the redefinition, exactly as in transfer().
            gen = dict[Expr, bool]()
            killed = set()
            for instr in reversed(block.instrs):
                if instr.dest is not None:
                    killed.add(instr.dest)
                    for e in [e for e in gen if instr.dest in _expr_vars(e)]:
                        del gen[e]
                expr = expression_of(instr)
                if expr is not None:
                    gen[expr] = True
            return tuple(gen), tuple(killed)

        return build_genkill(
            self, view, meet="intersection", lower_block=lower,
            fact_vars=_expr_vars,
        )
