"""Copy propagation (forward, must, intersection meet).

Tracks ``dest = src`` copies between variables that hold on every path.
"""

from __future__ import annotations

from typing import Hashable, Optional, Union

from ...ir.basic_block import BasicBlock
from ...ir.instructions import Assign
from ...ir.operands import Var
from ..compiled import build_genkill
from ..framework import DataflowProblem
from .available_exprs import ALL, _All

Vertex = Hashable
#: A valid copy: (dest, src) meaning dest currently equals src.
Copy = tuple[str, str]
CopySet = Union[frozenset, _All]


class CopyPropagation(DataflowProblem[CopySet]):
    """Which variable-to-variable copies hold at each vertex entry."""

    direction = "forward"

    def top(self) -> CopySet:
        return ALL

    def meet(self, a: CopySet, b: CopySet) -> CopySet:
        if a is ALL:
            return b
        if b is ALL:
            return a
        return a & b

    def boundary(self) -> CopySet:
        return frozenset()

    def equal(self, a: CopySet, b: CopySet) -> bool:
        if a is ALL or b is ALL:
            return a is b
        return a == b

    def transfer(
        self, vertex: Vertex, block: Optional[BasicBlock], value: CopySet
    ) -> CopySet:
        if block is None:
            return value
        current: set[Copy] = set() if value is ALL else set(value)
        for instr in block.instrs:
            if instr.dest is not None:
                # Kill copies involving the redefined variable.
                current = {
                    c for c in current if instr.dest not in c
                }
            if isinstance(instr, Assign) and isinstance(instr.src, Var):
                if instr.dest != instr.src.name:
                    current.add((instr.dest, instr.src.name))
        return frozenset(current)

    def as_genkill(self, view):
        def lower(vertex, block):
            # A copy is cleared when EITHER side is redefined, so both
            # tuple components are the fact's variables.
            gen = dict[Copy, bool]()
            killed = set()
            for instr in block.instrs:
                if instr.dest is not None:
                    killed.add(instr.dest)
                    for c in [c for c in gen if instr.dest in c]:
                        del gen[c]
                if isinstance(instr, Assign) and isinstance(instr.src, Var):
                    if instr.dest != instr.src.name:
                        gen[(instr.dest, instr.src.name)] = True
            return tuple(gen), tuple(killed)

        return build_genkill(
            self, view, meet="intersection", lower_block=lower,
            fact_vars=lambda c: c,
        )
