"""Reaching definitions (forward, may, union meet).

A definition is identified by ``(vertex, instruction index, variable)``;
parameters are defined at the virtual entry with index ``-1 - position``.
On a hot-path graph the same original instruction yields distinct definitions
per duplicate, so qualified reaching-defs can distinguish which *path copy*
of a definition reaches a use — the example application in
``examples/qualified_reaching_defs.py``.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ...ir.basic_block import BasicBlock
from ..compiled import build_genkill
from ..framework import DataflowProblem

Vertex = Hashable
#: (defining vertex, instruction index, variable name)
Definition = tuple[Vertex, int, str]


class ReachingDefinitions(DataflowProblem[frozenset]):
    """Which definitions may reach each vertex."""

    direction = "forward"

    def __init__(self, params: tuple[str, ...], entry_vertex: Vertex) -> None:
        self.params = params
        self.entry_vertex = entry_vertex

    def top(self) -> frozenset:
        return frozenset()

    def meet(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def boundary(self) -> frozenset:
        return frozenset(
            (self.entry_vertex, -1 - i, p) for i, p in enumerate(self.params)
        )

    def transfer(
        self, vertex: Vertex, block: Optional[BasicBlock], value: frozenset
    ) -> frozenset:
        if block is None:
            return value
        defs = dict[str, Definition]()
        for idx, instr in enumerate(block.instrs):
            if instr.dest is not None:
                defs[instr.dest] = (vertex, idx, instr.dest)
        if not defs:
            return value
        killed_vars = set(defs)
        survivors = frozenset(d for d in value if d[2] not in killed_vars)
        return survivors | frozenset(defs.values())

    def as_genkill(self, view):
        def lower(vertex, block):
            # Net gen is the LAST definition per variable, mirroring the
            # dict overwrite in transfer(); the kill covers every defined
            # variable.
            defs = dict[str, Definition]()
            for idx, instr in enumerate(block.instrs):
                if instr.dest is not None:
                    defs[instr.dest] = (vertex, idx, instr.dest)
            return tuple(defs.values()), tuple(defs)

        return build_genkill(
            self, view, meet="union", lower_block=lower,
            fact_vars=lambda d: (d[2],),
        )


def definitions_of(block: BasicBlock, vertex: Vertex) -> tuple[Definition, ...]:
    """All definitions made by ``block`` (not just the last per variable)."""
    return tuple(
        (vertex, idx, instr.dest)
        for idx, instr in enumerate(block.instrs)
        if instr.dest is not None
    )
