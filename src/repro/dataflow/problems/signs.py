"""Sign analysis (forward, flat sign lattice per variable).

A second *value* analysis (besides constant propagation) that path
qualification sharpens: branch legs often bind values of known sign, and
the signs merge at joins exactly like constants do.  Also a stress test for
the framework with a slightly richer lattice:

        TOP  (no evidence yet)
      /  |  \\
    NEG ZERO POS
      \\  |  /
        BOT  (any sign)
"""

from __future__ import annotations

from typing import Hashable, Optional

from ...ir.basic_block import BasicBlock
from ...ir.instructions import Assign, BinOp, Call, Load, UnOp
from ...ir.operands import Const, Operand, Var
from ..framework import DataflowProblem

Vertex = Hashable

TOP = "top"
NEG = "neg"
ZERO = "zero"
POS = "pos"
BOT = "bot"

Sign = str
#: Environment: variable -> sign; absent means TOP.
SignEnv = frozenset  # of (name, sign) pairs


def sign_of(value: int) -> Sign:
    if value > 0:
        return POS
    if value < 0:
        return NEG
    return ZERO


def meet_sign(a: Sign, b: Sign) -> Sign:
    if a == TOP:
        return b
    if b == TOP:
        return a
    if a == b:
        return a
    return BOT


_ADD_TABLE = {
    (POS, POS): POS,
    (NEG, NEG): NEG,
    (ZERO, ZERO): ZERO,
    (POS, ZERO): POS,
    (ZERO, POS): POS,
    (NEG, ZERO): NEG,
    (ZERO, NEG): NEG,
}

_MUL_SIGNS = {POS: 1, NEG: -1, ZERO: 0}


def add_signs(a: Sign, b: Sign) -> Sign:
    if a in (TOP, BOT) or b in (TOP, BOT):
        return BOT if BOT in (a, b) else TOP
    return _ADD_TABLE.get((a, b), BOT)


def mul_signs(a: Sign, b: Sign) -> Sign:
    if a in (TOP, BOT) or b in (TOP, BOT):
        return BOT if BOT in (a, b) else TOP
    product = _MUL_SIGNS[a] * _MUL_SIGNS[b]
    return sign_of(product)


def _env_get(env: SignEnv, name: str) -> Sign:
    for n, s in env:
        if n == name:
            return s
    return TOP


def _env_set(env: SignEnv, name: str, sign: Sign) -> SignEnv:
    rest = frozenset((n, s) for n, s in env if n != name)
    if sign == TOP:
        return rest
    return rest | {(name, sign)}


class SignAnalysis(DataflowProblem[SignEnv]):
    """Which sign each variable is guaranteed to have at vertex entry."""

    direction = "forward"

    def __init__(self, params: tuple[str, ...] = ()) -> None:
        self.params = params

    def top(self) -> SignEnv:
        return frozenset()

    def meet(self, a: SignEnv, b: SignEnv) -> SignEnv:
        names = {n for n, _ in a} | {n for n, _ in b}
        out = set()
        for name in names:
            s = meet_sign(_env_get(a, name), _env_get(b, name))
            if s != TOP:
                out.add((name, s))
        return frozenset(out)

    def boundary(self) -> SignEnv:
        return frozenset((p, BOT) for p in self.params)

    def transfer(
        self, vertex: Vertex, block: Optional[BasicBlock], value: SignEnv
    ) -> SignEnv:
        if block is None:
            return value
        env = value
        for instr in block.instrs:
            if instr.dest is None:
                continue
            env = _env_set(env, instr.dest, self._eval(instr, env))
        return env

    def _eval(self, instr, env: SignEnv) -> Sign:
        if isinstance(instr, Assign):
            return self._operand(instr.src, env)
        if isinstance(instr, BinOp):
            a = self._operand(instr.lhs, env)
            b = self._operand(instr.rhs, env)
            if instr.op == "add":
                return add_signs(a, b)
            if instr.op == "mul":
                return mul_signs(a, b)
            # Comparisons yield 0 or 1 — two different signs — and the flat
            # lattice has no "non-negative", so they are BOT, like the rest.
            return BOT
        if isinstance(instr, UnOp):
            a = self._operand(instr.src, env)
            if instr.op == "neg":
                return {POS: NEG, NEG: POS, ZERO: ZERO}.get(a, a)
            return BOT
        if isinstance(instr, (Load, Call)):
            return BOT
        return BOT

    @staticmethod
    def _operand(op: Operand, env: SignEnv) -> Sign:
        if isinstance(op, Const):
            return sign_of(op.value)
        return _env_get(env, op.name)
