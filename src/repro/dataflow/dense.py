"""Dense integer indexing for the bitset-compiled dataflow kernel.

The generic solver keys everything by vertex object and lattice value; the
compiled kernel instead works over preallocated lists indexed by a dense
vertex id and over Python-int bitsets indexed by a dense fact id.  This
module owns both translations:

* :class:`FactIndex` — interns facts (definitions, variables, expressions,
  copies) to bit positions and decodes masks back to ``frozenset``s at the
  solve boundary;
* :class:`DenseGraph` — freezes a :class:`~repro.ir.cfg.Cfg` into integer
  adjacency arrays where a vertex's id *is* its reverse-postorder priority
  in the analysis direction, so the priority worklist pushes bare ints.

Ids are assigned deterministically (RPO for vertices, first-seen order for
facts), so repeated solves over the same view produce identical masks.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from .framework import priority_order

Vertex = Hashable


#: ``_BYTE_BITS[b]`` = the set bit offsets of byte value ``b``.
_BYTE_BITS = tuple(
    tuple(i for i in range(8) if b >> i & 1) for b in range(256)
)


def bit_positions(mask: int) -> Iterator[int]:
    """The set bit indices of ``mask``, ascending.

    Scans the mask byte-wise through a 256-entry offset table.  The obvious
    lowest-set-bit loop (``mask & -mask`` + ``bit_length`` + ``xor``) costs
    O(words) big-int work *per set bit* — quadratic on the wide, dense masks
    organic programs produce — whereas one ``to_bytes`` conversion plus a
    byte loop is O(words + popcount).
    """
    if not mask:
        return
    base = 0
    for byte in mask.to_bytes((mask.bit_length() + 7) // 8, "little"):
        if byte:
            for off in _BYTE_BITS[byte]:
                yield base + off
        base += 8


class FactIndex:
    """Bidirectional map between facts and bit positions."""

    __slots__ = ("facts", "id_of")

    def __init__(self) -> None:
        self.facts: list = []
        self.id_of: dict = {}

    def __len__(self) -> int:
        return len(self.facts)

    def add(self, fact) -> int:
        """Intern ``fact``; returns its (stable) bit position."""
        fid = self.id_of.get(fact)
        if fid is None:
            fid = len(self.facts)
            self.id_of[fact] = fid
            self.facts.append(fact)
        return fid

    def mask_of(self, facts: Iterable) -> int:
        """The bitset holding exactly the given (already interned) facts."""
        mask = 0
        id_of = self.id_of
        for fact in facts:
            mask |= 1 << id_of[fact]
        return mask

    def decode(self, mask: int) -> frozenset:
        """The ``frozenset`` of facts a bitset encodes."""
        if not mask:
            return frozenset()
        facts = self.facts
        out = []
        base = 0
        for byte in mask.to_bytes((mask.bit_length() + 7) // 8, "little"):
            if byte:
                for off in _BYTE_BITS[byte]:
                    out.append(facts[base + off])
            base += 8
        return frozenset(out)


class DenseGraph:
    """A CFG frozen into integer-indexed adjacency arrays.

    ``verts[i]`` is the vertex with id ``i``; ids follow
    :func:`~repro.dataflow.framework.priority_order` in the analysis
    direction, so for the ``rpo`` strategy the id doubles as the heap
    priority.  ``next_ids``/``prev_ids`` are successors/predecessors *in the
    analysis direction* (swapped for backward problems), matching the
    generic solver's ``next_of``/``prev_of``.  ``sweep_ids`` preserves
    ``cfg.vertices`` insertion order — the seeding and sweep order the
    ``lifo`` and ``round_robin`` strategies (and the generic solver's
    initial worklists) use, kept so work accounting matches the generic
    engine visit for visit.
    """

    __slots__ = ("verts", "id_of", "start_id", "next_ids", "prev_ids", "sweep_ids")

    def __init__(self, cfg, forward: bool = True) -> None:
        prio = priority_order(cfg, forward)
        verts: list = [None] * len(prio)
        for v, i in prio.items():
            verts[i] = v
        next_of = cfg.succs if forward else cfg.preds
        prev_of = cfg.preds if forward else cfg.succs
        self.verts = verts
        self.id_of = prio
        self.start_id = prio[cfg.entry if forward else cfg.exit]
        self.next_ids = [tuple(prio[w] for w in next_of(v)) for v in verts]
        self.prev_ids = [tuple(prio[w] for w in prev_of(v)) for v in verts]
        self.sweep_ids = [prio[v] for v in cfg.vertices]

    def __len__(self) -> int:
        return len(self.verts)
