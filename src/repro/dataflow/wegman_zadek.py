"""Wegman–Zadek conditional constant propagation [WZ91] on a CFG.

This is the paper's baseline constant propagator (its PW pass "uses Wegman
and Zadek's Conditional Constant algorithm"): a worklist algorithm that
symbolically executes a routine from its entry, propagating values only
across branch legs that can execute under the current assignment of values.
Running it on a :class:`~repro.dataflow.graph_view.GraphView` of a hot-path
graph yields the paper's *path-qualified* constant propagation, with no
change to the algorithm (Theorem 1).

The implementation is conservative exactly as the paper's: parameters, loads
and call results are BOT; memory is untracked; there is no pointer aliasing
in the IR.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Hashable, Optional

from ..ir.basic_block import BasicBlock
from ..ir.cfg import Edge
from ..ir.instructions import Branch, Jump, Ret
from ..obs import get_metrics, get_tracer
from .graph_view import GraphView
from .lattice import (
    BOT,
    TOP,
    UNREACHABLE,
    ConstEnv,
    EnvValue,
    FlatValue,
    meet_env,
)
from .transfer import eval_operand, transfer_block
from .wz_dense import lower_transfer, run_program

Vertex = Hashable

#: ``generic`` is the persistent-dict oracle below; ``compiled`` is the
#: dense env-array engine of :mod:`repro.dataflow.wz_compiled`; ``auto``
#: picks compiled at/above ``WZ_AUTO_MIN_VERTICES`` vertices.
WZ_ENGINES = ("auto", "generic", "compiled")

_DEFAULT_WZ_ENGINE = "auto"

#: Context-carried engine override (:func:`wz_engine_scope`); a contextvar
#: so concurrent threads scope their engines independently (see the
#: matching comment in :mod:`repro.dataflow.framework`).
_SCOPED_WZ_ENGINE: contextvars.ContextVar[Optional[str]] = (
    contextvars.ContextVar("repro_wz_engine", default=None)
)


def get_default_wz_engine() -> str:
    """The engine :func:`analyze` uses when called without ``engine=``: the
    innermost :func:`wz_engine_scope` of the current context, else the
    process-wide default."""
    scoped = _SCOPED_WZ_ENGINE.get()
    return scoped if scoped is not None else _DEFAULT_WZ_ENGINE


def set_default_wz_engine(engine: str) -> str:
    """Install a new process-wide default WZ engine; returns the previous."""
    global _DEFAULT_WZ_ENGINE
    if engine not in WZ_ENGINES:
        raise ValueError(f"bad wz engine {engine!r}; choose from {WZ_ENGINES}")
    previous = _DEFAULT_WZ_ENGINE
    _DEFAULT_WZ_ENGINE = engine
    return previous


@contextmanager
def wz_engine_scope(engine: str):
    """Run a block under a different default WZ engine (how the harness and
    CLI thread ``--wz-engine`` through code that calls :func:`analyze` many
    layers down without widening every signature).  Thread-safe: the
    override is visible only to the context that entered the scope."""
    if engine not in WZ_ENGINES:
        raise ValueError(f"bad wz engine {engine!r}; choose from {WZ_ENGINES}")
    token = _SCOPED_WZ_ENGINE.set(engine)
    try:
        yield
    finally:
        _SCOPED_WZ_ENGINE.reset(token)


class CondConstResult:
    """The solution of a conditional constant propagation run.

    ``visits``/``visit_counts`` record the solver's worklist work (total
    pops and pops per vertex) and are identical between engines — the
    differential suite pins them.  Class-level defaults keep results
    unpickled from pre-``visits`` artifact caches usable.
    """

    visits: int = 0
    visit_counts: Optional[dict[Vertex, int]] = None
    engine: str = "generic"

    def __init__(
        self,
        view: GraphView,
        env_in: dict[Vertex, EnvValue],
        executable_edges: frozenset[Edge],
        *,
        visits: int = 0,
        visit_counts: Optional[dict[Vertex, int]] = None,
        engine: str = "generic",
    ) -> None:
        self.view = view
        self.env_in = env_in
        self.executable_edges = executable_edges
        self.visits = visits
        self.visit_counts = visit_counts
        self.engine = engine

    def input_env(self, vertex: Vertex) -> EnvValue:
        """Environment at the entry of ``vertex`` (UNREACHABLE if no
        executable path reaches it)."""
        return self.env_in.get(vertex, UNREACHABLE)

    def is_executable(self, vertex: Vertex) -> bool:
        """True if some executable path reaches ``vertex``."""
        return self.input_env(vertex) is not UNREACHABLE

    def _block_values(self, vertex: Vertex):
        """Memoized (program, per-step values, output bindings) of ``vertex``,
        or None for virtual/unreachable vertices.

        Evaluates the block's *cached* micro-op lowering once per vertex;
        repeated ``site_values()``/``output_env()`` calls re-walk nothing —
        not the instruction list, not the micro-ops.
        """
        memo = self.__dict__.setdefault("_block_memo", {})
        if vertex in memo:
            return memo[vertex]
        env = self.input_env(vertex)
        block = self.view.block_of(vertex)
        if block is None or env is UNREACHABLE:
            memo[vertex] = None
            return None
        program = lower_transfer(block)
        values = env.to_dict()
        results = run_program(program, values)
        memo[vertex] = entry = (program, results, values)
        return entry

    def site_values(self, vertex: Vertex) -> dict[int, FlatValue]:
        """Abstract result of each value-producing instruction at ``vertex``,
        keyed by instruction index.  Empty for virtual/unreachable vertices.
        """
        entry = self._block_values(vertex)
        if entry is None:
            return {}
        program, results, _ = entry
        return dict(zip(program.sites, results))

    def __getstate__(self):
        # Lowered-program memos hold operator lambdas (unpicklable) and are
        # pure caches: rebuild them lazily after unpickling.
        state = self.__dict__.copy()
        state.pop("_block_memo", None)
        state.pop("_out_memo", None)
        return state

    def constant_sites(self, vertex: Vertex) -> dict[int, int]:
        """Value-producing instruction indices at ``vertex`` whose result is a
        known constant, with that constant."""
        return {
            idx: v
            for idx, v in self.site_values(vertex).items()
            if isinstance(v, int)
        }

    def pure_constant_sites(self, vertex: Vertex) -> dict[int, int]:
        """Like :meth:`constant_sites` but restricted to pure instructions —
        the only sites the optimizer may fold and the unit the paper's
        "instructions with constant results" metrics count."""
        block = self.view.block_of(vertex)
        if block is None:
            return {}
        return {
            idx: v
            for idx, v in self.constant_sites(vertex).items()
            if block.instrs[idx].is_pure
        }

    def output_env(self, vertex: Vertex) -> EnvValue:
        """Environment at the exit of ``vertex`` (memoized)."""
        memo = self.__dict__.setdefault("_out_memo", {})
        if vertex in memo:
            return memo[vertex]
        entry = self._block_values(vertex)
        if entry is None:
            out = self.input_env(vertex)  # identity transfer / UNREACHABLE
        else:
            _, _, values = entry
            out = ConstEnv(values)
        memo[vertex] = out
        return out


def analyze(
    view: GraphView,
    entry_env: Optional[ConstEnv] = None,
    *,
    engine: Optional[str] = None,
) -> CondConstResult:
    """Run conditional constant propagation over ``view``.

    ``entry_env`` defaults to "all parameters BOT, everything else TOP".
    ``engine`` is ``"generic"`` (the persistent-dict oracle), ``"compiled"``
    (the dense env-array engine), or ``"auto"`` (compiled at/above
    :data:`~repro.dataflow.wz_compiled.WZ_AUTO_MIN_VERTICES` vertices);
    ``None`` uses the ambient default (:func:`wz_engine_scope`).  Both
    engines produce identical results, visit counts included.
    """
    if engine is None:
        engine = get_default_wz_engine()
    elif engine not in WZ_ENGINES:
        raise ValueError(f"bad wz engine {engine!r}; choose from {WZ_ENGINES}")
    if engine != "generic":
        from .wz_compiled import WZ_AUTO_MIN_VERTICES, analyze_compiled

        if engine == "compiled" or view.cfg.num_vertices >= WZ_AUTO_MIN_VERTICES:
            result = analyze_compiled(view, entry_env)
            if result is not None:
                return result
            # The view declined to compile (unresolvable branch labels):
            # fall through to the oracle, which only faults on a bad leg
            # if the fixpoint actually takes it.

    if entry_env is None:
        entry_env = ConstEnv({p: BOT for p in view.params})

    cfg = view.cfg
    env_in: dict[Vertex, EnvValue] = {cfg.entry: entry_env}
    executable: set[Edge] = set()
    worklist: list[Vertex] = [cfg.entry]
    on_list: set[Vertex] = {cfg.entry}
    visits = 0
    visit_counts: dict[Vertex, int] = {}

    with get_tracer().span(
        "dataflow.wz.solve", engine="generic", vertices=cfg.num_vertices
    ) as span:
        while worklist:
            v = worklist.pop()
            on_list.discard(v)
            visits += 1
            visit_counts[v] = visit_counts.get(v, 0) + 1
            env = env_in.get(v, UNREACHABLE)
            if env is UNREACHABLE:
                continue

            block = view.block_of(v)
            if block is None:
                out_env: ConstEnv = env  # virtual vertex: identity transfer
                out_targets = list(cfg.succs(v))
            else:
                out_env = transfer_block(block, env)
                out_targets = _executable_targets(view, v, block, out_env)

            for w in out_targets:
                edge = (v, w)
                newly_exec = edge not in executable
                executable.add(edge)
                old = env_in.get(w, UNREACHABLE)
                new = meet_env(old, out_env)
                if newly_exec or new != old:
                    env_in[w] = new
                    if w not in on_list:
                        worklist.append(w)
                        on_list.add(w)
        span.set(visits=visits)

    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("wz_analyses").inc()
        metrics.counter("wz_visits").inc(visits)
        metrics.counter("wz_executable_edges").inc(len(executable))

    return CondConstResult(
        view,
        env_in,
        frozenset(executable),
        visits=visits,
        visit_counts=visit_counts,
        engine="generic",
    )


def _executable_targets(
    view: GraphView, v: Vertex, block: BasicBlock, out_env: ConstEnv
) -> list[Vertex]:
    """Successor vertices reachable from ``v`` under ``out_env``."""
    term = block.terminator
    if isinstance(term, Jump):
        return [view.succ_for_label(v, term.target)]
    if isinstance(term, Ret):
        return list(view.cfg.succs(v))  # the edge to the virtual exit
    if isinstance(term, Branch):
        cond = eval_operand(term.cond, out_env)
        if cond is TOP:
            # Optimistic: the condition may yet become a known constant;
            # propagate along no leg until it resolves (as in [WZ91]).
            return []
        if cond is BOT:
            return [
                view.succ_for_label(v, term.if_true),
                view.succ_for_label(v, term.if_false),
            ]
        target = term.if_true if cond != 0 else term.if_false
        return [view.succ_for_label(v, target)]
    raise TypeError(f"unknown terminator {term!r}")
