"""Wegman–Zadek conditional constant propagation [WZ91] on a CFG.

This is the paper's baseline constant propagator (its PW pass "uses Wegman
and Zadek's Conditional Constant algorithm"): a worklist algorithm that
symbolically executes a routine from its entry, propagating values only
across branch legs that can execute under the current assignment of values.
Running it on a :class:`~repro.dataflow.graph_view.GraphView` of a hot-path
graph yields the paper's *path-qualified* constant propagation, with no
change to the algorithm (Theorem 1).

The implementation is conservative exactly as the paper's: parameters, loads
and call results are BOT; memory is untracked; there is no pointer aliasing
in the IR.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..ir.basic_block import BasicBlock
from ..ir.cfg import Edge
from ..ir.instructions import Branch, Jump, Ret
from ..obs import get_metrics
from .graph_view import GraphView
from .lattice import (
    BOT,
    TOP,
    UNREACHABLE,
    ConstEnv,
    EnvValue,
    FlatValue,
    meet_env,
)
from .transfer import eval_operand, transfer_block, transfer_instr

Vertex = Hashable


class CondConstResult:
    """The solution of a conditional constant propagation run."""

    def __init__(
        self,
        view: GraphView,
        env_in: dict[Vertex, EnvValue],
        executable_edges: frozenset[Edge],
    ) -> None:
        self.view = view
        self.env_in = env_in
        self.executable_edges = executable_edges

    def input_env(self, vertex: Vertex) -> EnvValue:
        """Environment at the entry of ``vertex`` (UNREACHABLE if no
        executable path reaches it)."""
        return self.env_in.get(vertex, UNREACHABLE)

    def is_executable(self, vertex: Vertex) -> bool:
        """True if some executable path reaches ``vertex``."""
        return self.input_env(vertex) is not UNREACHABLE

    def site_values(self, vertex: Vertex) -> dict[int, FlatValue]:
        """Abstract result of each value-producing instruction at ``vertex``,
        keyed by instruction index.  Empty for virtual/unreachable vertices.
        """
        env = self.input_env(vertex)
        block = self.view.block_of(vertex)
        if block is None or env is UNREACHABLE:
            return {}
        values: dict[int, FlatValue] = {}
        for idx, instr in enumerate(block.instrs):
            env, value = transfer_instr(instr, env)
            if instr.dest is not None:
                values[idx] = value if value is not None else BOT
        return values

    def constant_sites(self, vertex: Vertex) -> dict[int, int]:
        """Value-producing instruction indices at ``vertex`` whose result is a
        known constant, with that constant."""
        return {
            idx: v
            for idx, v in self.site_values(vertex).items()
            if isinstance(v, int)
        }

    def pure_constant_sites(self, vertex: Vertex) -> dict[int, int]:
        """Like :meth:`constant_sites` but restricted to pure instructions —
        the only sites the optimizer may fold and the unit the paper's
        "instructions with constant results" metrics count."""
        block = self.view.block_of(vertex)
        if block is None:
            return {}
        return {
            idx: v
            for idx, v in self.constant_sites(vertex).items()
            if block.instrs[idx].is_pure
        }

    def output_env(self, vertex: Vertex) -> EnvValue:
        """Environment at the exit of ``vertex``."""
        env = self.input_env(vertex)
        block = self.view.block_of(vertex)
        if env is UNREACHABLE or block is None:
            return env
        return transfer_block(block, env)


def analyze(view: GraphView, entry_env: Optional[ConstEnv] = None) -> CondConstResult:
    """Run conditional constant propagation over ``view``.

    ``entry_env`` defaults to "all parameters BOT, everything else TOP".
    """
    if entry_env is None:
        entry_env = ConstEnv({p: BOT for p in view.params})

    cfg = view.cfg
    env_in: dict[Vertex, EnvValue] = {cfg.entry: entry_env}
    executable: set[Edge] = set()
    worklist: list[Vertex] = [cfg.entry]
    on_list: set[Vertex] = {cfg.entry}
    visits = 0

    while worklist:
        v = worklist.pop()
        on_list.discard(v)
        visits += 1
        env = env_in.get(v, UNREACHABLE)
        if env is UNREACHABLE:
            continue

        block = view.block_of(v)
        if block is None:
            out_env: ConstEnv = env  # virtual vertex: identity transfer
            out_targets = list(cfg.succs(v))
        else:
            out_env = transfer_block(block, env)
            out_targets = _executable_targets(view, v, block, out_env)

        for w in out_targets:
            edge = (v, w)
            newly_exec = edge not in executable
            executable.add(edge)
            old = env_in.get(w, UNREACHABLE)
            new = meet_env(old, out_env)
            if newly_exec or new != old:
                env_in[w] = new
                if w not in on_list:
                    worklist.append(w)
                    on_list.add(w)

    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("wz_analyses").inc()
        metrics.counter("wz_visits").inc(visits)
        metrics.counter("wz_executable_edges").inc(len(executable))

    return CondConstResult(view, env_in, frozenset(executable))


def _executable_targets(
    view: GraphView, v: Vertex, block: BasicBlock, out_env: ConstEnv
) -> list[Vertex]:
    """Successor vertices reachable from ``v`` under ``out_env``."""
    term = block.terminator
    if isinstance(term, Jump):
        return [view.succ_for_label(v, term.target)]
    if isinstance(term, Ret):
        return list(view.cfg.succs(v))  # the edge to the virtual exit
    if isinstance(term, Branch):
        cond = eval_operand(term.cond, out_env)
        if cond is TOP:
            # Optimistic: the condition may yet become a known constant;
            # propagate along no leg until it resolves (as in [WZ91]).
            return []
        if cond is BOT:
            return [
                view.succ_for_label(v, term.if_true),
                view.succ_for_label(v, term.if_false),
            ]
        target = term.if_true if cond != 0 else term.if_false
        return [view.succ_for_label(v, target)]
    raise TypeError(f"unknown terminator {term!r}")
