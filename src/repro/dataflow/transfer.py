"""Abstract evaluation of IR over the constant lattice.

Shared by the Wegman–Zadek analysis, the local (basic-block) analysis, the
generic framework instance for plain constant propagation, and the constant
folder — so analysis and transformation always agree on what an instruction's
abstract result is.

The model matches the paper's conservative implementation: loads, calls, and
parameters are :data:`~repro.dataflow.lattice.BOT`; no pointers or aliasing
exist in the IR; ``Store``/``Print`` do not affect scalar environments.
"""

from __future__ import annotations

from typing import Optional

from ..ir.basic_block import BasicBlock
from ..ir.instructions import Assign, BinOp, Call, Instr, Load, Print, Store, UnOp
from ..ir.operands import Const, Operand, Var
from ..ir.ops import eval_binop, eval_unop
from .lattice import BOT, TOP, ConstEnv, FlatValue


def eval_operand(op: Operand, env: ConstEnv) -> FlatValue:
    """The lattice value of an operand under ``env``."""
    if isinstance(op, Const):
        return op.value
    return env.get(op.name)


def eval_pure(instr: Instr, env: ConstEnv) -> FlatValue:
    """Abstract result of a *pure* value-producing instruction.

    TOP operands dominate BOT (the optimistic rule of conditional constant
    propagation: a value that might still turn out constant is not yet
    non-constant).
    """
    if isinstance(instr, Assign):
        return eval_operand(instr.src, env)
    if isinstance(instr, BinOp):
        a = eval_operand(instr.lhs, env)
        b = eval_operand(instr.rhs, env)
        if a is TOP or b is TOP:
            return TOP
        if a is BOT or b is BOT:
            return BOT
        return eval_binop(instr.op, a, b)
    if isinstance(instr, UnOp):
        a = eval_operand(instr.src, env)
        if a is TOP or a is BOT:
            return a
        return eval_unop(instr.op, a)
    raise TypeError(f"eval_pure on impure instruction {instr}")


def transfer_instr(instr: Instr, env: ConstEnv) -> tuple[ConstEnv, Optional[FlatValue]]:
    """Abstract effect of one instruction.

    Returns the new environment and, when the instruction defines a variable,
    the abstract value it produced (``None`` for pure side effects).
    """
    if instr.is_pure:
        value = eval_pure(instr, env)
        return env.set(instr.dest, value), value
    if isinstance(instr, (Load, Call)):
        if instr.dest is not None:
            return env.set(instr.dest, BOT), BOT
        return env, None
    if isinstance(instr, (Store, Print)):
        return env, None
    raise TypeError(f"unknown instruction {instr!r}")


def transfer_block(block: BasicBlock, env: ConstEnv) -> ConstEnv:
    """Abstract effect of a whole basic block on ``env``."""
    for instr in block.instrs:
        env, _ = transfer_instr(instr, env)
    return env


def block_site_values(block: BasicBlock, env: ConstEnv) -> list[FlatValue]:
    """Abstract result of each value-producing site in ``block`` (in order),
    given the entry environment ``env``.

    A *site* is an instruction with a destination variable; the list aligns
    with ``[i for i, _ in block.value_sites()]``.
    """
    values: list[FlatValue] = []
    for instr in block.instrs:
        env, value = transfer_instr(instr, env)
        if instr.dest is not None:
            values.append(value if value is not None else BOT)
    return values
