"""Synthetic scale-up of graph views for benchmarks and stress tests.

The MiniC workloads are miniatures: their routines have a dozen or two
basic blocks, while the SPEC95 routines the paper analysed run to hundreds.
:func:`tile_view` closes that gap structurally — it chains ``copies``
renamed tiles of a view into one larger :class:`GraphView`, linking each
tile's virtual exit to the next tile's virtual entry.  Variables are
renamed per tile, so fact universes (definitions, live variables,
expressions, copies) grow with the graph instead of saturating, which is
what makes the result a faithful stand-in for a paper-scale routine.

Works on any view — a plain function CFG or a hot-path graph — because it
operates purely on the :class:`GraphView` interface: vertices become
``(tile, vertex)`` pairs, virtual vertices stay virtual (mid-graph virtual
link vertices are pass-throughs for every analysis), and ``label_of`` keeps
reporting the original block label.
"""

from __future__ import annotations

from ..ir.basic_block import BasicBlock
from ..ir.cfg import Cfg
from ..ir.instructions import (
    Assign,
    BinOp,
    Call,
    Instr,
    Load,
    Print,
    Store,
    Terminator,
    UnOp,
    copy_terminator,
)
from ..ir.operands import Operand, Var
from .graph_view import GraphView


def _rename_operand(op: Operand, suffix: str) -> Operand:
    return Var(op.name + suffix) if isinstance(op, Var) else op


def _rename_instr(instr: Instr, suffix: str) -> Instr:
    """A copy of ``instr`` with every variable (dest and uses) suffixed."""
    r = _rename_operand
    if isinstance(instr, Assign):
        return Assign(instr.dest + suffix, r(instr.src, suffix))
    if isinstance(instr, BinOp):
        return BinOp(
            instr.dest + suffix, instr.op,
            r(instr.lhs, suffix), r(instr.rhs, suffix),
        )
    if isinstance(instr, UnOp):
        return UnOp(instr.dest + suffix, instr.op, r(instr.src, suffix))
    if isinstance(instr, Load):
        return Load(instr.dest + suffix, instr.array, r(instr.index, suffix))
    if isinstance(instr, Store):
        return Store(instr.array, r(instr.index, suffix), r(instr.value, suffix))
    if isinstance(instr, Call):
        dest = instr.dest + suffix if instr.dest is not None else None
        return Call(dest, instr.func, tuple(r(a, suffix) for a in instr.args))
    if isinstance(instr, Print):
        return Print(tuple(r(a, suffix) for a in instr.args))
    raise TypeError(f"unknown instruction type {type(instr).__name__}")


def _rename_terminator(term: Terminator, suffix: str) -> Terminator:
    term = copy_terminator(term)
    if hasattr(term, "cond"):
        term.cond = _rename_operand(term.cond, suffix)
    if hasattr(term, "value") and term.value is not None:
        term.value = _rename_operand(term.value, suffix)
    return term


def tile_view(view: GraphView, copies: int) -> GraphView:
    """``copies`` renamed tiles of ``view`` chained into one larger view.

    Tile ``t``'s vertices are ``(t, v)``; its blocks carry every variable
    suffixed with ``~t``; the only inter-tile edges are
    ``(t, exit) -> (t + 1, entry)``.  The result's entry is tile 0's entry
    and its exit is the last tile's exit, so analyses see one connected
    routine ``copies`` times the original's size with ``copies`` times its
    facts.
    """
    if copies < 1:
        raise ValueError("copies must be >= 1")
    cfg = view.cfg
    vertices: list = []
    edges: list = []
    blocks: dict = {}
    labels: dict = {}
    params: list[str] = []
    for t in range(copies):
        suffix = f"~{t}"
        for v in cfg.vertices:
            vertices.append((t, v))
        for u in cfg.vertices:
            for w in cfg.succs(u):
                edges.append(((t, u), (t, w)))
        if t:
            edges.append(((t - 1, cfg.exit), (t, cfg.entry)))
        for v in cfg.vertices:
            block = view.block_of(v)
            if block is None:
                continue
            blocks[(t, v)] = BasicBlock(
                block.label + suffix,
                [_rename_instr(i, suffix) for i in block.instrs],
                _rename_terminator(block.terminator, suffix)
                if block.terminator is not None
                else None,
            )
            labels[(t, v)] = view.label_of(v)
        params.extend(p + suffix for p in view.params)
    entry = (0, cfg.entry)
    exit_ = (copies - 1, cfg.exit)
    tiled = Cfg(
        entry=entry,
        exit=exit_,
        vertices=[v for v in vertices if v not in (entry, exit_)],
        edges=edges,
    )
    return GraphView(tiled, tuple(params), blocks, labels)
