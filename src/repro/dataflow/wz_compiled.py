"""Dense env-array engine for Wegman–Zadek conditional constant propagation.

The generic solver in :mod:`repro.dataflow.wegman_zadek` carries a
persistent :class:`~repro.dataflow.lattice.ConstEnv` (a frozen dict) per
vertex and re-walks each block's instruction list on every worklist visit —
each instruction allocating a fresh dict through ``ConstEnv.set``.  The
qualified pipeline runs this solver three times per routine (baseline CFG,
hot-path graph, reduced graph), so on paper-scale targets WZ dominates the
pipeline even after the separable problems moved to the bitset kernel.

This engine lowers one :func:`analyze` call into dense form:

* every variable in the view is interned to a dense **var-id**; every flat
  lattice cell becomes a small int — ``0`` is TOP, ``1`` is BOT, and
  ``2 + k`` is the ``k``-th interned constant (new constants produced by
  folding are interned on the fly).  The code↔value mapping is injective,
  so two env arrays are equal iff the environments they encode are;
* each vertex's environment is one flat mutable list of cells indexed by
  var-id (``None`` encodes UNREACHABLE).  Arrays are copied only at meet
  points — a block evaluates into a scratch copy, and a successor either
  adopts a copy (first executable edge in) or meets pointwise in place;
* each block's transfer chain is pre-lowered once via
  :mod:`repro.dataflow.wz_dense` and re-indexed from names to var-ids, so a
  visit is a tight loop over micro-op tuples with no instruction dispatch
  and no dict allocation;
* terminators are pre-resolved: jumps, returns, and constant-condition
  branches become fixed target tuples at compile time; a variable-condition
  branch keeps its cond var-id and picks the leg(s) from its out-array per
  visit, exactly like ``_executable_targets``.

The worklist is the same LIFO stack seeded with the entry, pushing in the
same target order under the same ``newly-executable or env-changed``
condition — so visit counts, executable-edge discovery, and the final
environments are **identical** to the generic solver's, which remains the
oracle (``tests/test_wz_differential.py``).  Decoding memoizes one
:class:`ConstEnv` per distinct array, aliasing equal environments the way
the generic solver's meet fast paths alias theirs.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..ir.instructions import Branch, Jump, Ret
from ..ir.operands import Const
from ..obs import get_metrics, get_tracer
from .graph_view import GraphView
from .lattice import BOT, TOP, ConstEnv
from .wz_dense import (
    W_BIN_CV,
    W_BIN_VC,
    W_BIN_VV,
    W_BOT,
    W_CONST,
    W_COPY,
    W_UN,
    lower_transfer,
)

Vertex = Hashable

#: Below this many vertices ``engine="auto"`` keeps the generic solver: the
#: compile step (interning, program re-indexing, terminator resolution) is
#: not amortized on tiny graphs.  Measured on the suite workloads' CFGs
#: (``benchmarks/bench_wz.py``): the dense engine breaks even around 8–12
#: vertices and wins clearly from ~15 up.  ``engine="compiled"`` forces the
#: dense engine at any size.
WZ_AUTO_MIN_VERTICES = 12

#: Lattice-cell codes.  Constants are ``2 + intern_index``.
_CELL_TOP = 0
_CELL_BOT = 1

#: Terminator kinds after compile-time resolution.
_T_FIXED = 0  #: ``(_T_FIXED, targets)`` — target ids independent of the env
_T_BRANCH = 1  #: ``(_T_BRANCH, cond_id, both, true_leg, false_leg)``


class _WzSpec:
    """One view lowered to dense form (built per :func:`analyze_compiled`)."""

    __slots__ = (
        "verts",
        "var_names",
        "var_ids",
        "programs",
        "terms",
        "const_code",
        "const_vals",
        "entry_id",
    )

    def __init__(self) -> None:
        self.var_names: list[str] = []
        self.var_ids: dict[str, int] = {}
        self.const_code: dict[int, int] = {}
        self.const_vals: list[int] = []

    def var_id(self, name: str) -> int:
        vid = self.var_ids.get(name)
        if vid is None:
            vid = self.var_ids[name] = len(self.var_names)
            self.var_names.append(name)
        return vid

    def cell_of(self, value) -> int:
        """The cell code of a flat lattice value."""
        if value is BOT:
            return _CELL_BOT
        if value is TOP:
            return _CELL_TOP
        code = self.const_code.get(value)
        if code is None:
            code = self.const_code[value] = len(self.const_vals) + 2
            self.const_vals.append(value)
        return code


def _compile(view: GraphView, entry_env: ConstEnv) -> Optional[_WzSpec]:
    """Lower ``view`` to a :class:`_WzSpec`, or None if the view's branch
    labels cannot be resolved to edges (malformed view: fall back to the
    generic solver, which only faults if the bad leg is actually taken)."""
    cfg = view.cfg
    spec = _WzSpec()
    spec.verts = verts = list(cfg.vertices)
    vid_of = {v: i for i, v in enumerate(verts)}
    var_id = spec.var_id
    for p in view.params:
        var_id(p)
    for name, _ in entry_env.items():
        var_id(name)

    programs: list[tuple] = []
    terms: list[tuple] = []
    for v in verts:
        block = view.block_of(v)
        if block is None:
            programs.append(())
            terms.append((_T_FIXED, tuple(vid_of[w] for w in cfg.succs(v))))
            continue
        steps = []
        for step in lower_transfer(block).steps:
            op = step[0]
            if op == W_CONST:
                steps.append((W_CONST, var_id(step[1]), spec.cell_of(step[2])))
            elif op == W_COPY:
                steps.append((W_COPY, var_id(step[1]), var_id(step[2])))
            elif op == W_BOT:
                steps.append((W_BOT, var_id(step[1])))
            elif op == W_UN:
                steps.append((W_UN, var_id(step[1]), step[2], var_id(step[3])))
            elif op == W_BIN_VV:
                steps.append(
                    (W_BIN_VV, var_id(step[1]), step[2], var_id(step[3]), var_id(step[4]))
                )
            elif op == W_BIN_VC:
                steps.append(
                    (W_BIN_VC, var_id(step[1]), step[2], var_id(step[3]), step[4])
                )
            else:  # W_BIN_CV
                steps.append(
                    (W_BIN_CV, var_id(step[1]), step[2], step[3], var_id(step[4]))
                )
        programs.append(tuple(steps))

        term = block.terminator
        try:
            if isinstance(term, Jump):
                terms.append(
                    (_T_FIXED, (vid_of[view.succ_for_label(v, term.target)],))
                )
            elif isinstance(term, Ret):
                terms.append((_T_FIXED, tuple(vid_of[w] for w in cfg.succs(v))))
            elif isinstance(term, Branch):
                true_id = vid_of[view.succ_for_label(v, term.if_true)]
                false_id = vid_of[view.succ_for_label(v, term.if_false)]
                cond = term.cond
                if isinstance(cond, Const):  # resolve the branch now
                    taken = true_id if cond.value != 0 else false_id
                    terms.append((_T_FIXED, (taken,)))
                else:
                    terms.append(
                        (
                            _T_BRANCH,
                            var_id(cond.name),
                            (true_id, false_id),
                            (true_id,),
                            (false_id,),
                        )
                    )
            else:
                raise TypeError(f"unknown terminator {term!r}")
        except KeyError:
            return None
    spec.programs = programs
    spec.terms = terms
    spec.entry_id = vid_of[cfg.entry]
    return spec


def analyze_compiled(view: GraphView, entry_env: Optional[ConstEnv] = None):
    """Run the dense WZ engine over ``view``.

    Returns the decoded :class:`~repro.dataflow.wegman_zadek.CondConstResult`
    — bit-identical to the generic solver's, visit counts included — or
    ``None`` when the view declines to compile (caller falls back).
    """
    from .wegman_zadek import CondConstResult

    if entry_env is None:
        entry_env = ConstEnv({p: BOT for p in view.params})

    tracer = get_tracer()
    with tracer.span("dataflow.wz.compile", engine="compiled") as cspan:
        spec = _compile(view, entry_env)
        if spec is None:
            return None
        width = len(spec.var_names)
        n = len(spec.verts)
        cspan.set(vertices=n, env_width=width)

    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("wz_compiled_solves").inc()
        metrics.gauge("wz_env_width").set(width)

    cell_of = spec.cell_of
    entry_arr = [_CELL_TOP] * width
    for name, value in entry_env.items():
        entry_arr[spec.var_ids[name]] = cell_of(value)

    programs = spec.programs
    terms = spec.terms
    const_vals = spec.const_vals
    const_code = spec.const_code
    entry_id = spec.entry_id

    env_in: list = [None] * n  # None == UNREACHABLE
    env_in[entry_id] = entry_arr
    executable: set[int] = set()  # edge (v, w) encoded as v * n + w
    worklist = [entry_id]
    on_list = bytearray(n)
    on_list[entry_id] = 1
    visits = 0
    counts = [0] * n

    with tracer.span(
        "dataflow.wz.solve", engine="compiled", vertices=n
    ) as span:
        while worklist:
            vid = worklist.pop()
            on_list[vid] = 0
            visits += 1
            counts[vid] += 1
            env = env_in[vid]
            if env is None:
                continue

            steps = programs[vid]
            if steps:
                out = env[:]
                for step in steps:
                    op = step[0]
                    if op == W_BIN_VV:
                        a = out[step[3]]
                        b = out[step[4]]
                        if a == 0 or b == 0:
                            out[step[1]] = 0
                        elif a == 1 or b == 1:
                            out[step[1]] = 1
                        else:
                            r = step[2](const_vals[a - 2], const_vals[b - 2])
                            c = const_code.get(r)
                            if c is None:
                                c = const_code[r] = len(const_vals) + 2
                                const_vals.append(r)
                            out[step[1]] = c
                    elif op == W_COPY:
                        out[step[1]] = out[step[2]]
                    elif op == W_CONST:
                        out[step[1]] = step[2]
                    elif op == W_BIN_VC:
                        a = out[step[3]]
                        if a < 2:
                            out[step[1]] = a
                        else:
                            r = step[2](const_vals[a - 2], step[4])
                            c = const_code.get(r)
                            if c is None:
                                c = const_code[r] = len(const_vals) + 2
                                const_vals.append(r)
                            out[step[1]] = c
                    elif op == W_BIN_CV:
                        b = out[step[4]]
                        if b < 2:
                            out[step[1]] = b
                        else:
                            r = step[2](step[3], const_vals[b - 2])
                            c = const_code.get(r)
                            if c is None:
                                c = const_code[r] = len(const_vals) + 2
                                const_vals.append(r)
                            out[step[1]] = c
                    elif op == W_UN:
                        a = out[step[3]]
                        if a < 2:
                            out[step[1]] = a
                        else:
                            r = step[2](const_vals[a - 2])
                            c = const_code.get(r)
                            if c is None:
                                c = const_code[r] = len(const_vals) + 2
                                const_vals.append(r)
                            out[step[1]] = c
                    else:  # W_BOT
                        out[step[1]] = 1
            else:
                out = env  # virtual vertex: identity transfer

            term = terms[vid]
            if term[0] == _T_FIXED:
                targets = term[1]
            else:
                code = out[term[1]]
                if code == 0:
                    # Optimistic: unresolved condition propagates nowhere yet.
                    targets = ()
                elif code == 1:
                    targets = term[2]
                elif const_vals[code - 2] != 0:
                    targets = term[3]
                else:
                    targets = term[4]

            base = vid * n
            for wid in targets:
                edge = base + wid
                newly_exec = edge not in executable
                if newly_exec:
                    executable.add(edge)
                old = env_in[wid]
                if old is None:
                    env_in[wid] = out[:]  # first flow in: adopt a copy
                    changed = True
                elif old == out:
                    changed = False
                else:
                    changed = False
                    for i, b in enumerate(out):
                        a = old[i]
                        if a == b or b == 0:
                            continue  # equal, or meet with TOP: keep a
                        if a == 0:
                            old[i] = b  # meet(TOP, b) = b
                            changed = True
                        elif a != 1:
                            old[i] = 1  # distinct non-TOP cells meet to BOT
                            changed = True
                        # a == BOT stays BOT
                if newly_exec or changed:
                    if not on_list[wid]:
                        worklist.append(wid)
                        on_list[wid] = 1
        span.set(visits=visits)

    if metrics.enabled:
        metrics.counter("wz_analyses").inc()
        metrics.counter("wz_visits").inc(visits)
        metrics.counter("wz_executable_edges").inc(len(executable))

    # Decode.  One ConstEnv per distinct array: equal environments alias a
    # single object, mirroring the generic solver's meet/set fast paths.
    # Each array is released as soon as its tuple key exists — duplicated
    # vertices (the hot-path-graph case) then share one key and one env, so
    # the decode's peak tracks the number of *distinct* environments.
    verts = spec.verts
    var_names = spec.var_names
    seen: dict = {}
    decoded_env_in: dict = {}
    for vid in range(n):
        arr = env_in[vid]
        if arr is None:
            continue
        env_in[vid] = None
        key = tuple(arr)
        del arr
        env = seen.get(key)
        if env is None:
            values = {}
            for i, c in enumerate(key):
                if c:
                    values[var_names[i]] = BOT if c == 1 else const_vals[c - 2]
            env = seen[key] = ConstEnv._from_raw(values)
        decoded_env_in[verts[vid]] = env

    edges = frozenset((verts[k // n], verts[k % n]) for k in executable)
    visit_counts = {verts[vid]: c for vid, c in enumerate(counts) if c}
    return CondConstResult(
        view,
        decoded_env_in,
        edges,
        visits=visits,
        visit_counts=visit_counts,
        engine="compiled",
    )
