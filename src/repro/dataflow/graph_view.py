"""Graph views: the interface analyses run on.

A :class:`GraphView` pairs a :class:`~repro.ir.cfg.Cfg` with the code behind
each vertex.  Analyses written against views run unchanged on

* a plain function CFG (vertices are block labels), and
* a hot-path graph (vertices are ``(label, state)`` pairs whose code is the
  original block) — which is precisely how the paper reuses a conventional
  solver on the traced graph (Definition 6: ``M_A((v0,q0),(v1,q1)) =
  M((v0,v1))``).
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..ir.basic_block import BasicBlock
from ..ir.cfg import Cfg
from ..ir.function import Function

Vertex = Hashable


class GraphView:
    """A CFG whose non-virtual vertices carry basic blocks.

    ``label_of`` maps a vertex to the label of the *original* block it
    executes (identity for plain function CFGs); branch targets in
    terminators refer to these original labels.
    """

    def __init__(
        self,
        cfg: Cfg,
        params: tuple[str, ...],
        blocks: dict[Vertex, BasicBlock],
        labels: Optional[dict[Vertex, str]] = None,
    ) -> None:
        self.cfg = cfg
        self.params = params
        self._blocks = blocks
        self._labels = labels

    @classmethod
    def from_function(cls, fn: Function, cfg: Optional[Cfg] = None) -> "GraphView":
        """The view of a plain function CFG."""
        return cls(
            cfg if cfg is not None else Cfg.from_function(fn),
            fn.params,
            dict(fn.blocks),
        )

    def block_of(self, vertex: Vertex) -> Optional[BasicBlock]:
        """The code at ``vertex`` (None for the virtual entry/exit)."""
        return self._blocks.get(vertex)

    def label_of(self, vertex: Vertex) -> Optional[str]:
        """The original block label executed at ``vertex``."""
        if self._labels is not None:
            return self._labels.get(vertex)
        return vertex if vertex in self._blocks else None

    def succ_for_label(self, vertex: Vertex, label: str) -> Vertex:
        """The unique successor of ``vertex`` whose original label is ``label``.

        Well-defined on both plain CFGs and hot-path graphs: the automaton is
        deterministic, so a traced vertex has at most one successor per
        original CFG edge.
        """
        for w in self.cfg.succs(vertex):
            if self.label_of(w) == label or w == label:
                return w
        raise KeyError(f"{vertex!r} has no successor labelled {label!r}")

    def size(self) -> int:
        """Number of non-virtual vertices."""
        return len([v for v in self.cfg.vertices if v in self._blocks])
