"""Dense lowering of basic-block transfer functions for conditional constants.

:func:`repro.dataflow.transfer.transfer_block` re-dispatches on instruction
classes and re-inspects operands every time a block is evaluated — once per
worklist visit in the Wegman–Zadek solver and once per *call* in
:class:`~repro.dataflow.wegman_zadek.CondConstResult` consumers (lints,
reduction, codegen).  This module lowers a block **once** into a flat tuple
of micro-op tuples over variable *names* (mirroring the interpreter's
block-compiled lowering), so evaluating a block's abstract effect becomes a
tight loop over small tuples with an integer opcode switch.

Two consumers share the lowering:

* :func:`run_program` evaluates a lowered block over a plain name→value
  dict — the drop-in replacement for ``transfer_block`` /
  ``block_site_values`` used by :class:`CondConstResult`'s memoized
  ``site_values()`` / ``output_env()``;
* :mod:`repro.dataflow.wz_compiled` re-lowers the name-level steps to dense
  var-ids and small-int lattice cells for its env-array solver.

Micro-op semantics exactly mirror
:func:`~repro.dataflow.transfer.transfer_instr`: pure instructions evaluate
through :func:`~repro.ir.ops.eval_binop`/:func:`~repro.ir.ops.eval_unop`
with the optimistic rule (TOP dominates BOT), ``Load``/``Call`` destinations
go to BOT, ``Store``/``Print`` lower to nothing.  All-constant pure
instructions fold at lowering time — the operator semantics are total, so
the folded value equals what every visit would recompute.

Lowered programs are cached in a small LRU keyed by block *identity*
(:func:`lower_transfer`).  The cache holds a strong reference to each block,
so a cached ``id()`` can never be reused by a different live block.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Union

from ..ir.basic_block import BasicBlock
from ..ir.instructions import Assign, BinOp, Call, Load, Print, Store, UnOp
from ..ir.operands import Const, Var
from ..ir.ops import BINOPS, UNOPS, eval_binop, eval_unop
from .lattice import BOT, TOP, FlatValue

#: Micro-op opcodes (first element of every step tuple).
W_CONST = 0  #: ``(W_CONST, dest, value)`` — dest := known constant
W_COPY = 1  #: ``(W_COPY, dest, src)`` — dest := value of variable ``src``
W_BOT = 2  #: ``(W_BOT, dest)`` — dest := BOT (loads, call results)
W_UN = 3  #: ``(W_UN, dest, fn, src)`` — unary operator over one variable
W_BIN_VV = 4  #: ``(W_BIN_VV, dest, fn, lhs, rhs)`` — both operands variables
W_BIN_VC = 5  #: ``(W_BIN_VC, dest, fn, lhs, rhs_const)``
W_BIN_CV = 6  #: ``(W_BIN_CV, dest, fn, lhs_const, rhs)``

Step = tuple
Name = str


class BlockProgram:
    """A basic block's transfer function, lowered to micro-ops.

    ``steps`` holds one micro-op per value-producing instruction, in block
    order; ``sites`` holds the instruction index each step came from (the
    keys of :meth:`CondConstResult.site_values`).  Side-effect-only
    instructions (``Store``, ``Print``, ``Call`` without a destination)
    lower to no step at all.
    """

    __slots__ = ("steps", "sites")

    def __init__(self, steps: tuple[Step, ...], sites: tuple[int, ...]) -> None:
        self.steps = steps
        self.sites = sites


def _lower_operand(op) -> tuple[bool, Union[int, str]]:
    """(is_const, payload): the constant value or the variable name."""
    if isinstance(op, Const):
        return True, op.value
    return False, op.name


def lower_block(block: BasicBlock) -> BlockProgram:
    """Lower ``block``'s straight-line instructions to a :class:`BlockProgram`."""
    steps: list[Step] = []
    sites: list[int] = []
    for idx, instr in enumerate(block.instrs):
        if isinstance(instr, Assign):
            const, payload = _lower_operand(instr.src)
            step = (
                (W_CONST, instr.dest, payload)
                if const
                else (W_COPY, instr.dest, payload)
            )
        elif isinstance(instr, BinOp):
            lc, lhs = _lower_operand(instr.lhs)
            rc, rhs = _lower_operand(instr.rhs)
            if lc and rc:
                step = (W_CONST, instr.dest, eval_binop(instr.op, lhs, rhs))
            elif lc:
                step = (W_BIN_CV, instr.dest, BINOPS[instr.op], lhs, rhs)
            elif rc:
                step = (W_BIN_VC, instr.dest, BINOPS[instr.op], lhs, rhs)
            else:
                step = (W_BIN_VV, instr.dest, BINOPS[instr.op], lhs, rhs)
        elif isinstance(instr, UnOp):
            const, payload = _lower_operand(instr.src)
            if const:
                step = (W_CONST, instr.dest, eval_unop(instr.op, payload))
            else:
                step = (W_UN, instr.dest, UNOPS[instr.op], payload)
        elif isinstance(instr, (Load, Call)):
            if instr.dest is None:
                continue
            step = (W_BOT, instr.dest)
        elif isinstance(instr, (Store, Print)):
            continue
        else:
            raise TypeError(f"unknown instruction {instr!r}")
        steps.append(step)
        sites.append(idx)
    return BlockProgram(tuple(steps), tuple(sites))


#: Block-identity LRU of lowered programs.  Values keep a strong reference
#: to their block, so a live cache entry's ``id()`` key cannot be recycled.
_LOWER_CACHE_SIZE = 512
_lower_cache: "OrderedDict[int, tuple[BasicBlock, BlockProgram]]" = OrderedDict()


def lower_transfer(block: BasicBlock) -> BlockProgram:
    """The cached :class:`BlockProgram` of ``block`` (lowered on first use)."""
    key = id(block)
    hit = _lower_cache.get(key)
    if hit is not None and hit[0] is block:
        _lower_cache.move_to_end(key)
        return hit[1]
    program = lower_block(block)
    _lower_cache[key] = (block, program)
    if len(_lower_cache) > _LOWER_CACHE_SIZE:
        _lower_cache.popitem(last=False)
    return program


def clear_lowering_cache() -> None:
    """Drop all cached block programs (test isolation hook)."""
    _lower_cache.clear()


def run_program(
    program: BlockProgram, values: dict[Name, FlatValue]
) -> list[FlatValue]:
    """Evaluate a lowered block over ``values`` (mutated in place).

    ``values`` maps variable names to flat lattice values; absent names are
    TOP.  Returns the abstract result of each step, aligned with
    ``program.sites`` — exactly what
    :func:`~repro.dataflow.transfer.block_site_values` computes by
    re-walking the instruction list.
    """
    results: list[FlatValue] = []
    append = results.append
    get = values.get
    for step in program.steps:
        op = step[0]
        if op == W_BIN_VV:
            a = get(step[3], TOP)
            b = get(step[4], TOP)
            if a is TOP or b is TOP:
                v = TOP
            elif a is BOT or b is BOT:
                v = BOT
            else:
                v = step[2](a, b)
        elif op == W_COPY:
            v = get(step[2], TOP)
        elif op == W_CONST:
            v = step[2]
        elif op == W_BIN_VC:
            a = get(step[3], TOP)
            if a is TOP or a is BOT:
                v = a
            else:
                v = step[2](a, step[4])
        elif op == W_BIN_CV:
            b = get(step[4], TOP)
            if b is TOP or b is BOT:
                v = b
            else:
                v = step[2](step[3], b)
        elif op == W_UN:
            a = get(step[3], TOP)
            if a is TOP or a is BOT:
                v = a
            else:
                v = step[2](a)
        else:  # W_BOT
            v = BOT
        values[step[1]] = v
        append(v)
    return results
