"""Local (single basic block) constant analysis.

The paper's *Local* category: "instructions [that] can be determined to be
constant with local analysis — that is, by scanning their enclosing basic
block".  Nothing is assumed about values flowing into the block.
"""

from __future__ import annotations

from typing import Optional

from ..ir.basic_block import BasicBlock
from ..ir.instructions import Assign, BinOp, UnOp
from ..ir.operands import Const, Operand


def local_constant_sites(block: BasicBlock) -> dict[int, int]:
    """Instruction indices in ``block`` whose result is constant by local
    analysis alone, mapped to the constant value.

    Only pure instructions can be locally constant; variables not assigned a
    constant earlier *in this block* are unknown.
    """
    known: dict[str, int] = {}
    sites: dict[int, int] = {}

    def value_of(op: Operand) -> Optional[int]:
        if isinstance(op, Const):
            return op.value
        return known.get(op.name)

    for idx, instr in enumerate(block.instrs):
        result: Optional[int] = None
        if isinstance(instr, Assign):
            result = value_of(instr.src)
        elif isinstance(instr, BinOp):
            a, b = value_of(instr.lhs), value_of(instr.rhs)
            if a is not None and b is not None:
                from ..ir.ops import eval_binop

                result = eval_binop(instr.op, a, b)
        elif isinstance(instr, UnOp):
            a = value_of(instr.src)
            if a is not None:
                from ..ir.ops import eval_unop

                result = eval_unop(instr.op, a)
        if instr.dest is not None:
            if result is not None:
                sites[idx] = result
                known[instr.dest] = result
            else:
                known.pop(instr.dest, None)
    return sites
