"""Command-line interface.

Mirrors the paper's two-pass tooling (PP instruments and profiles; PW
analyzes and optimizes) as subcommands::

    python -m repro compile  prog.mc                 # MiniC -> textual IR
    python -m repro run      prog.mc --args 10 --input data=1,2,3 \\
                             --save-profile prog.prof
    python -m repro optimize prog.mc --profile prog.prof --ca 0.97 --cr 0.95
    python -m repro dot      prog.mc --function work --profile prog.prof
    python -m repro report   m88ksim95
    python -m repro bench    --jobs 4 --cache-dir .repro-cache --out results/
    python -m repro serve    --port 8321 --jobs 4 --cache-dir .repro-cache
    python -m repro submit   gen-small --url http://127.0.0.1:8321

All subcommands are pure functions of their inputs, so they are unit-tested
by invoking :func:`main` directly.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Optional, Sequence

from .core import run_qualified
from .frontend import compile_program
from .interp import Interpreter
from .ir import validate_module
from .ir.dot import cfg_to_dot, traced_to_dot
from .opt.driver import optimize_module
from .profiles.serialize import dumps_profiles, loads_profiles


@contextmanager
def _trace_capture(args: argparse.Namespace):
    """Honor ``--trace-out`` and ``--mem-spans``: run the command body under
    enabled observability globals, streaming each span to the JSONL file as
    it closes (so a live sweep can be tailed) and, when asked, annotating
    spans with their tracemalloc peak."""
    trace_out = getattr(args, "trace_out", None)
    mem_spans = getattr(args, "mem_spans", False)
    if not trace_out and not mem_spans:
        yield
        return
    from contextlib import ExitStack

    from .obs import capture, memory_sampling, stream_trace_jsonl

    with ExitStack() as stack:
        tracer, registry = stack.enter_context(capture())
        if mem_spans:
            stack.enter_context(memory_sampling())
        if trace_out:
            stack.enter_context(stream_trace_jsonl(trace_out, tracer, registry))
        yield
    if trace_out:
        print(f"# trace written to {trace_out}", file=sys.stderr)


def _parse_inputs(pairs: Sequence[str]) -> dict[str, list[int]]:
    inputs: dict[str, list[int]] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--input expects name=v1,v2,...; got {pair!r}")
        name, _, values = pair.partition("=")
        inputs[name] = [int(v) for v in values.split(",") if v != ""]
    return inputs


def _load_module(path: str):
    with open(path) as f:
        module = compile_program(f.read())
    validate_module(module)
    return module


def cmd_compile(args: argparse.Namespace) -> int:
    module = _load_module(args.file)
    text = str(module) + "\n"
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    with _trace_capture(args):
        module = _load_module(args.file)
        interp = Interpreter(module, profile_mode="bl", engine=args.engine)
        result = interp.run(args.args, _parse_inputs(args.input))
    for values in result.output:
        print(" ".join(str(v) for v in values))
    print(f"# return value : {result.return_value}", file=sys.stderr)
    print(f"# instructions : {result.instr_count}", file=sys.stderr)
    print(f"# cost (cycles): {result.cost}", file=sys.stderr)
    if args.save_profile:
        with open(args.save_profile, "w") as f:
            f.write(dumps_profiles(result.profiles))
        print(f"# profile saved to {args.save_profile}", file=sys.stderr)
    if args.check:
        from .checks.runner import check_module, check_run_result
        from .dataflow import engine_scope, wz_engine_scope

        with engine_scope(args.dataflow_engine), wz_engine_scope(args.wz_engine):
            diags = check_module(module, workload=args.file)
            check_run_result(module, result, workload=args.file, out=diags)
        print(f"# checks: {diags.summary()}", file=sys.stderr)
        for d in diags:
            print(f"#   {d.format()}", file=sys.stderr)
        if diags.has_errors:
            return 2
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    module = _load_module(args.file)
    with open(args.profile) as f:
        profiles = loads_profiles(f.read())

    optimized, reports = optimize_module(
        module, profiles, ca=args.ca, cr=args.cr
    )
    text = str(optimized) + "\n"
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
    for report in reports:
        print(
            f"# {report.name}: {report.blocks_before} -> "
            f"{report.blocks_after} blocks, {report.hot_paths} hot paths",
            file=sys.stderr,
        )
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    from .ir import Cfg

    module = _load_module(args.file)
    fn = module.functions.get(args.function)
    if fn is None:
        raise SystemExit(f"no function {args.function!r} in {args.file}")
    if args.profile:
        with open(args.profile) as f:
            profiles = loads_profiles(f.read())
        profile = profiles.get(args.function)
        if profile is None:
            raise SystemExit(f"profile has no routine {args.function!r}")
        qa = run_qualified(fn, profile, ca=args.ca, cr=args.cr)
        if not qa.traced:
            sys.stdout.write(cfg_to_dot(qa.cfg, name=args.function) + "\n")
            return 0
        graph = qa.reduced if args.reduced else qa.hpg
        weights = qa.reduction.weights if args.reduced else None
        sys.stdout.write(
            traced_to_dot(graph, name=args.function, weights=weights) + "\n"
        )
    else:
        sys.stdout.write(
            cfg_to_dot(Cfg.from_function(fn), name=args.function) + "\n"
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .evaluation import WorkloadRun, format_table
    from .obs import render_span_tree
    from .workloads import WORKLOAD_NAMES, get_workload

    if args.workload not in WORKLOAD_NAMES:
        raise SystemExit(
            f"unknown workload {args.workload!r}; choose from {WORKLOAD_NAMES}"
        )
    checker = None
    if args.check:
        from .checks.runner import PipelineChecker

        checker = PipelineChecker()
    with _trace_capture(args):
        run = WorkloadRun(
            get_workload(args.workload),
            engine=args.engine,
            checker=checker,
            dataflow_engine=args.dataflow_engine,
            wz_engine=args.wz_engine,
        )
        agg = run.aggregate_classification(args.ca, args.cr)
        orig, hpg, red = run.graph_sizes(args.ca, args.cr)
        row = run.table2(args.ca, args.cr)
    rows = [
        ["CFG nodes", run.cfg_nodes],
        ["executed paths (train)", run.executed_paths],
        [f"hot paths (CA={args.ca})", run.hot_path_count(args.ca)],
        ["traced vertices", hpg],
        ["reduced vertices", red],
        ["WZ non-local constants", agg.iterative_nonlocal],
        ["qualified non-local constants", agg.qualified_nonlocal],
        ["base cost", row.base_cost],
        ["optimized cost", row.optimized_cost],
        ["speedup", f"{row.speedup:.3f}x"],
        ["engine", run.engine],
        ["dataflow engine", run.dataflow_engine],
        ["wz engine", run.wz_engine],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"{args.workload} @ CA={args.ca}, CR={args.cr}",
        )
    )
    # Stage timings come from the run's spans now, rendered by the shared
    # exporter rather than ad-hoc rows.
    print()
    print("stage spans:")
    print(render_span_tree(run.tracer.spans(), top=3))
    if checker is not None:
        print(f"# checks: {checker.diagnostics.summary()}", file=sys.stderr)
        for d in checker.diagnostics:
            print(f"#   {d.format()}", file=sys.stderr)
        if checker.diagnostics.has_errors:
            return 2
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .pipeline import ParallelDriver
    from .workloads import WORKLOAD_NAMES

    workloads = tuple(args.workloads) if args.workloads else WORKLOAD_NAMES
    unknown = [w for w in workloads if w not in WORKLOAD_NAMES]
    if unknown:
        raise SystemExit(
            f"unknown workload(s) {unknown}; choose from {WORKLOAD_NAMES}"
        )
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.cache_dir:
        import os

        if os.path.exists(args.cache_dir) and not os.path.isdir(args.cache_dir):
            raise SystemExit(f"--cache-dir {args.cache_dir!r} is not a directory")
    ca_values = tuple(args.ca) if args.ca else None
    driver = ParallelDriver(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        cr=args.cr,
        check=args.check,
        dataflow_engine=args.dataflow_engine,
        wz_engine=args.wz_engine,
        incremental=args.incremental,
    )
    with _trace_capture(args):
        if ca_values is None:
            result = driver.sweep(workloads)
        else:
            result = driver.sweep(workloads, ca_values)
    artifacts = result.artifacts()
    if args.out:
        import os

        os.makedirs(args.out, exist_ok=True)
        for name, text in artifacts.items():
            path = os.path.join(args.out, f"{name}.txt")
            with open(path, "w") as f:
                f.write(text + "\n")
            print(f"# wrote {path}", file=sys.stderr)
    else:
        for name, text in artifacts.items():
            print(text)
            print()
    print(f"# jobs          : {args.jobs}", file=sys.stderr)
    print(f"# cache         : {args.cache_dir or '(in-memory)'}", file=sys.stderr)
    print(f"# cache activity: {result.cache_stats.summary()}", file=sys.stderr)
    if args.check:
        print(f"# checks        : {result.diagnostics.summary()}", file=sys.stderr)
        for d in result.diagnostics.errors:
            print(f"#   {d.format()}", file=sys.stderr)
        if result.diagnostics.has_errors:
            return 2
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from .pipeline import ParallelDriver
    from .workloads.matrix import (
        INSTANCES,
        TARGET_NAMES,
        build_targets,
        load_archived,
        resolve_instances,
        resolve_target,
    )

    if args.list:
        print("targets  :", " ".join(TARGET_NAMES))
        print("instances:", " ".join(INSTANCES))
        print("(targets also accept ad-hoc gen:key=value,... specs)")
        return 0
    targets = tuple(args.targets) if args.targets else ("sieve", "gen-small")
    instance_names = tuple(args.instances) if args.instances else ("base", "reference")
    for name in targets:
        try:
            resolve_target(name)
        except KeyError as exc:
            raise SystemExit(str(exc))
    try:
        instances = resolve_instances(instance_names)
    except KeyError as exc:
        raise SystemExit(str(exc))
    if args.wz_engine is not None:
        # The override is part of each cell's configuration (and hence its
        # archive key), so run and report phases must agree on it.
        from dataclasses import replace

        instances = tuple(
            replace(i, wz_engine=args.wz_engine) for i in instances
        )
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")

    with _trace_capture(args):
        if args.phase in ("build", "all"):
            print(build_targets(targets))
            print()
            if args.phase == "build":
                return 0
        if args.phase == "report":
            if not args.archive:
                raise SystemExit("suite: --phase report needs --archive DIR")
            try:
                result = load_archived(args.archive, targets, instances)
            except FileNotFoundError as exc:
                raise SystemExit(str(exc))
        else:
            driver = ParallelDriver(jobs=args.jobs, cache_dir=args.cache_dir)
            result = driver.suite(
                targets,
                instance_names,
                archive_dir=args.archive,
                wz_engine=args.wz_engine,
            )
    report = result.report()
    if args.out:
        import os

        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, "suite.txt")
        with open(path, "w") as f:
            f.write(report + "\n")
        print(f"# wrote {path}", file=sys.stderr)
    else:
        print(report)
    print(f"# {result.summary()}", file=sys.stderr)
    for cell in result.failures():
        detail = []
        if not cell.interp_parity:
            detail.append(f"interp mismatch on {cell.interp_mismatches}")
        if not cell.dataflow_parity:
            detail.append(f"dataflow mismatch on {cell.dataflow_mismatches}")
        if not cell.wz_parity:
            detail.append(f"wz mismatch on {cell.wz_mismatches}")
        if not cell.checks_clean:
            detail.append(f"{cell.checks_errors} check error(s)")
        print(
            f"#   {cell.target}/{cell.instance}: {'; '.join(detail)}",
            file=sys.stderr,
        )
    return 0 if result.ok else 2


def cmd_trace(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from .obs import (
        capture,
        memory_sampling,
        render_trace_report,
        stream_trace_jsonl,
    )
    from .pipeline.cached_run import make_run
    from .workloads import WORKLOAD_NAMES, get_workload

    name = args.workload
    if name is None:
        if not args.self_check:
            raise SystemExit("trace: give a workload name (or --self-check)")
        name = "compress95"
    if name not in WORKLOAD_NAMES:
        raise SystemExit(
            f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}"
        )
    with ExitStack() as stack:
        tracer, registry = stack.enter_context(capture())
        if args.mem_spans:
            stack.enter_context(memory_sampling())
        if args.trace_out:
            stack.enter_context(
                stream_trace_jsonl(args.trace_out, tracer, registry)
            )
        run = make_run(
            get_workload(name),
            args.cache_dir,
            engine=args.engine,
            dataflow_engine=args.dataflow_engine,
            wz_engine=args.wz_engine,
        )
        run.aggregate_classification(args.ca, args.cr)
    print(render_trace_report(tracer, registry, top=args.top))
    if args.trace_out:
        print(f"# trace written to {args.trace_out}", file=sys.stderr)
    if args.self_check:
        required = {
            "workload.compile",
            "workload.train_run",
            "workload.ref_run",
            "workload.qualify",
        }
        names = {span.name for span in tracer.spans()}
        counter_total = sum(registry.snapshot()["counters"].values())
        problems = []
        if not required <= names:
            problems.append(f"missing spans: {sorted(required - names)}")
        if counter_total <= 0:
            problems.append("no counter increments recorded")
        for problem in problems:
            print(f"# self-check FAILED: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"# self-check OK: {len(tracer.spans())} spans, "
            f"{counter_total} counter increments",
            file=sys.stderr,
        )
    return 0


def _check_self_check(wz_engine: str = "auto") -> int:
    """Smoke-test the checker layer itself: a clean run must report zero
    errors with the expected spans, and a deliberately corrupted profile
    must be caught (CI's guarantee that the checkers can actually fail).

    ``wz_engine`` runs the clean pipeline under the chosen
    conditional-constant engine, so CI can smoke the dense lowering too."""
    from .checks.profile_checks import PROF_FLOW_IMBALANCE, check_profile
    from .checks.runner import check_program
    from .ir.cfg import Cfg
    from .obs import capture
    from .profiles.path_profile import PathProfile
    from .profiles.recording import recording_edges
    from .workloads.running_example import (
        running_example_module,
        training_run_inputs,
    )

    module = running_example_module()
    n, inputs = training_run_inputs()
    with capture() as (tracer, registry):
        diags = check_program(
            module, [n], inputs, ca=1.0, cr=0.95,
            workload="running_example", wz_engine=wz_engine,
        )
    problems = []
    if diags.has_errors:
        problems.append(f"clean run reported errors: {diags.summary()}")
    span_names = {span.name for span in tracer.spans()}
    required = {"check.ir", "check.lint", "check.profile", "check.automaton",
                "check.hpg", "check.dataflow"}
    if not required <= span_names:
        problems.append(f"missing check spans: {sorted(required - span_names)}")
    runs = sum(
        c for (name, _), c in registry.snapshot()["counters"].items()
        if name == "check_pass_runs"
    )
    if runs <= 0:
        problems.append("no check_pass_runs counter increments")

    # Negative control: break flow conservation and require detection.
    fn = module.function("work")
    cfg = Cfg.from_function(fn)
    recording = recording_edges(cfg)
    interp = Interpreter(module, profile_mode="bl", track_sites=False)
    profile = interp.run([n], inputs).profiles["work"]
    corrupted = PathProfile(dict(profile.items()))
    # Inflate a non-cyclic path starting mid-routine: extra traversals of a
    # cycle (or of a whole entry-to-exit trip) would still conserve flow.
    entry_succs = set(cfg.succs(cfg.entry))
    extra = next(
        p
        for p in corrupted.paths()
        if p.start not in entry_succs and p.end != p.start
    )
    corrupted.add(extra, 7)
    bad = check_profile("work", cfg, recording, corrupted)
    if PROF_FLOW_IMBALANCE not in bad.codes():
        problems.append("corrupted profile not caught by PROF004")

    for problem in problems:
        print(f"# self-check FAILED: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(
        f"# self-check OK: {len(diags)} clean findings, "
        f"{len(bad.errors)} seeded defects caught",
        file=sys.stderr,
    )
    return 0


def _aggregate_span_timings(spans) -> dict[str, float]:
    """Total wall-clock seconds per span name, sorted by name."""
    timings: dict[str, float] = {}
    for span in spans:
        timings[span.name] = timings.get(span.name, 0.0) + span.duration
    return {name: timings[name] for name in sorted(timings)}


def cmd_check(args: argparse.Namespace) -> int:
    import json

    from .workloads import WORKLOAD_NAMES

    if args.self_check:
        return _check_self_check(args.wz_engine)
    if not args.target:
        raise SystemExit("check: give a workload name, a .mc file, or --self-check")

    def _run_checks():
        if args.target in WORKLOAD_NAMES:
            from .pipeline.cached_run import make_run
            from .workloads import get_workload

            run = make_run(
                get_workload(args.target),
                args.cache_dir,
                engine=args.engine,
                check=True,
                dataflow_engine=args.dataflow_engine,
                wz_engine=args.wz_engine,
            )
            run.qualified(args.ca, args.cr)
            return run.checker.diagnostics
        elif args.target == "running_example":
            from .checks.runner import check_program
            from .workloads.running_example import (
                running_example_module,
                training_run_inputs,
            )

            n, inputs = training_run_inputs()
            return check_program(
                running_example_module(),
                [n],
                inputs,
                ca=args.ca,
                cr=args.cr,
                engine=args.engine,
                workload="running_example",
                dataflow_engine=args.dataflow_engine,
                wz_engine=args.wz_engine,
            )
        else:
            from .checks.runner import check_program

            with open(args.target) as f:
                module = compile_program(f.read())
            return check_program(
                module,
                args.args,
                _parse_inputs(args.input),
                ca=args.ca,
                cr=args.cr,
                engine=args.engine,
                workload=args.target,
                dataflow_engine=args.dataflow_engine,
                wz_engine=args.wz_engine,
            )

    timings: Optional[dict[str, float]] = None
    with _trace_capture(args):
        if args.json:
            # Per-pass wall times ride along in the JSON payload; spans are
            # captured locally unless --trace-out already enabled them.
            from .obs import capture, get_tracer

            ambient = get_tracer()
            if ambient.enabled:
                before = len(ambient.spans())
                diags = _run_checks()
                timings = _aggregate_span_timings(ambient.spans()[before:])
            else:
                with capture() as (tracer, _registry):
                    diags = _run_checks()
                timings = _aggregate_span_timings(tracer.spans())
        else:
            diags = _run_checks()
    if args.json:
        payload = {
            "diagnostics": diags.to_dicts(),
            "counts": diags.counts(),
            "timings": timings,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(diags.render_text())
    return diags.exit_code(args.fail_on)


def _is_named_lint_target(name: str) -> bool:
    from .workloads import HANDWRITTEN_NAMES, WORKLOAD_NAMES
    from .workloads.generate import GEN_PRESETS

    return (
        name in WORKLOAD_NAMES
        or name in HANDWRITTEN_NAMES
        or name in GEN_PRESETS
        or name.startswith("gen:")
    )


def cmd_lint(args: argparse.Namespace) -> int:
    import json
    import os

    from .analyze import (
        Baseline,
        baseline_of,
        finding_fingerprint,
        lint_program,
        lint_target,
        partition,
        render_text,
        to_json_payload,
        write_sarif,
    )
    from .analyze.runner import _lint_target_job
    from .checks.diagnostics import Diagnostic, Diagnostics
    from .workloads import WORKLOAD_NAMES

    targets = list(args.targets) if args.targets else list(WORKLOAD_NAMES)
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.update_baseline and not args.baseline:
        raise SystemExit("lint: --update-baseline requires --baseline FILE")

    named = [t for t in targets if _is_named_lint_target(t)]
    results: dict[str, list] = {}
    with _trace_capture(args):
        if args.jobs > 1 and len(named) > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=args.jobs) as pool:
                futures = [
                    pool.submit(
                        _lint_target_job,
                        t,
                        args.cache_dir,
                        args.ca,
                        args.cr,
                        args.min_mass,
                        args.engine,
                        args.dataflow_engine,
                        args.wz_engine,
                    )
                    for t in named
                ]
                for future in futures:
                    name, dicts = future.result()
                    results[name] = [Diagnostic.from_dict(d) for d in dicts]
        else:
            for t in named:
                results[t] = list(
                    lint_target(
                        t,
                        cache_dir=args.cache_dir,
                        ca=args.ca,
                        cr=args.cr,
                        min_mass=args.min_mass,
                        engine=args.engine,
                        dataflow_engine=args.dataflow_engine,
                        wz_engine=args.wz_engine,
                    )
                )
        for t in targets:
            if t in results:
                continue
            if t == "running_example":
                from .workloads.running_example import (
                    running_example_module,
                    training_run_inputs,
                )

                n, inputs = training_run_inputs()
                module, prog_args, prog_inputs = (
                    running_example_module(),
                    [n],
                    inputs,
                )
            else:
                with open(t) as f:
                    module = compile_program(f.read())
                prog_args, prog_inputs = args.args, _parse_inputs(args.input)
            results[t] = list(
                lint_program(
                    module,
                    prog_args,
                    prog_inputs,
                    ca=args.ca,
                    cr=args.cr,
                    engine=args.engine,
                    workload=t,
                    dataflow_engine=args.dataflow_engine,
                    wz_engine=args.wz_engine,
                    min_mass=args.min_mass,
                )
            )

    # Findings in target order (stable regardless of --jobs), each target's
    # list already ranked by mass.
    pairs = [(t, d) for t in targets for d in results[t]]

    if args.update_baseline:
        existing = (
            Baseline.load(args.baseline)
            if os.path.exists(args.baseline)
            else Baseline()
        )
        updated = Baseline()
        for t, d in pairs:
            fp = finding_fingerprint(t, d)
            justification = (
                existing.justification(fp) or args.justification
            )
            updated.record(t, d, justification)
        updated.save(args.baseline)
        print(
            f"# baseline updated: {len(updated)} finding(s) -> {args.baseline}",
            file=sys.stderr,
        )

    baseline = None
    if args.baseline and os.path.exists(args.baseline):
        baseline = Baseline.load(args.baseline)
    new, suppressed = partition(pairs, baseline)

    if args.sarif:
        write_sarif(args.sarif, pairs, baseline)
        print(f"# SARIF written to {args.sarif}", file=sys.stderr)
    if args.json:
        print(json.dumps(to_json_payload(pairs, baseline), indent=2))
    else:
        print(render_text(pairs, baseline, limit=args.limit))

    code = Diagnostics(d for _, d in new).exit_code(args.fail_on)
    if args.fail_on_new and new:
        code = code or 1
    return code


def cmd_diff(args: argparse.Namespace) -> int:
    import json as _json

    from .pipeline.cache import ArtifactCache
    from .pipeline.incremental import render_diff_text
    from .service.api import DiffRequest, execute_diff

    if _is_named_lint_target(args.old):
        version = {"target": args.old}
    else:
        with open(args.old) as f:
            version = {
                "source": f.read(),
                "name": args.old,
                "args": tuple(args.args),
                "inputs": _parse_inputs(args.input),
            }
    if args.new is not None:
        with open(args.new) as f:
            version["new_source"] = f.read()
    elif args.seed_edit:
        version["seed_edit"] = True
        version["edit_function"] = args.edit_function
    else:
        raise SystemExit("diff: give a NEW file or --seed-edit")
    try:
        request = DiffRequest(
            **version,
            engine=args.engine,
            dataflow_engine=args.dataflow_engine,
            wz_engine=args.wz_engine,
            ca=args.ca,
            cr=args.cr,
            min_mass=args.min_mass,
            check=args.check,
        )
        request.validate_target()
    except ValueError as exc:
        raise SystemExit(f"diff: {exc}")
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else None
    with _trace_capture(args):
        payload = execute_diff(request, cache)
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_diff_text(payload["report"] | {"timings": payload["timings"]}))
    if args.fail_on_new and payload["report"]["findings"]["new"]:
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .obs import Tracer, render_span_tree
    from .service import AnalysisService, make_server

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.cache_dir:
        import os

        if os.path.exists(args.cache_dir) and not os.path.isdir(args.cache_dir):
            raise SystemExit(f"--cache-dir {args.cache_dir!r} is not a directory")

    tracer = Tracer(enabled=True) if args.trace else None
    service = AnalysisService(
        jobs=args.jobs, cache_dir=args.cache_dir, tracer=tracer
    )
    server = make_server(args.host, args.port, service, verbose=args.verbose)
    host, port = server.server_address[:2]

    def _interrupt(signum, frame):
        # Re-raise as KeyboardInterrupt so one shutdown path serves ^C,
        # SIGTERM, and test-driven server.shutdown() alike.
        raise KeyboardInterrupt

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGINT, _interrupt)
        signal.signal(signal.SIGTERM, _interrupt)

    print(f"# repro serve listening on http://{host}:{port}", file=sys.stderr)
    print(
        f"# workers: {args.jobs}; cache: {args.cache_dir or '(in-memory)'}",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        abandoned = service.shutdown(drain=True)
        print(
            f"# repro serve stopped; pool drained"
            + (f" ({abandoned} queued job(s) abandoned)" if abandoned else ""),
            file=sys.stderr,
        )
        print(f"# cache activity: {service.status()['cache']}", file=sys.stderr)
        if tracer is not None and tracer.spans():
            print(render_span_tree(tracer.spans(), top=5), file=sys.stderr)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .service import AnalysisRequest, ServiceClient, ServiceError

    if (args.target is None) == (args.file is None):
        raise SystemExit("submit: give a target name or --file, not both")
    source = None
    if args.file is not None:
        with open(args.file) as f:
            source = f.read()
    try:
        request = AnalysisRequest(
            target=args.target,
            source=source,
            name=args.file or "inline",
            args=tuple(args.args),
            inputs=_parse_inputs(args.input),
            engine=args.engine,
            dataflow_engine=args.dataflow_engine,
            wz_engine=args.wz_engine,
            ca=args.ca,
            cr=args.cr,
            check=not args.no_check,
        )
    except ValueError as exc:
        raise SystemExit(f"submit: {exc}")

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        if args.wait_ready:
            client.wait_ready(args.wait_ready)
        result = client.analyze(request, timeout=args.timeout)
    except ServiceError as exc:
        raise SystemExit(f"submit: {exc}")

    if args.json:
        import json

        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        summary = result["summary"]
        sharp = summary["sharpening"]
        ratio = sharp["improvement_ratio"]
        print(f"workload              : {result['workload']}")
        print(f"CFG nodes             : {summary['cfg_nodes']}")
        print(f"executed paths (train): {summary['executed_paths']}")
        print(f"hot paths (CA={args.ca}) : {summary['hot_paths']}")
        print(f"WZ non-local constants: {sharp['iterative_nonlocal']}")
        print(f"qualified non-local   : {sharp['qualified_nonlocal']}")
        print(
            "improvement ratio     : "
            + (f"{ratio:.3f}x" if ratio is not None else "inf")
        )
    diagnostics = result.get("diagnostics")
    if diagnostics is not None:
        print(f"# checks: {diagnostics['summary']}", file=sys.stderr)
        if diagnostics["has_errors"]:
            for record in diagnostics["records"]:
                print(f"#   {record}", file=sys.stderr)
            return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Path-qualified data-flow analysis (Ammons & Larus, PLDI 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile MiniC to textual IR")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="run a MiniC program and collect a profile")
    p.add_argument("file")
    p.add_argument("--args", type=int, nargs="*", default=[])
    p.add_argument("--input", action="append", default=[], metavar="NAME=V1,V2")
    p.add_argument("--save-profile", metavar="FILE")
    p.add_argument(
        "--engine",
        choices=("reference", "compiled"),
        default="compiled",
        help="execution engine (compiled = block-compiled fast path)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="run the invariant checkers on the module and profile "
        "(exit 2 on error findings)",
    )
    _add_trace_out(p)
    _add_dataflow_engine(p)
    _add_wz_engine(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("optimize", help="path-qualified optimization")
    p.add_argument("file")
    p.add_argument("--profile", required=True)
    p.add_argument("--ca", type=float, default=0.97)
    p.add_argument("--cr", type=float, default=0.95)
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("dot", help="emit Graphviz for a routine's CFG or HPG")
    p.add_argument("file")
    p.add_argument("--function", required=True)
    p.add_argument("--profile")
    p.add_argument("--reduced", action="store_true")
    p.add_argument("--ca", type=float, default=0.97)
    p.add_argument("--cr", type=float, default=0.95)
    p.set_defaults(func=cmd_dot)

    p = sub.add_parser("report", help="experiment summary for a workload")
    p.add_argument("workload")
    p.add_argument("--ca", type=float, default=0.97)
    p.add_argument("--cr", type=float, default=0.95)
    p.add_argument(
        "--engine",
        choices=("reference", "compiled"),
        default="compiled",
        help="execution engine for the profiling runs",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="verify every pipeline stage with the invariant checkers "
        "(exit 2 on error findings)",
    )
    _add_trace_out(p)
    _add_dataflow_engine(p)
    _add_wz_engine(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "bench",
        help="coverage sweep over workloads (parallel, cached); "
        "emits the figure/table artifacts",
    )
    p.add_argument(
        "--workloads", nargs="*", metavar="NAME", help="subset (default: all)"
    )
    p.add_argument(
        "--ca",
        type=float,
        nargs="*",
        metavar="CA",
        help="coverage levels (default: the paper's Figure 9/11/12 sweep)",
    )
    p.add_argument("--cr", type=float, default=0.95)
    p.add_argument(
        "--jobs", type=int, default=1, help="process-pool width (1 = serial)"
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent artifact cache (omit for in-memory only)",
    )
    p.add_argument("--out", metavar="DIR", help="write artifacts here")
    p.add_argument(
        "--check",
        action="store_true",
        help="verify every pipeline stage in every job "
        "(exit 2 on error findings)",
    )
    p.add_argument(
        "--incremental",
        action="store_true",
        help="memoize whole sweep cells by module fingerprint: after an "
        "edit, only cells whose workload changed re-run (warm cells skip "
        "checker re-runs)",
    )
    _add_trace_out(p)
    _add_dataflow_engine(p)
    _add_wz_engine(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "suite",
        help="target x instance workload matrix: generated + hand-written "
        "targets, each cell a differential test (interp parity, dataflow "
        "parity, checks-clean)",
    )
    p.add_argument(
        "--targets",
        nargs="*",
        metavar="NAME",
        help="targets: workload/handwritten/preset names or gen:k=v,... "
        "specs (default: sieve gen-small)",
    )
    p.add_argument(
        "--instances",
        nargs="*",
        metavar="NAME",
        help="instance configurations (default: base reference)",
    )
    p.add_argument(
        "--phase",
        choices=("build", "run", "report", "all"),
        default="all",
        help="build = compile+validate only; run = execute cells; "
        "report = re-render from --archive without recomputation",
    )
    p.add_argument(
        "--jobs", type=int, default=1, help="process-pool width (1 = serial)"
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent artifact cache (omit for in-memory only)",
    )
    p.add_argument(
        "--archive",
        metavar="DIR",
        help="content-addressed cell archive (required for --phase report)",
    )
    p.add_argument("--out", metavar="DIR", help="write the suite table here")
    p.add_argument(
        "--list", action="store_true", help="list targets and instances"
    )
    _add_trace_out(p)
    _add_wz_engine(p, default=None)
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser(
        "trace",
        help="run one workload under observability; print the span-tree "
        "report and metric counters",
    )
    p.add_argument(
        "workload",
        nargs="?",
        help="workload name (defaults to compress95 with --self-check)",
    )
    p.add_argument("--ca", type=float, default=0.97)
    p.add_argument("--cr", type=float, default=0.95)
    p.add_argument(
        "--engine",
        choices=("reference", "compiled"),
        default="compiled",
        help="execution engine for the profiling runs",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent artifact cache (omit for uncached)",
    )
    p.add_argument(
        "--top", type=int, default=5, help="length of the slowest-span list"
    )
    p.add_argument(
        "--self-check",
        action="store_true",
        help="verify the expected stage spans and counters were recorded "
        "(CI smoke test)",
    )
    _add_trace_out(p)
    _add_dataflow_engine(p)
    _add_wz_engine(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "serve",
        help="analysis-as-a-service daemon: HTTP/JSON job API over a shared "
        "artifact cache and worker pool (see docs/SERVICE.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8321,
        help="TCP port (0 = ephemeral; the chosen port is printed to stderr)",
    )
    p.add_argument(
        "--jobs", type=int, default=2, help="request worker threads"
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent artifact cache shared by every request "
        "(omit for in-memory only)",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="retain request spans and print the span tree on shutdown",
    )
    p.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit one analysis to a running 'repro serve' daemon and "
        "wait for the result",
    )
    p.add_argument(
        "target",
        nargs="?",
        help="target name (workload/handwritten/preset or gen:k=v,... spec); "
        "omit when submitting a file with --file",
    )
    p.add_argument(
        "--file", metavar="FILE.mc", help="submit inline MiniC source instead"
    )
    p.add_argument(
        "--url",
        default="http://127.0.0.1:8321",
        help="daemon base URL (default: %(default)s)",
    )
    p.add_argument("--args", type=int, nargs="*", default=[])
    p.add_argument("--input", action="append", default=[], metavar="NAME=V1,V2")
    p.add_argument("--ca", type=float, default=0.97)
    p.add_argument("--cr", type=float, default=0.95)
    p.add_argument(
        "--engine",
        choices=("reference", "compiled"),
        default="compiled",
        help="execution engine for the profiling runs",
    )
    p.add_argument(
        "--no-check",
        action="store_true",
        help="skip the invariant checkers (they run by default; "
        "error findings exit 2)",
    )
    p.add_argument("--json", action="store_true", help="print the full result payload")
    p.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="seconds to wait for the job (default: %(default)s)",
    )
    p.add_argument(
        "--wait-ready",
        type=float,
        metavar="SECONDS",
        help="first retry /healthz for up to SECONDS (for freshly "
        "backgrounded daemons)",
    )
    _add_dataflow_engine(p)
    _add_wz_engine(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "check",
        help="run the self-verifying analysis layer: IR/profile/automaton/"
        "HPG/dataflow invariant checks and lints",
    )
    p.add_argument(
        "target",
        nargs="?",
        help="workload name, 'running_example', or a MiniC file",
    )
    p.add_argument("--args", type=int, nargs="*", default=[])
    p.add_argument("--input", action="append", default=[], metavar="NAME=V1,V2")
    p.add_argument("--ca", type=float, default=0.97)
    p.add_argument("--cr", type=float, default=0.95)
    p.add_argument(
        "--engine",
        choices=("reference", "compiled"),
        default="compiled",
        help="execution engine for the profiling runs",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent artifact cache for workload targets "
        "(cached artifacts are checked too)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="lowest severity that makes the exit code non-zero",
    )
    p.add_argument(
        "--self-check",
        action="store_true",
        help="verify the checkers themselves: a clean run reports no "
        "errors and a seeded defect is caught (CI smoke test)",
    )
    _add_trace_out(p)
    _add_dataflow_engine(p)
    _add_wz_engine(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "lint",
        help="profile-qualified static analyzer: hot-path-ranked LINT "
        "findings with SARIF export and baseline suppression "
        "(see docs/ANALYZER.md)",
    )
    p.add_argument(
        "targets",
        nargs="*",
        metavar="TARGET",
        help="workload/handwritten/preset names, gen:k=v,... specs, "
        "'running_example', or MiniC files (default: all registered "
        "workloads)",
    )
    p.add_argument("--args", type=int, nargs="*", default=[],
                   help="program arguments for MiniC file targets")
    p.add_argument("--input", action="append", default=[],
                   metavar="NAME=V1,V2",
                   help="input arrays for MiniC file targets")
    p.add_argument("--ca", type=float, default=0.97)
    p.add_argument("--cr", type=float, default=0.95)
    p.add_argument(
        "--min-mass",
        type=float,
        default=0.5,
        help="drop path findings whose supporting profile-mass fraction "
        "is below this threshold (default: %(default)s)",
    )
    p.add_argument(
        "--engine",
        choices=("reference", "compiled"),
        default="compiled",
        help="execution engine for the profiling runs",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent artifact cache (findings are cached under the "
        "analyzer configuration)",
    )
    p.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool width over named targets (1 = serial)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--sarif", metavar="FILE", help="also write a SARIF 2.1.0 log"
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help="content-addressed baseline of accepted findings "
        "(suppresses known findings; see --fail-on-new)",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline to accept every current finding "
        "(existing justifications are preserved)",
    )
    p.add_argument(
        "--justification",
        default="accepted at baseline update",
        help="justification recorded for newly baselined findings",
    )
    p.add_argument(
        "--fail-on-new",
        action="store_true",
        help="exit non-zero when any finding is not in the baseline",
    )
    p.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="never",
        help="lowest severity of *new* findings that makes the exit code "
        "non-zero (default: %(default)s)",
    )
    p.add_argument(
        "--limit", type=int, default=None,
        help="show at most this many findings in the text report",
    )
    _add_trace_out(p)
    _add_dataflow_engine(p)
    _add_wz_engine(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "diff",
        help="incremental re-analysis of an edit: per-function "
        "hit/recompute ledger plus new/fixed/unchanged findings "
        "(see docs/INCREMENTAL.md)",
    )
    p.add_argument(
        "old",
        metavar="OLD",
        help="old version: a named target (workload/preset/gen:spec) "
        "or a MiniC file",
    )
    p.add_argument(
        "new",
        nargs="?",
        metavar="NEW",
        help="new version: a MiniC file (omit with --seed-edit)",
    )
    p.add_argument(
        "--seed-edit",
        action="store_true",
        help="derive the new version by injecting a deterministic "
        "one-function edit into the old source (benchmark/smoke mode)",
    )
    p.add_argument(
        "--edit-function",
        metavar="NAME",
        help="function the seeded edit targets (default: the first)",
    )
    p.add_argument("--args", type=int, nargs="*", default=[],
                   help="program arguments for MiniC file targets")
    p.add_argument("--input", action="append", default=[],
                   metavar="NAME=V1,V2",
                   help="input arrays for MiniC file targets")
    p.add_argument("--ca", type=float, default=0.97)
    p.add_argument("--cr", type=float, default=0.95)
    p.add_argument(
        "--min-mass",
        type=float,
        default=0.5,
        help="analyzer mass threshold (default: %(default)s)",
    )
    p.add_argument(
        "--engine",
        choices=("reference", "compiled"),
        default="compiled",
        help="execution engine for the profiling runs",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent artifact cache shared between the two versions "
        "(and with earlier runs)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="run the pipeline checkers on both versions and diff their "
        "diagnostics",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--fail-on-new",
        action="store_true",
        help="exit 1 when the edit introduces any new lint finding",
    )
    _add_trace_out(p)
    _add_dataflow_engine(p)
    _add_wz_engine(p)
    p.set_defaults(func=cmd_diff)

    return parser


def _add_trace_out(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace-out",
        metavar="FILE",
        help="stream the command's spans (then metrics) as line-buffered "
        "JSONL — tailable while the command runs",
    )
    p.add_argument(
        "--mem-spans",
        action="store_true",
        help="annotate every span with its tracemalloc peak (mem_peak_kb); "
        "implies observability capture",
    )


def _add_dataflow_engine(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--dataflow-engine",
        choices=("auto", "generic", "compiled"),
        default="auto",
        help="dataflow solver engine for the set-problem analyses "
        "(auto = bitset kernel for separable problems, generic otherwise)",
    )


def _add_wz_engine(p: argparse.ArgumentParser, default: Optional[str] = "auto") -> None:
    p.add_argument(
        "--wz-engine",
        choices=("auto", "generic", "compiled"),
        default=default,
        help="Wegman-Zadek conditional-constant engine (auto = dense "
        "env-array lowering above the size crossover, generic below it)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)
