"""Opt-in per-span peak-memory sampling backed by :mod:`tracemalloc`.

The paper discusses the hot-path graph's size blow-up but the harness only
measured its *time* cost; with sampling enabled every finished span carries
a ``mem_peak_kb`` attribute — the peak traced allocation observed while the
span was open — so the qualify/solve stages' memory appetite lands in the
JSONL trace and the span-tree report alongside their wall time.

``tracemalloc`` exposes one process-wide peak, so nesting is handled by
bookkeeping: entering a span folds the running peak into every open span's
tally and resets the process peak; exiting folds the final reading back
into the parent.  A child's peak therefore never exceeds its parent's, and
a parent's own allocations between children are still counted.

Off by default and explicitly opt-in (``--mem-spans`` on the CLI,
:func:`memory_sampling` in code): tracing allocations costs real time, so
it must never leak into benchmarks that did not ask for it.  The hooks are
called by :class:`~repro.obs.tracer.Tracer` behind a single module-bool
check, which is free when sampling is off.

Spans opened before sampling was enabled (or on other threads mid-toggle)
simply get no attribute — the per-thread entry stack only tracks spans
entered while sampling was on.
"""

from __future__ import annotations

import threading
import tracemalloc
from contextlib import contextmanager

_enabled = False
_started_tracing = False
_local = threading.local()


def memory_sampling_enabled() -> bool:
    """Whether spans are currently annotated with ``mem_peak_kb``."""
    return _enabled


def enable_memory_sampling() -> None:
    """Start annotating spans (starts ``tracemalloc`` if needed)."""
    global _enabled, _started_tracing
    if not tracemalloc.is_tracing():
        tracemalloc.start()
        _started_tracing = True
    _enabled = True


def disable_memory_sampling() -> None:
    """Stop annotating spans; stops ``tracemalloc`` if we started it."""
    global _enabled, _started_tracing
    _enabled = False
    if _started_tracing and tracemalloc.is_tracing():
        tracemalloc.stop()
    _started_tracing = False
    _local.__dict__.pop("stack", None)


@contextmanager
def memory_sampling():
    """Scoped form: sample inside the block, restore the off state after."""
    enable_memory_sampling()
    try:
        yield
    finally:
        disable_memory_sampling()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def on_span_enter(span) -> None:
    """Tracer hook: credit the peak so far to the open spans, then reset
    the process peak so the new span starts from its own baseline."""
    size, peak = tracemalloc.get_traced_memory()
    stack = _stack()
    for i, tally in enumerate(stack):
        if peak > tally:
            stack[i] = peak
    tracemalloc.reset_peak()
    stack.append(size)


def on_span_exit(span) -> None:
    """Tracer hook: finish the span's tally, fold it into the parent, and
    attach the ``mem_peak_kb`` attribute."""
    stack = _stack()
    if not stack:
        return
    _, peak = tracemalloc.get_traced_memory()
    tally = stack.pop()
    if peak > tally:
        tally = peak
    if stack and tally > stack[-1]:
        stack[-1] = tally
    tracemalloc.reset_peak()
    span.set(mem_peak_kb=round(tally / 1024.0, 1))
