"""Observability: structured tracing, metrics, and exporters.

The pipeline's instrumentation substrate (see ``docs/OBSERVABILITY.md``):

* :class:`Tracer` / :class:`Span` — hierarchical wall-clock spans with a
  context-manager and decorator API (:mod:`repro.obs.tracer`);
* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms
  (:mod:`repro.obs.metrics`);
* exporters — JSONL, Prometheus text, and the human span-tree report
  (:mod:`repro.obs.export`).

Both the tracer and the registry have process-global defaults that start
*disabled*, so the instrumented library layers cost nothing until a CLI
flag, a test, or an embedder turns observability on — most conveniently
with :func:`capture`::

    with capture() as (tracer, registry):
        run = make_run(workload, cache_dir)
        run.aggregate_classification(0.97, 0.95)
    print(render_trace_report(tracer, registry))
"""

from contextlib import contextmanager

from .export import (
    PROMETHEUS_CONTENT_TYPE,
    JsonlStreamWriter,
    metrics_to_prometheus,
    render_metrics,
    render_span_tree,
    render_trace_report,
    stream_trace_jsonl,
    trace_to_jsonl,
    write_trace_jsonl,
)
from .memsample import (
    disable_memory_sampling,
    enable_memory_sampling,
    memory_sampling,
    memory_sampling_enabled,
)
from .metrics import (
    MetricsRegistry,
    diff_snapshots,
    get_metrics,
    scoped_metrics,
    set_metrics,
)
from .tracer import Span, Tracer, get_tracer, scoped_tracer, set_tracer, traced


def observability_enabled() -> bool:
    """True if either the global tracer or the global registry is on."""
    return get_tracer().enabled or get_metrics().enabled


@contextmanager
def capture(enabled: bool = True):
    """Install a fresh enabled tracer + registry as the process globals,
    yield them, and restore the previous globals on exit."""
    tracer = Tracer(enabled=enabled)
    registry = MetricsRegistry(enabled=enabled)
    prev_tracer = set_tracer(tracer)
    prev_registry = set_metrics(registry)
    try:
        yield tracer, registry
    finally:
        set_tracer(prev_tracer)
        set_metrics(prev_registry)


@contextmanager
def request_scope(
    tracer: "Tracer | None" = None,
    registry: "MetricsRegistry | None" = None,
    drain: bool = True,
):
    """Run the block under an isolated, enabled tracer + registry carried by
    contextvars — the per-request capture the analysis service uses.

    Unlike :func:`capture`, nothing process-global is touched while the
    block runs: concurrent threads each see only their own scope through
    :func:`get_tracer`/:func:`get_metrics`, so two interleaved requests
    produce disjoint span trees and independent counters.  On exit (when
    ``drain`` is true) the scope's spans are absorbed into whatever tracer
    is ambient *outside* the scope (usually the process global) if that
    tracer is enabled, and its metrics are merged the same way — which is
    how per-request counts accumulate into the daemon's ``/metrics``
    registry without double counting.
    """
    tracer = tracer if tracer is not None else Tracer()
    registry = registry if registry is not None else MetricsRegistry()
    try:
        with scoped_tracer(tracer), scoped_metrics(registry):
            yield tracer, registry
    finally:
        # Drain even when the request failed: errors are exactly the
        # requests whose metrics an operator wants to see.
        if drain:
            outer_tracer = get_tracer()
            if outer_tracer.enabled and outer_tracer is not tracer:
                outer_tracer.absorb_records(tracer.drain_records())
            outer_registry = get_metrics()
            if outer_registry.enabled and outer_registry is not registry:
                outer_registry.merge_snapshot(registry.snapshot())


__all__ = [
    "JsonlStreamWriter",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "Tracer",
    "capture",
    "diff_snapshots",
    "disable_memory_sampling",
    "enable_memory_sampling",
    "get_metrics",
    "get_tracer",
    "memory_sampling",
    "memory_sampling_enabled",
    "metrics_to_prometheus",
    "request_scope",
    "scoped_metrics",
    "scoped_tracer",
    "stream_trace_jsonl",
    "observability_enabled",
    "render_metrics",
    "render_span_tree",
    "render_trace_report",
    "set_metrics",
    "set_tracer",
    "trace_to_jsonl",
    "traced",
    "write_trace_jsonl",
]
