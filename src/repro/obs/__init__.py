"""Observability: structured tracing, metrics, and exporters.

The pipeline's instrumentation substrate (see ``docs/OBSERVABILITY.md``):

* :class:`Tracer` / :class:`Span` — hierarchical wall-clock spans with a
  context-manager and decorator API (:mod:`repro.obs.tracer`);
* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms
  (:mod:`repro.obs.metrics`);
* exporters — JSONL, Prometheus text, and the human span-tree report
  (:mod:`repro.obs.export`).

Both the tracer and the registry have process-global defaults that start
*disabled*, so the instrumented library layers cost nothing until a CLI
flag, a test, or an embedder turns observability on — most conveniently
with :func:`capture`::

    with capture() as (tracer, registry):
        run = make_run(workload, cache_dir)
        run.aggregate_classification(0.97, 0.95)
    print(render_trace_report(tracer, registry))
"""

from contextlib import contextmanager

from .export import (
    JsonlStreamWriter,
    metrics_to_prometheus,
    render_metrics,
    render_span_tree,
    render_trace_report,
    stream_trace_jsonl,
    trace_to_jsonl,
    write_trace_jsonl,
)
from .memsample import (
    disable_memory_sampling,
    enable_memory_sampling,
    memory_sampling,
    memory_sampling_enabled,
)
from .metrics import (
    MetricsRegistry,
    diff_snapshots,
    get_metrics,
    set_metrics,
)
from .tracer import Span, Tracer, get_tracer, set_tracer, traced


def observability_enabled() -> bool:
    """True if either the global tracer or the global registry is on."""
    return get_tracer().enabled or get_metrics().enabled


@contextmanager
def capture(enabled: bool = True):
    """Install a fresh enabled tracer + registry as the process globals,
    yield them, and restore the previous globals on exit."""
    tracer = Tracer(enabled=enabled)
    registry = MetricsRegistry(enabled=enabled)
    prev_tracer = set_tracer(tracer)
    prev_registry = set_metrics(registry)
    try:
        yield tracer, registry
    finally:
        set_tracer(prev_tracer)
        set_metrics(prev_registry)


__all__ = [
    "JsonlStreamWriter",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "capture",
    "diff_snapshots",
    "disable_memory_sampling",
    "enable_memory_sampling",
    "get_metrics",
    "get_tracer",
    "memory_sampling",
    "memory_sampling_enabled",
    "metrics_to_prometheus",
    "stream_trace_jsonl",
    "observability_enabled",
    "render_metrics",
    "render_span_tree",
    "render_trace_report",
    "set_metrics",
    "set_tracer",
    "trace_to_jsonl",
    "traced",
    "write_trace_jsonl",
]
