"""Hierarchical span tracing for the analysis pipeline.

A :class:`Span` is one timed region of work — a pipeline stage, a profiling
run, a solver invocation — with a name, a parent, wall-clock timing, and
free-form attributes.  A :class:`Tracer` collects finished spans; the
instrumented library code obtains the process-global tracer through
:func:`get_tracer` and opens spans with the context-manager or decorator
API::

    with get_tracer().span("workload.compile", workload=name):
        ...                         # timed; nests under the enclosing span

    @traced("pipeline.classify")
    def classify(...): ...

Zero cost when off
------------------
The process-global tracer starts *disabled*.  A disabled tracer returns a
shared no-op span from :meth:`Tracer.span`, so instrumentation at stage
granularity costs one method call and one attribute check per stage — the
hot interpreter and solver loops are never instrumented per iteration, only
summarized per run (see ``docs/OBSERVABILITY.md``).

Thread and process safety
-------------------------
The active-span stack is thread-local (concurrent threads nest their spans
independently) and the finished-span list is guarded by a lock.  Spans
travel across process boundaries as plain dicts (:meth:`Span.to_record`);
:meth:`Tracer.absorb_records` folds a worker's spans back into the parent
trace, re-parenting the worker's roots under a chosen span so the merged
tree stays connected.  Span ids embed the originating pid, so merged ids
never collide.  ``start`` values are per-process monotonic clocks — only
durations, never absolute starts, are comparable across processes.
"""

from __future__ import annotations

import contextvars
import functools
import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Optional

from . import memsample as _memsample


class Span:
    """One timed, attributed region of work.  Also its own context manager:
    entering pushes it on the tracer's thread-local stack, exiting records
    the end time and files it as finished."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        tracer: Optional["Tracer"] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Seconds from start to end (to "now" while still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (merged over any given at creation)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._finish(self)
        else:
            self.end = time.perf_counter()
        return False

    def to_record(self) -> dict:
        """Picklable/JSON-able form (the JSONL exporter's span schema)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_record(cls, record: dict) -> "Span":
        span = cls(
            record["name"],
            record["span_id"],
            record.get("parent_id"),
            tracer=None,
            attrs=dict(record.get("attrs", {})),
        )
        span.start = float(record.get("start", 0.0))
        span.end = span.start + float(record.get("duration", 0.0))
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1000:.2f}ms" if self.finished else "open"
        return f"Span({self.name!r}, {state}, id={self.span_id})"


class _NullSpan:
    """The shared no-op span a disabled tracer hands out."""

    __slots__ = ()
    name = None
    span_id = None
    parent_id = None
    attrs: dict[str, Any] = {}
    duration = 0.0
    finished = True

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects hierarchical spans; safe to share across threads.

    ``enabled=False`` builds a tracer whose :meth:`span`/:meth:`event` are
    no-ops — the state the process-global default starts in.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._listeners: list[Callable[[Span], None]] = []

    # -- streaming listeners ----------------------------------------------

    def add_listener(self, fn: Callable[[Span], None]) -> None:
        """Call ``fn(span)`` whenever a span finishes (spans and events
        alike) — the hook streaming exporters attach to."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[Span], None]) -> None:
        if fn in self._listeners:
            self._listeners.remove(fn)

    def _notify(self, span: Span) -> None:
        for fn in self._listeners:
            fn(span)

    # -- span creation -----------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A new span, parented under the thread's innermost open span.

        Returned unstarted as a context manager; timing runs from creation,
        the stack push happens on ``__enter__``.
        """
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        return Span(name, self._next_id(), parent, tracer=self, attrs=attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """A zero-duration span: a point-in-time occurrence (e.g. a cache
        corruption) that should show up in the trace."""
        if not self.enabled:
            return
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(name, self._next_id(), parent, tracer=None, attrs=attrs)
        span.end = span.start
        with self._lock:
            self._finished.append(span)
        if self._listeners:
            self._notify(span)

    def wrap(self, name: Optional[str] = None, **attrs: Any) -> Callable:
        """Decorator form: time every call to the wrapped function."""

        def decorate(fn: Callable) -> Callable:
            label = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(label, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def current(self) -> Optional[Span]:
        """The thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- finished-span access ---------------------------------------------

    def spans(self) -> tuple[Span, ...]:
        """Snapshot of the finished spans, in finish order."""
        with self._lock:
            return tuple(self._finished)

    def drain_records(self) -> list[dict]:
        """Remove and return all finished spans as plain records — the
        unit a worker process ships back to the parent."""
        with self._lock:
            records = [span.to_record() for span in self._finished]
            self._finished.clear()
        return records

    def absorb_records(
        self, records: Iterable[dict], parent_id: Optional[str] = None
    ) -> None:
        """Merge spans recorded elsewhere (another process or tracer).

        Roots among ``records`` (spans without a parent) are re-parented
        under ``parent_id`` so the merged trace renders as one tree.
        """
        spans = [Span.from_record(r) for r in records]
        if parent_id is not None:
            for span in spans:
                if span.parent_id is None:
                    span.parent_id = parent_id
        with self._lock:
            self._finished.extend(spans)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    # -- internals ---------------------------------------------------------

    def _next_id(self) -> str:
        return f"{os.getpid():x}-{next(self._ids):x}"

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self, span: Span) -> None:
        self._stack().append(span)
        if _memsample._enabled:
            _memsample.on_span_enter(span)

    def _finish(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit; recover rather than corrupt
            stack.remove(span)
        if _memsample._enabled:
            _memsample.on_span_exit(span)
        with self._lock:
            self._finished.append(span)
        if self._listeners:
            self._notify(span)


# -- the process-global default and the request-scoped override -------------

_GLOBAL_TRACER = Tracer(enabled=False)

#: Context-carried tracer override.  A service handling many concurrent
#: requests gives each request its own tracer via :func:`scoped_tracer`
#: without touching the process global; ``contextvars`` keeps the override
#: local to the thread (or task) serving that request.
_SCOPED_TRACER: contextvars.ContextVar[Optional[Tracer]] = contextvars.ContextVar(
    "repro_scoped_tracer", default=None
)


def get_tracer() -> Tracer:
    """The ambient tracer: the context-scoped one when inside a
    :func:`scoped_tracer` block, else the process-global default (disabled
    until something installs one)."""
    scoped = _SCOPED_TRACER.get()
    return scoped if scoped is not None else _GLOBAL_TRACER


@contextmanager
def scoped_tracer(tracer: Tracer):
    """Make ``tracer`` the ambient tracer for the current context.

    Unlike :func:`set_tracer`, the override is carried by a contextvar —
    concurrent threads each see their own scoped tracer, so instrumented
    library code calling :func:`get_tracer` records into the scope that is
    actually running it.  Scopes nest; the previous scope is restored on
    exit."""
    token = _SCOPED_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _SCOPED_TRACER.reset(token)


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global default; returns the old."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


def traced(name: Optional[str] = None, **attrs: Any) -> Callable:
    """Decorator that spans each call on whatever the *current* global
    tracer is at call time (so decorating at import time still honors a
    tracer installed later)."""

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with get_tracer().span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
