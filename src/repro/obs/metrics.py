"""Counters, gauges and fixed-bucket histograms for the analysis pipeline.

A :class:`MetricsRegistry` hands out named instruments, optionally labelled
(``registry.counter("cache_hits", kind="module")``); each distinct
(name, labels) pair is one instrument.  The registry is thread-safe, its
:meth:`~MetricsRegistry.snapshot` is a plain picklable value that crosses
process boundaries, and :meth:`~MetricsRegistry.merge_snapshot` folds a
worker's snapshot back into the parent — counters and histograms add,
gauges take the incoming value (last writer wins).

Like the tracer, the process-global registry starts *disabled*: a disabled
registry returns shared null instruments whose ``inc``/``set``/``observe``
are no-ops, so instrumented code never branches on enablement itself.
"""

from __future__ import annotations

import contextvars
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Mapping, Optional, Sequence

#: (name, ((label, value), ...)) — the registry's instrument key.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]

#: Generic latency-ish buckets used when a histogram caller gives none.
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


def _key(name: str, labels: Mapping[str, Any]) -> MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A value that goes up and down (last set wins)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` holds observations with
    ``value <= buckets[i]``; the final slot is the +Inf overflow bucket."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self, name: str, labels: tuple, buckets: Sequence[float]
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram buckets must be sorted: {buckets!r}")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1


class _NullInstrument:
    """Shared no-op instrument handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Thread-safe home of every instrument; mergeable across processes."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[MetricKey, Counter] = {}
        self._gauges: dict[MetricKey, Gauge] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    # -- instrument accessors ---------------------------------------------

    def counter(self, name: str, **labels: Any):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = _key(name, labels)
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter(name, key[1])
        return inst

    def gauge(self, name: str, **labels: Any):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = _key(name, labels)
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge(name, key[1])
        return inst

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = _key(name, labels)
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(name, key[1], buckets)
        return inst

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable plain-data view of every instrument."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for k, h in self._histograms.items()
                },
            }

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold another registry's snapshot into this one (worker merge)."""
        for (name, labels), value in snapshot.get("counters", {}).items():
            key = (name, labels)
            with self._lock:
                inst = self._counters.get(key)
                if inst is None:
                    inst = self._counters[key] = Counter(name, labels)
            inst.inc(value)
        for (name, labels), value in snapshot.get("gauges", {}).items():
            key = (name, labels)
            with self._lock:
                inst = self._gauges.get(key)
                if inst is None:
                    inst = self._gauges[key] = Gauge(name, labels)
            inst.set(value)
        for (name, labels), data in snapshot.get("histograms", {}).items():
            key = (name, labels)
            with self._lock:
                inst = self._histograms.get(key)
                if inst is None:
                    inst = self._histograms[key] = Histogram(
                        name, labels, data["buckets"]
                    )
            with inst._lock:
                for i, n in enumerate(data["counts"]):
                    inst.counts[i] += n
                inst.sum += data["sum"]
                inst.count += data["count"]

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def diff_snapshots(new: Mapping, old: Mapping) -> dict:
    """Instrument-wise ``new - old`` — the delta a worker reports after a
    job so re-used processes never double-count.  Gauges pass through as
    their latest value (deltas are meaningless for them)."""
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    old_counters = old.get("counters", {})
    for key, value in new.get("counters", {}).items():
        d = value - old_counters.get(key, 0)
        if d:
            out["counters"][key] = d
    out["gauges"] = dict(new.get("gauges", {}))
    old_hists = old.get("histograms", {})
    for key, data in new.get("histograms", {}).items():
        prev = old_hists.get(key)
        if prev is None:
            out["histograms"][key] = {
                "buckets": list(data["buckets"]),
                "counts": list(data["counts"]),
                "sum": data["sum"],
                "count": data["count"],
            }
            continue
        counts = [n - p for n, p in zip(data["counts"], prev["counts"])]
        if any(counts):
            out["histograms"][key] = {
                "buckets": list(data["buckets"]),
                "counts": counts,
                "sum": data["sum"] - prev["sum"],
                "count": data["count"] - prev["count"],
            }
    return out


# -- the process-global default and the request-scoped override -------------

_GLOBAL_REGISTRY = MetricsRegistry(enabled=False)

#: Context-carried registry override (the metrics twin of
#: ``tracer._SCOPED_TRACER``): each request of a concurrent service counts
#: into its own registry, which is later merged into the global one.
_SCOPED_REGISTRY: contextvars.ContextVar[Optional[MetricsRegistry]] = (
    contextvars.ContextVar("repro_scoped_metrics", default=None)
)


def get_metrics() -> MetricsRegistry:
    """The ambient registry: the context-scoped one when inside a
    :func:`scoped_metrics` block, else the process-global default (disabled
    until something installs one)."""
    scoped = _SCOPED_REGISTRY.get()
    return scoped if scoped is not None else _GLOBAL_REGISTRY


@contextmanager
def scoped_metrics(registry: MetricsRegistry):
    """Make ``registry`` the ambient registry for the current context.

    The override is carried by a contextvar, so concurrent threads each
    count into their own scoped registry; scopes nest and restore the
    previous scope on exit."""
    token = _SCOPED_REGISTRY.set(registry)
    try:
        yield registry
    finally:
        _SCOPED_REGISTRY.reset(token)


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-global default; returns the old."""
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous
