"""Exporters: JSONL dumps, Prometheus text format, and the human report.

Three consumers, three formats:

* **JSONL** — one JSON object per line, spans first then metrics, for
  machine diffing and external trace viewers (``--trace-out PATH``);
* **Prometheus text** — the standard exposition format, so a scrape target
  or pushgateway can ingest a run's counters without a client library;
* **human report** — the per-stage span tree with wall times plus a metric
  table, what ``repro trace <workload>`` prints.
"""

from __future__ import annotations

import json
import re
import threading
from contextlib import contextmanager
from typing import Iterable, Mapping, Optional, Sequence

from .metrics import MetricsRegistry, get_metrics
from .tracer import Span, Tracer, get_tracer

# -- JSONL -------------------------------------------------------------------


def span_records(spans: Iterable[Span]) -> list[dict]:
    return [span.to_record() for span in spans]


def metric_records(snapshot: Mapping) -> list[dict]:
    """Flatten a registry snapshot into one record per instrument."""
    records: list[dict] = []
    for (name, labels), value in sorted(snapshot.get("counters", {}).items()):
        records.append(
            {"type": "counter", "name": name, "labels": dict(labels), "value": value}
        )
    for (name, labels), value in sorted(snapshot.get("gauges", {}).items()):
        records.append(
            {"type": "gauge", "name": name, "labels": dict(labels), "value": value}
        )
    for (name, labels), data in sorted(snapshot.get("histograms", {}).items()):
        records.append(
            {
                "type": "histogram",
                "name": name,
                "labels": dict(labels),
                "buckets": list(data["buckets"]),
                "counts": list(data["counts"]),
                "sum": data["sum"],
                "count": data["count"],
            }
        )
    return records


def to_jsonl(records: Iterable[Mapping]) -> str:
    return "".join(
        json.dumps(record, sort_keys=True, default=str) + "\n"
        for record in records
    )


def trace_to_jsonl(
    tracer: Optional[Tracer] = None, registry: Optional[MetricsRegistry] = None
) -> str:
    """Every span and metric of the given (default: global) trace, as JSONL."""
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_metrics()
    records = span_records(tracer.spans()) + metric_records(registry.snapshot())
    return to_jsonl(records)


def write_trace_jsonl(
    path,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    with open(path, "w") as f:
        f.write(trace_to_jsonl(tracer, registry))


class JsonlStreamWriter:
    """Line-buffered JSONL trace writer for live tailing.

    Attach :meth:`on_span` as a :meth:`~repro.obs.tracer.Tracer.add_listener`
    hook and each span record hits the file the moment the span closes —
    ``tail -f`` shows a sweep's progress while it runs, instead of the whole
    trace materializing at command end.  Metric records (which only have
    final values) are appended by :meth:`finish`.
    """

    def __init__(self, path) -> None:
        self.path = path
        # buffering=1 -> line buffered: every record is one line, flushed
        # to the OS as it is written.
        self._file = open(path, "w", buffering=1)
        self._lock = threading.Lock()

    def on_span(self, span: Span) -> None:
        line = json.dumps(span.to_record(), sort_keys=True, default=str)
        with self._lock:
            if not self._file.closed:
                self._file.write(line + "\n")

    def write_metrics(self, registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry if registry is not None else get_metrics()
        with self._lock:
            if not self._file.closed:
                self._file.write(to_jsonl(metric_records(registry.snapshot())))

    def finish(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Append the final metric records and close the file."""
        self.write_metrics(registry)
        self.close()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


@contextmanager
def stream_trace_jsonl(
    path,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
):
    """Stream the given (default: global) tracer's spans to ``path`` for
    the duration of the block; metrics are appended on exit."""
    tracer = tracer if tracer is not None else get_tracer()
    writer = JsonlStreamWriter(path)
    tracer.add_listener(writer.on_span)
    try:
        yield writer
    finally:
        tracer.remove_listener(writer.on_span)
        writer.finish(registry)


# -- Prometheus text format --------------------------------------------------

#: The Content-Type a scrape endpoint must answer with for the text
#: exposition format (Prometheus rejects plain ``text/plain`` expositions
#: from some ingestion paths without the version parameter).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Characters legal in an exposition metric name: ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(prefix: str, name: str) -> str:
    """Sanitize a dotted/dashed instrument name (``dataflow.wz.solve``,
    ``cache-hits``) into a legal exposition metric name."""
    full = _PROM_NAME_BAD.sub("_", f"{prefix}_{name}")
    if full[:1].isdigit():
        full = "_" + full
    return full


def _prom_label_value(value: str) -> str:
    """Escape a label value per the text format: backslash, quote, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Sequence[tuple[str, str]], extra: str = "") -> str:
    parts = [
        f'{_PROM_LABEL_BAD.sub("_", str(k))}="{_prom_label_value(v)}"'
        for k, v in labels
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt_value(value) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def metrics_to_prometheus(snapshot: Mapping, prefix: str = "repro") -> str:
    """Render a registry snapshot in the Prometheus exposition format.

    Scrape-safe: names are sanitized to the legal charset, label values are
    escaped, and the exposition is terminated by a trailing newline (which
    the format requires — Prometheus treats an unterminated final line as a
    parse error).  Serve it with :data:`PROMETHEUS_CONTENT_TYPE`.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def declare(full: str, kind: str) -> None:
        if full not in typed:
            typed.add(full)
            lines.append(f"# TYPE {full} {kind}")

    for (name, labels), value in sorted(snapshot.get("counters", {}).items()):
        full = _prom_name(prefix, name)
        if not full.endswith("_total"):
            full += "_total"
        declare(full, "counter")
        lines.append(f"{full}{_prom_labels(labels)} {_fmt_value(value)}")
    for (name, labels), value in sorted(snapshot.get("gauges", {}).items()):
        full = _prom_name(prefix, name)
        declare(full, "gauge")
        lines.append(f"{full}{_prom_labels(labels)} {_fmt_value(value)}")
    for (name, labels), data in sorted(snapshot.get("histograms", {}).items()):
        full = _prom_name(prefix, name)
        declare(full, "histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            le = _prom_labels(labels, f'le="{_fmt_value(float(bound))}"')
            lines.append(f"{full}_bucket{le} {cumulative}")
        cumulative += data["counts"][-1]
        inf_labels = _prom_labels(labels, 'le="+Inf"')
        lines.append(f"{full}_bucket{inf_labels} {cumulative}")
        lines.append(f"{full}_sum{_prom_labels(labels)} {_fmt_value(data['sum'])}")
        lines.append(f"{full}_count{_prom_labels(labels)} {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- human report ------------------------------------------------------------

#: Sibling spans sharing a name beyond this count render as one aggregate
#: line — a qualify stage can legitimately contain hundreds of solve spans.
AGGREGATE_THRESHOLD = 4


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f} ms"


def _fmt_attrs(attrs: Mapping, limit: int = 4) -> str:
    if not attrs:
        return ""
    items = list(attrs.items())[:limit]
    body = ", ".join(f"{k}={v}" for k, v in items)
    if len(attrs) > limit:
        body += ", ..."
    return f"  [{body}]"


def render_span_tree(spans: Sequence[Span], top: int = 5) -> str:
    """The per-stage tree (durations, attributes) plus the top-N slowest.

    Spans whose parent is missing from ``spans`` render as roots, so a
    partial trace (e.g. one drained mid-run) still produces a report.
    """
    if not spans:
        return "(no spans recorded)"
    by_id = {s.span_id: s for s in spans}
    children: dict[Optional[str], list[Span]] = {}
    for s in spans:
        parent = s.parent_id if s.parent_id in by_id else None
        children.setdefault(parent, []).append(s)
    for group in children.values():
        group.sort(key=lambda s: s.start)

    lines: list[str] = []

    def render(span: Span, depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}- {span.name}  {_fmt_ms(span.duration)}"
            f"{_fmt_attrs(span.attrs)}"
        )
        kids = children.get(span.span_id, [])
        by_name: dict[str, list[Span]] = {}
        for kid in kids:
            by_name.setdefault(kid.name, []).append(kid)
        seen: set[str] = set()
        for kid in kids:
            group = by_name[kid.name]
            if len(group) >= AGGREGATE_THRESHOLD:
                if kid.name in seen:
                    continue
                seen.add(kid.name)
                total = sum(s.duration for s in group)
                slowest = max(s.duration for s in group)
                lines.append(
                    f"{'  ' * (depth + 1)}- {kid.name} x{len(group)}  "
                    f"total {_fmt_ms(total)}  (max {_fmt_ms(slowest)})"
                )
            else:
                render(kid, depth + 1)

    for root in children.get(None, []):
        render(root, 0)

    slowest = sorted(spans, key=lambda s: s.duration, reverse=True)[:top]
    lines.append("")
    lines.append(f"top {min(top, len(spans))} slowest spans:")
    for s in slowest:
        lines.append(f"  {_fmt_ms(s.duration):>12}  {s.name}{_fmt_attrs(s.attrs)}")
    return "\n".join(lines)


def render_metrics(snapshot: Mapping) -> str:
    """Counters, gauges and histogram summaries as aligned text lines."""
    rows: list[tuple[str, str]] = []
    for (name, labels), value in sorted(snapshot.get("counters", {}).items()):
        rows.append((f"{name}{_prom_labels(labels)}", _fmt_value(value)))
    for (name, labels), value in sorted(snapshot.get("gauges", {}).items()):
        rows.append((f"{name}{_prom_labels(labels)}", _fmt_value(value)))
    for (name, labels), data in sorted(snapshot.get("histograms", {}).items()):
        count = data["count"]
        mean = data["sum"] / count if count else 0.0
        rows.append(
            (
                f"{name}{_prom_labels(labels)}",
                f"count={count} mean={mean:.2f}",
            )
        )
    if not rows:
        return "(no metrics recorded)"
    width = max(len(label) for label, _ in rows)
    return "\n".join(f"  {label.ljust(width)}  {value}" for label, value in rows)


def render_trace_report(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    top: int = 5,
) -> str:
    """The complete human report: span tree, slowest spans, metric table."""
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_metrics()
    parts = [
        "== trace ==",
        render_span_tree(tracer.spans(), top=top),
        "",
        "== metrics ==",
        render_metrics(registry.snapshot()),
    ]
    return "\n".join(parts)
