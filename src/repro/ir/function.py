"""Functions and modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .basic_block import BasicBlock
from .instructions import Branch, Instr, Jump, Ret
from .operands import Var


class Function:
    """A function: parameters plus an ordered map of basic blocks.

    Block order is insertion order; the first inserted block is the entry
    unless ``entry`` is given explicitly.  All algorithms in this package
    iterate blocks in insertion order, which keeps every pass deterministic.
    """

    def __init__(
        self,
        name: str,
        params: Iterable[str] = (),
        blocks: Optional[Iterable[BasicBlock]] = None,
        entry: Optional[str] = None,
    ) -> None:
        self.name = name
        self.params: tuple[str, ...] = tuple(params)
        self.blocks: dict[str, BasicBlock] = {}
        if blocks is not None:
            for block in blocks:
                self.add_block(block)
        self._entry = entry

    @property
    def entry(self) -> str:
        """Label of the entry block."""
        if self._entry is not None:
            return self._entry
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return next(iter(self.blocks))

    @entry.setter
    def entry(self, label: str) -> None:
        self._entry = label

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Insert ``block``; labels must be unique within the function."""
        if block.label in self.blocks:
            raise ValueError(f"duplicate block label {block.label!r} in {self.name}")
        self.blocks[block.label] = block
        return block

    def block(self, label: str) -> BasicBlock:
        """The block with the given label."""
        return self.blocks[label]

    def instructions(self) -> Iterator[tuple[str, int, Instr]]:
        """All straight-line instructions as (block label, index, instr)."""
        for label, block in self.blocks.items():
            for i, instr in enumerate(block.instrs):
                yield label, i, instr

    def variables(self) -> tuple[str, ...]:
        """All variable names mentioned in the function (params first)."""
        seen: dict[str, None] = {p: None for p in self.params}
        for block in self.blocks.values():
            for instr in block.instrs:
                if instr.dest is not None:
                    seen.setdefault(instr.dest, None)
                for op in instr.uses():
                    if isinstance(op, Var):
                        seen.setdefault(op.name, None)
            if block.terminator is not None:
                for op in block.terminator.uses():
                    if isinstance(op, Var):
                        seen.setdefault(op.name, None)
        return tuple(seen)

    @property
    def size(self) -> int:
        """Total instruction count (including terminators)."""
        return sum(block.size for block in self.blocks.values())

    def copy(self, new_name: Optional[str] = None) -> "Function":
        """A deep copy of the function."""
        fn = Function(new_name if new_name is not None else self.name, self.params)
        for block in self.blocks.values():
            fn.add_block(block.copy())
        fn._entry = self._entry
        return fn

    def return_blocks(self) -> tuple[str, ...]:
        """Labels of blocks that terminate with :class:`Ret`."""
        return tuple(
            label
            for label, block in self.blocks.items()
            if isinstance(block.terminator, Ret)
        )

    def __str__(self) -> str:
        header = f"func {self.name}({', '.join(self.params)}) {{"
        body = "\n".join(str(self.blocks[label]) for label in self.blocks)
        return f"{header}\n{body}\n}}"


@dataclass(slots=True)
class ArrayDecl:
    """A module-level integer array, zero-initialised unless ``init`` is given."""

    name: str
    size: int
    init: tuple[int, ...] = ()

    def initial_contents(self) -> list[int]:
        """The array contents at program start."""
        data = list(self.init[: self.size])
        data.extend(0 for _ in range(self.size - len(data)))
        return data


@dataclass(slots=True)
class Module:
    """A compiled program: global arrays plus functions.

    ``main`` is the conventional entry point used by the interpreter.
    """

    functions: dict[str, Function] = field(default_factory=dict)
    arrays: dict[str, ArrayDecl] = field(default_factory=dict)

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def add_array(self, decl: ArrayDecl) -> ArrayDecl:
        if decl.name in self.arrays:
            raise ValueError(f"duplicate array {decl.name!r}")
        self.arrays[decl.name] = decl
        return decl

    def function(self, name: str) -> Function:
        return self.functions[name]

    def copy(self) -> "Module":
        mod = Module()
        for decl in self.arrays.values():
            mod.add_array(ArrayDecl(decl.name, decl.size, tuple(decl.init)))
        for fn in self.functions.values():
            mod.add_function(fn.copy())
        return mod

    def __str__(self) -> str:
        parts = [
            f"array {a.name}[{a.size}]"
            + (f" = {{{', '.join(map(str, a.init))}}}" if a.init else "")
            for a in self.arrays.values()
        ]
        parts.extend(str(fn) for fn in self.functions.values())
        return "\n\n".join(parts)


def single_jump_block(label: str, target: str) -> BasicBlock:
    """A block containing only ``jump target`` (useful in tests)."""
    return BasicBlock(label, [], Jump(target))


def is_two_way(block: BasicBlock) -> bool:
    """True if the block ends in a conditional branch."""
    return isinstance(block.terminator, Branch)
