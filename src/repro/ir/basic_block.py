"""Basic blocks: a label, straight-line instructions, and one terminator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .instructions import Instr, Terminator, copy_instr, copy_terminator


@dataclass(slots=True)
class BasicBlock:
    """A labelled basic block.

    ``terminator`` may be ``None`` only while a block is under construction
    (see :class:`repro.ir.builder.IRBuilder`); a validated function has a
    terminator in every block.
    """

    label: str
    instrs: list[Instr] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def successors(self) -> tuple[str, ...]:
        """Labels of successor blocks (empty for returns)."""
        if self.terminator is None:
            return ()
        return self.terminator.targets()

    def append(self, instr: Instr) -> None:
        """Append a straight-line instruction."""
        self.instrs.append(instr)

    def value_sites(self) -> Iterator[tuple[int, Instr]]:
        """(index, instruction) pairs for instructions that define a variable."""
        for i, instr in enumerate(self.instrs):
            if instr.dest is not None:
                yield i, instr

    @property
    def size(self) -> int:
        """Number of instructions including the terminator."""
        return len(self.instrs) + (1 if self.terminator is not None else 0)

    def copy(self, new_label: Optional[str] = None) -> "BasicBlock":
        """A deep copy, optionally relabelled."""
        return BasicBlock(
            new_label if new_label is not None else self.label,
            [copy_instr(i) for i in self.instrs],
            copy_terminator(self.terminator) if self.terminator is not None else None,
        )

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {instr}" for instr in self.instrs)
        if self.terminator is not None:
            lines.append(f"  {self.terminator}")
        return "\n".join(lines)
