"""IR validation.

:func:`validate_function` / :func:`validate_module` check the structural
invariants every pass relies on and raise :class:`ValidationError` with a
precise message when one is violated.
"""

from __future__ import annotations

from .cfg import Cfg
from .function import Function, Module
from .instructions import Branch, Call, Jump, Ret
from .operands import Const, Var


class ValidationError(Exception):
    """Raised when IR violates a structural invariant."""


def validate_function(fn: Function, module: Module | None = None) -> None:
    """Check structural invariants of ``fn``.

    * every block has exactly one terminator;
    * every jump/branch target resolves to a block in the function;
    * the entry label exists;
    * array references resolve when a module is supplied;
    * call targets resolve when a module is supplied (builtins allowed);
    * every block is reachable from the entry (unreachable code is permitted
      in general IR but is a bug in everything our pipeline emits).
    """
    if not fn.blocks:
        raise ValidationError(f"{fn.name}: function has no blocks")
    if fn.entry not in fn.blocks:
        raise ValidationError(f"{fn.name}: entry {fn.entry!r} is not a block")

    for label, block in fn.blocks.items():
        if block.terminator is None:
            raise ValidationError(f"{fn.name}:{label}: missing terminator")
        for target in block.terminator.targets():
            if target not in fn.blocks:
                raise ValidationError(
                    f"{fn.name}:{label}: terminator targets unknown block {target!r}"
                )
        if isinstance(block.terminator, Branch):
            t = block.terminator
            if t.if_true == t.if_false:
                # Not fatal, but a degenerate branch defeats edge-based
                # profiling (parallel edges are unsupported).
                raise ValidationError(
                    f"{fn.name}:{label}: branch with identical targets {t.if_true!r}"
                )
        for instr in block.instrs:
            for op in instr.uses():
                if not isinstance(op, (Const, Var)):
                    raise ValidationError(
                        f"{fn.name}:{label}: bad operand {op!r} in {instr}"
                    )
            if module is not None:
                if hasattr(instr, "array") and instr.array not in module.arrays:
                    raise ValidationError(
                        f"{fn.name}:{label}: unknown array {instr.array!r}"
                    )
                if isinstance(instr, Call):
                    if (
                        instr.func not in module.functions
                        and instr.func not in BUILTIN_FUNCTIONS
                    ):
                        raise ValidationError(
                            f"{fn.name}:{label}: unknown function {instr.func!r}"
                        )

    cfg = Cfg.from_function(fn)
    reachable = cfg.reachable()
    for label in fn.blocks:
        if label not in reachable:
            raise ValidationError(f"{fn.name}:{label}: unreachable block")


#: Builtins the interpreter provides; their results are opaque to analysis.
BUILTIN_FUNCTIONS = frozenset({"abs", "min2", "max2", "clamp"})


def validate_module(module: Module) -> None:
    """Validate every function in ``module``."""
    if "main" not in module.functions:
        raise ValidationError("module has no main function")
    for fn in module.functions.values():
        validate_function(fn, module)


__all__ = ["ValidationError", "validate_function", "validate_module", "BUILTIN_FUNCTIONS"]
