"""IR validation.

:func:`validate_function` / :func:`validate_module` are thin raise-on-error
wrappers over the collect-all diagnostics checks in
:mod:`repro.checks.ir_checks`: they run the same structural invariants and
raise :class:`ValidationError` with a precise message on the first
error-severity finding.  Callers that want *every* violation at once (and
severity/location structure) should call
:func:`repro.checks.ir_checks.check_function_ir` /
:func:`~repro.checks.ir_checks.check_module_ir` directly.
"""

from __future__ import annotations

from ..checks.diagnostics import Diagnostic, Diagnostics, Severity
from ..checks.ir_checks import (
    BUILTIN_FUNCTIONS,
    check_function_ir,
    check_module_ir,
)
from .function import Function, Module


class ValidationError(Exception):
    """Raised when IR violates a structural invariant."""


def _legacy_message(d: Diagnostic) -> str:
    """The historical ``fn:label: message`` string for a diagnostic."""
    prefix = ":".join(p for p in (d.function, d.block) if p)
    return f"{prefix}: {d.message}" if prefix else d.message


def _raise_first_error(diagnostics: Diagnostics) -> None:
    for d in diagnostics:
        if d.severity >= Severity.ERROR:
            raise ValidationError(_legacy_message(d))


def validate_function(fn: Function, module: Module | None = None) -> None:
    """Check structural invariants of ``fn``; raise on the first violation.

    See :func:`repro.checks.ir_checks.check_function_ir` for the invariant
    list and the collect-all variant.
    """
    _raise_first_error(check_function_ir(fn, module))


def validate_module(module: Module) -> None:
    """Validate every function in ``module``; raise on the first violation."""
    _raise_first_error(check_module_ir(module))


__all__ = ["ValidationError", "validate_function", "validate_module", "BUILTIN_FUNCTIONS"]
