"""Instruction set of the three-address IR.

Instructions fall into two groups:

* *straight-line* instructions (everything except terminators), stored in
  :attr:`repro.ir.basic_block.BasicBlock.instrs`;
* *terminators* (:class:`Jump`, :class:`Branch`, :class:`Ret`), exactly one
  per block, stored in :attr:`repro.ir.basic_block.BasicBlock.terminator`.

Every instruction knows which variables it reads (:meth:`Instr.uses`) and
which variable, if any, it writes (:attr:`Instr.dest`), whether it is *pure*
(safe to constant fold), and whether it *produces a value* (the unit the
paper's "instructions with constant results" metric counts).

The constant-propagation model matches the paper's: :class:`Load` and
:class:`Call` produce untracked (bottom) values; :class:`Store` and
:class:`Print` are side effects; everything else is a pure scalar computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .operands import Const, Operand, Var
from .ops import BINOPS, UNOPS


class Instr:
    """Base class for straight-line instructions.

    Subclasses provide ``dest`` either as a dataclass field or as a class
    attribute equal to ``None`` (the annotation below is intentionally not
    assigned, so dataclass subclasses do not inherit a spurious default).
    """

    #: Variable written by the instruction, or ``None``.
    dest: Optional[str]
    #: True if the instruction has no side effect and reads no opaque state.
    is_pure: bool = False
    #: True if the instruction produces a scalar value (counted by the
    #: "constant instructions" metrics of the paper).
    produces_value: bool = False

    def uses(self) -> tuple[Operand, ...]:
        """Operands read by the instruction."""
        return ()

    def use_vars(self) -> tuple[str, ...]:
        """Names of variables read by the instruction."""
        return tuple(op.name for op in self.uses() if isinstance(op, Var))


@dataclass(slots=True)
class Assign(Instr):
    """``dest = src`` — constant assignment or register copy."""

    dest: str
    src: Operand
    is_pure = True
    produces_value = True

    def uses(self) -> tuple[Operand, ...]:
        return (self.src,)

    def __str__(self) -> str:
        return f"{self.dest} = {self.src}"


@dataclass(slots=True)
class BinOp(Instr):
    """``dest = op lhs, rhs`` for ``op`` in :data:`repro.ir.ops.BINOPS`."""

    dest: str
    op: str
    lhs: Operand
    rhs: Operand
    is_pure = True
    produces_value = True

    def __post_init__(self) -> None:
        if self.op not in BINOPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def uses(self) -> tuple[Operand, ...]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"{self.dest} = {self.op} {self.lhs}, {self.rhs}"


@dataclass(slots=True)
class UnOp(Instr):
    """``dest = op src`` for ``op`` in :data:`repro.ir.ops.UNOPS`."""

    dest: str
    op: str
    src: Operand
    is_pure = True
    produces_value = True

    def __post_init__(self) -> None:
        if self.op not in UNOPS:
            raise ValueError(f"unknown unary operator {self.op!r}")

    def uses(self) -> tuple[Operand, ...]:
        return (self.src,)

    def __str__(self) -> str:
        return f"{self.dest} = {self.op} {self.src}"


@dataclass(slots=True)
class Load(Instr):
    """``dest = array[index]`` — memory read; the result is never tracked."""

    dest: str
    array: str
    index: Operand
    is_pure = False
    produces_value = True

    def uses(self) -> tuple[Operand, ...]:
        return (self.index,)

    def __str__(self) -> str:
        return f"{self.dest} = load {self.array}[{self.index}]"


@dataclass(slots=True)
class Store(Instr):
    """``array[index] = value`` — memory write (side effect)."""

    array: str
    index: Operand
    value: Operand
    dest = None
    is_pure = False
    produces_value = False

    def uses(self) -> tuple[Operand, ...]:
        return (self.index, self.value)

    def __str__(self) -> str:
        return f"store {self.array}[{self.index}] = {self.value}"


@dataclass(slots=True)
class Call(Instr):
    """``dest = call func(args)`` — the result, if any, is never tracked.

    Calls cannot modify caller locals (MiniC has no global scalars and no
    address-of), so the only conservative effect is the untracked result.
    """

    dest: Optional[str]
    func: str
    args: tuple[Operand, ...] = field(default_factory=tuple)
    is_pure = False
    produces_value = True  # treated as a value producer when dest is not None

    def uses(self) -> tuple[Operand, ...]:
        return tuple(self.args)

    def __str__(self) -> str:
        call = f"call {self.func}({', '.join(map(str, self.args))})"
        return f"{self.dest} = {call}" if self.dest is not None else call


@dataclass(slots=True)
class Print(Instr):
    """``print args`` — observable program output, used by semantics tests."""

    args: tuple[Operand, ...]
    dest = None
    is_pure = False
    produces_value = False

    def uses(self) -> tuple[Operand, ...]:
        return tuple(self.args)

    def __str__(self) -> str:
        return f"print {', '.join(map(str, self.args))}"


class Terminator:
    """Base class for block terminators."""

    def targets(self) -> tuple[str, ...]:
        """Labels of possible successor blocks."""
        return ()

    def uses(self) -> tuple[Operand, ...]:
        return ()

    def retargeted(self, mapping: dict[str, str]) -> "Terminator":
        """A copy of the terminator with targets replaced via ``mapping``.

        Labels missing from ``mapping`` are kept unchanged.
        """
        raise NotImplementedError


@dataclass(slots=True)
class Jump(Terminator):
    """Unconditional jump to ``target``."""

    target: str

    def targets(self) -> tuple[str, ...]:
        return (self.target,)

    def retargeted(self, mapping: dict[str, str]) -> "Jump":
        return Jump(mapping.get(self.target, self.target))

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass(slots=True)
class Branch(Terminator):
    """Two-way branch: to ``if_true`` when ``cond`` is non-zero, else ``if_false``."""

    cond: Operand
    if_true: str
    if_false: str

    def targets(self) -> tuple[str, ...]:
        return (self.if_true, self.if_false)

    def uses(self) -> tuple[Operand, ...]:
        return (self.cond,)

    def retargeted(self, mapping: dict[str, str]) -> "Branch":
        return Branch(
            self.cond,
            mapping.get(self.if_true, self.if_true),
            mapping.get(self.if_false, self.if_false),
        )

    def __str__(self) -> str:
        return f"branch {self.cond}, {self.if_true}, {self.if_false}"


@dataclass(slots=True)
class Ret(Terminator):
    """Return from the function, optionally with a value."""

    value: Optional[Operand] = None

    def uses(self) -> tuple[Operand, ...]:
        return (self.value,) if self.value is not None else ()

    def retargeted(self, mapping: dict[str, str]) -> "Ret":
        return Ret(self.value)

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


def copy_instr(instr: Instr) -> Instr:
    """A shallow copy of a straight-line instruction (operands are immutable)."""
    if isinstance(instr, Assign):
        return Assign(instr.dest, instr.src)
    if isinstance(instr, BinOp):
        return BinOp(instr.dest, instr.op, instr.lhs, instr.rhs)
    if isinstance(instr, UnOp):
        return UnOp(instr.dest, instr.op, instr.src)
    if isinstance(instr, Load):
        return Load(instr.dest, instr.array, instr.index)
    if isinstance(instr, Store):
        return Store(instr.array, instr.index, instr.value)
    if isinstance(instr, Call):
        return Call(instr.dest, instr.func, tuple(instr.args))
    if isinstance(instr, Print):
        return Print(tuple(instr.args))
    raise TypeError(f"unknown instruction type {type(instr).__name__}")


def copy_terminator(term: Terminator) -> Terminator:
    """A copy of a terminator."""
    return term.retargeted({})
