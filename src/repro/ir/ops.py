"""Operator definitions and their (total) integer semantics.

Both the interpreter and every constant folder evaluate operators through
:func:`eval_binop` / :func:`eval_unop`, so analysis-time folding is guaranteed
to agree with run-time evaluation.

Semantics notes
---------------
* All values are unbounded Python integers (the IR models a word-sized machine
  but precision never matters for the experiments, and unbounded ints keep the
  semantics total).
* Division and modulus are *defined* for a zero divisor (result 0).  This
  keeps the semantics total so constant folding never changes behaviour, at
  the cost of diverging from C; the workloads never divide by zero anyway.
* Comparison and logical operators produce 0 or 1.
* ``div`` truncates toward zero, like C.
"""

from __future__ import annotations

from typing import Callable, Mapping


def _c_div(a: int, b: int) -> int:
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        return 0
    return a - _c_div(a, b) * b


def _shl(a: int, b: int) -> int:
    return a << (b & 63) if b >= 0 else 0


def _shr(a: int, b: int) -> int:
    return a >> (b & 63) if b >= 0 else 0


#: Binary operator name -> implementation.
BINOPS: Mapping[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _c_div,
    "mod": _c_mod,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": _shl,
    "shr": _shr,
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
}

#: Unary operator name -> implementation.
UNOPS: Mapping[str, Callable[[int], int]] = {
    "neg": lambda a: -a,
    "not": lambda a: ~a,
    "lnot": lambda a: int(a == 0),
}

#: Binary operators that commute (used by available-expression canonicalization).
COMMUTATIVE: frozenset[str] = frozenset({"add", "mul", "and", "or", "xor", "eq", "ne"})


def eval_binop(op: str, lhs: int, rhs: int) -> int:
    """Evaluate binary operator ``op`` on two integers.

    Raises :class:`KeyError` for an unknown operator name.
    """
    return BINOPS[op](lhs, rhs)


def eval_unop(op: str, src: int) -> int:
    """Evaluate unary operator ``op`` on an integer."""
    return UNOPS[op](src)
