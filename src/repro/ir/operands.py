"""Operands of the three-address IR.

The IR is deliberately close to the low-SUIF form the paper analysed: named
scalar variables (no SSA), integer constants, and opaque memory accessed only
through :class:`~repro.ir.instructions.Load` / ``Store``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Const:
    """An integer literal operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Var:
    """A named scalar variable.

    Variables are function-local; the MiniC front end has no global scalars,
    which matches the paper's model where only local scalars are tracked by
    constant propagation.
    """

    name: str

    def __str__(self) -> str:
        return self.name


#: Any value an instruction may read.
Operand = Union[Const, Var]


def operand_vars(*operands: Operand) -> tuple[str, ...]:
    """Names of the variables among ``operands`` (constants are skipped)."""
    return tuple(op.name for op in operands if isinstance(op, Var))
