"""Three-address intermediate representation.

The IR plays the role of low-SUIF in the paper: a register-based,
basic-block-structured representation of MiniC programs over which all
profiling, analysis and transformation passes run.

Public surface:

* operands: :class:`Const`, :class:`Var`
* instructions: :class:`Assign`, :class:`BinOp`, :class:`UnOp`, :class:`Load`,
  :class:`Store`, :class:`Call`, :class:`Print` and terminators
  :class:`Jump`, :class:`Branch`, :class:`Ret`
* structure: :class:`BasicBlock`, :class:`Function`, :class:`Module`,
  :class:`ArrayDecl`
* graphs: :class:`Cfg` with virtual :data:`ENTRY` / :data:`EXIT`
* utilities: :class:`IRBuilder`, :func:`parse_module`, :func:`parse_function`,
  :func:`validate_module`, :func:`validate_function`
"""

from .basic_block import BasicBlock
from .builder import IRBuilder, as_operand
from .cfg import ENTRY, EXIT, Cfg
from .function import ArrayDecl, Function, Module
from .instructions import (
    Assign,
    BinOp,
    Branch,
    Call,
    Instr,
    Jump,
    Load,
    Print,
    Ret,
    Store,
    Terminator,
    UnOp,
    copy_instr,
    copy_terminator,
)
from .operands import Const, Operand, Var
from .ops import BINOPS, COMMUTATIVE, UNOPS, eval_binop, eval_unop
from .text import IRSyntaxError, parse_function, parse_module
from .validate import (
    BUILTIN_FUNCTIONS,
    ValidationError,
    validate_function,
    validate_module,
)

__all__ = [
    "ArrayDecl",
    "Assign",
    "BasicBlock",
    "BinOp",
    "BINOPS",
    "Branch",
    "BUILTIN_FUNCTIONS",
    "Call",
    "Cfg",
    "COMMUTATIVE",
    "Const",
    "copy_instr",
    "copy_terminator",
    "ENTRY",
    "eval_binop",
    "eval_unop",
    "EXIT",
    "Function",
    "Instr",
    "IRBuilder",
    "IRSyntaxError",
    "Jump",
    "Load",
    "Module",
    "Operand",
    "parse_function",
    "parse_module",
    "Print",
    "Ret",
    "Store",
    "Terminator",
    "UnOp",
    "UNOPS",
    "ValidationError",
    "validate_function",
    "validate_module",
    "Var",
    "as_operand",
]
