"""A convenience builder for constructing IR functions.

Used by the MiniC lowering pass, by tests, and by the examples that rebuild
the paper's running example by hand.
"""

from __future__ import annotations

from typing import Optional, Union

from .basic_block import BasicBlock
from .function import Function
from .instructions import (
    Assign,
    BinOp,
    Branch,
    Call,
    Jump,
    Load,
    Print,
    Ret,
    Store,
    UnOp,
)
from .operands import Const, Operand, Var

OperandLike = Union[Operand, int, str]


def as_operand(value: OperandLike) -> Operand:
    """Coerce ints to :class:`Const` and strings to :class:`Var`."""
    if isinstance(value, (Const, Var)):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot treat {value!r} as an operand")


class IRBuilder:
    """Builds a :class:`Function` block by block.

    Example::

        b = IRBuilder("f", params=["n"])
        b.block("entry")
        b.assign("i", 0)
        b.jump("loop")
        b.block("loop")
        ...
        fn = b.finish()
    """

    def __init__(self, name: str, params: tuple[str, ...] | list[str] = ()) -> None:
        self.function = Function(name, params)
        self._current: Optional[BasicBlock] = None
        self._temp_count = 0
        self._reserved_labels: set[str] = set()

    # -- blocks -------------------------------------------------------------

    def block(self, label: str) -> BasicBlock:
        """Start a new block; subsequent emissions go to it."""
        blk = self.function.add_block(BasicBlock(label))
        self._current = blk
        return blk

    def switch_to(self, label: str) -> None:
        """Resume emitting into an existing block (must be unterminated)."""
        self._current = self.function.block(label)

    @property
    def is_open(self) -> bool:
        """True if there is a current, unterminated block."""
        return self._current is not None

    @property
    def current(self) -> BasicBlock:
        if self._current is None:
            raise RuntimeError("no current block; call block() first")
        return self._current

    def new_temp(self) -> str:
        """A fresh temporary variable name."""
        self._temp_count += 1
        return f"%t{self._temp_count}"

    def new_label(self, hint: str = "L") -> str:
        """A fresh block label; reserved immediately, so labels handed out
        before their blocks are created never collide."""
        i = 0
        while f"{hint}{i}" in self.function.blocks or f"{hint}{i}" in self._reserved_labels:
            i += 1
        label = f"{hint}{i}"
        self._reserved_labels.add(label)
        return label

    # -- straight-line instructions ------------------------------------------

    def assign(self, dest: str, src: OperandLike) -> str:
        self.current.append(Assign(dest, as_operand(src)))
        return dest

    def binop(self, dest: str, op: str, lhs: OperandLike, rhs: OperandLike) -> str:
        self.current.append(BinOp(dest, op, as_operand(lhs), as_operand(rhs)))
        return dest

    def unop(self, dest: str, op: str, src: OperandLike) -> str:
        self.current.append(UnOp(dest, op, as_operand(src)))
        return dest

    def load(self, dest: str, array: str, index: OperandLike) -> str:
        self.current.append(Load(dest, array, as_operand(index)))
        return dest

    def store(self, array: str, index: OperandLike, value: OperandLike) -> None:
        self.current.append(Store(array, as_operand(index), as_operand(value)))

    def call(self, dest: Optional[str], func: str, *args: OperandLike) -> Optional[str]:
        self.current.append(Call(dest, func, tuple(as_operand(a) for a in args)))
        return dest

    def emit_print(self, *args: OperandLike) -> None:
        self.current.append(Print(tuple(as_operand(a) for a in args)))

    # -- terminators ----------------------------------------------------------

    def jump(self, target: str) -> None:
        self._terminate(Jump(target))

    def branch(self, cond: OperandLike, if_true: str, if_false: str) -> None:
        self._terminate(Branch(as_operand(cond), if_true, if_false))

    def ret(self, value: Optional[OperandLike] = None) -> None:
        self._terminate(Ret(as_operand(value) if value is not None else None))

    def _terminate(self, term) -> None:
        if self.current.terminator is not None:
            raise RuntimeError(f"block {self.current.label} already terminated")
        self.current.terminator = term
        self._current = None

    # -- finishing --------------------------------------------------------------

    def finish(self) -> Function:
        """Validate termination and return the function."""
        for label, blk in self.function.blocks.items():
            if blk.terminator is None:
                raise RuntimeError(f"block {label} has no terminator")
        return self.function
