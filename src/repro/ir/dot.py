"""Graphviz (DOT) export for CFGs, hot-path graphs, and reduced graphs.

Useful for inspecting what tracing and reduction did to a routine::

    from repro.ir.dot import cfg_to_dot, traced_to_dot
    print(cfg_to_dot(Cfg.from_function(fn)))
    print(traced_to_dot(qa.hpg, recording=True, weights=qa.reduction.weights))

The output is plain DOT text; no graphviz dependency is required to
generate it.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

from .cfg import Cfg, Edge

Vertex = Hashable


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _vertex_name(v: Vertex) -> str:
    if isinstance(v, tuple):
        return f"{v[0]}@q{v[1]}"
    return str(v)


def cfg_to_dot(
    cfg: Cfg,
    name: str = "cfg",
    recording: Optional[frozenset[Edge]] = None,
    highlight: Optional[Mapping[Vertex, str]] = None,
) -> str:
    """Render a graph as DOT.

    ``recording`` edges are drawn dashed (matching the paper's figures);
    ``highlight`` maps vertices to fill colors.
    """
    lines = [f"digraph {name} {{", "  node [shape=box, fontname=monospace];"]
    for v in cfg.vertices:
        label = _vertex_name(v)
        attrs = [f"label={_quote(label)}"]
        if v == cfg.entry or v == cfg.exit:
            attrs.append("shape=ellipse")
        if highlight and v in highlight:
            attrs.append(f"style=filled, fillcolor={_quote(highlight[v])}")
        lines.append(f"  {_quote(label)} [{', '.join(attrs)}];")
    for u, v in cfg.edges:
        attrs = ""
        if recording and (u, v) in recording:
            attrs = " [style=dashed]"
        lines.append(
            f"  {_quote(_vertex_name(u))} -> {_quote(_vertex_name(v))}{attrs};"
        )
    lines.append("}")
    return "\n".join(lines)


def traced_to_dot(
    graph,
    name: str = "hpg",
    weights: Optional[Mapping[Vertex, int]] = None,
) -> str:
    """Render a :class:`~repro.core.hot_path_graph.TracedGraph` as DOT.

    Recording edges are dashed; vertices with positive ``weights`` (dynamic
    non-local constants, per the reduction) are shaded.
    """
    highlight = None
    if weights:
        highlight = {
            v: "lightgoldenrod" for v, w in weights.items() if w > 0
        }
    return cfg_to_dot(
        graph.cfg, name=name, recording=graph.recording, highlight=highlight
    )
