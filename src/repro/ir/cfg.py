"""Control-flow graphs.

A :class:`Cfg` is a directed graph over hashable, ordered vertices with a
distinguished entry and exit.  Function CFGs use block labels as vertices and
add two *virtual* vertices:

* ``ENTRY`` (``"__entry__"``) with a single edge to the entry block — the
  paper's entry vertex ``r`` whose outgoing edges are recording edges;
* ``EXIT`` (``"__exit__"``) with an edge from every returning block — edges
  into the exit are recording edges.

Hot-path graphs reuse the same class with ``(vertex, state)`` tuples as
vertices, so all graph algorithms (DFS, retreating edges, dominators) apply
unchanged.

All iteration orders are deterministic: vertices in insertion order,
successors in the order edges were added.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional

from .function import Function
from .instructions import Ret

ENTRY = "__entry__"
EXIT = "__exit__"

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


class Cfg:
    """A directed graph with entry and exit vertices.

    Parallel edges are not supported (an edge is identified by its endpoint
    pair, as in the paper, where automaton transitions are labelled by CFG
    edges).
    """

    def __init__(
        self,
        entry: Vertex = ENTRY,
        exit: Vertex = EXIT,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self.entry = entry
        self.exit = exit
        self._succs: dict[Vertex, list[Vertex]] = {}
        self._preds: dict[Vertex, list[Vertex]] = {}
        self.add_vertex(entry)
        self.add_vertex(exit)
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction -----------------------------------------------------

    def add_vertex(self, v: Vertex) -> None:
        """Add a vertex (no-op if already present)."""
        if v not in self._succs:
            self._succs[v] = []
            self._preds[v] = []

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add edge ``(u, v)``, creating missing vertices; no-op if present."""
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._succs[u]:
            self._succs[u].append(v)
            self._preds[v].append(u)

    @classmethod
    def from_function(cls, fn: Function) -> "Cfg":
        """The CFG of ``fn`` with virtual ``ENTRY`` and ``EXIT`` vertices."""
        cfg = cls()
        for label in fn.blocks:
            cfg.add_vertex(label)
        cfg.add_edge(ENTRY, fn.entry)
        for label, block in fn.blocks.items():
            for succ in block.successors():
                cfg.add_edge(label, succ)
            if isinstance(block.terminator, Ret):
                cfg.add_edge(label, EXIT)
        return cfg

    # -- queries -----------------------------------------------------------

    @property
    def vertices(self) -> tuple[Vertex, ...]:
        """All vertices, in insertion order."""
        return tuple(self._succs)

    @property
    def edges(self) -> tuple[Edge, ...]:
        """All edges, grouped by source in insertion order."""
        return tuple((u, v) for u in self._succs for v in self._succs[u])

    def succs(self, v: Vertex) -> tuple[Vertex, ...]:
        """Successors of ``v`` in edge-insertion order."""
        return tuple(self._succs[v])

    def preds(self, v: Vertex) -> tuple[Vertex, ...]:
        """Predecessors of ``v`` in edge-insertion order."""
        return tuple(self._preds[v])

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._succs and v in self._succs[u]

    def __contains__(self, v: Vertex) -> bool:
        return v in self._succs

    @property
    def num_vertices(self) -> int:
        return len(self._succs)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._succs.values())

    def real_vertices(self) -> tuple[Vertex, ...]:
        """Vertices excluding the virtual entry and exit."""
        return tuple(v for v in self._succs if v not in (self.entry, self.exit))

    # -- traversals ---------------------------------------------------------

    def dfs_preorder(self) -> tuple[Vertex, ...]:
        """Depth-first preorder from the entry (deterministic)."""
        order: list[Vertex] = []
        seen: set[Vertex] = set()
        stack: list[Vertex] = [self.entry]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            order.append(v)
            for s in reversed(self._succs[v]):
                if s not in seen:
                    stack.append(s)
        return tuple(order)

    def reachable(self) -> set[Vertex]:
        """Vertices reachable from the entry."""
        return set(self.dfs_preorder())

    def retreating_edges(self) -> tuple[Edge, ...]:
        """Edges whose target is on the DFS stack when traversed (back edges).

        These are the paper's *retreating edges*: removing them (together with
        entry and exit edges) makes the graph acyclic, which is what the
        Ball–Larus recording-edge set requires.  The DFS is deterministic, so
        the same graph always yields the same set.
        """
        retreating: list[Edge] = []
        color: dict[Vertex, int] = {}  # 0/absent = white, 1 = gray, 2 = black

        # Iterative DFS with an explicit stack of (vertex, iterator index).
        stack: list[tuple[Vertex, int]] = []
        if self.entry in self._succs:
            color[self.entry] = 1
            stack.append((self.entry, 0))
        while stack:
            v, i = stack[-1]
            succs = self._succs[v]
            if i < len(succs):
                stack[-1] = (v, i + 1)
                w = succs[i]
                c = color.get(w, 0)
                if c == 1:
                    retreating.append((v, w))
                elif c == 0:
                    color[w] = 1
                    stack.append((w, 0))
            else:
                color[v] = 2
                stack.pop()
        return tuple(retreating)

    def is_acyclic_without(self, removed: Iterable[Edge]) -> bool:
        """True if the graph restricted to edges not in ``removed`` is acyclic."""
        removed_set = set(removed)
        indeg: dict[Vertex, int] = {v: 0 for v in self._succs}
        for u, v in self.edges:
            if (u, v) not in removed_set:
                indeg[v] += 1
        worklist = [v for v, d in indeg.items() if d == 0]
        count = 0
        while worklist:
            u = worklist.pop()
            count += 1
            for v in self._succs[u]:
                if (u, v) in removed_set:
                    continue
                indeg[v] -= 1
                if indeg[v] == 0:
                    worklist.append(v)
        return count == len(self._succs)

    # -- dominators and reducibility ----------------------------------------

    def immediate_dominators(self) -> dict[Vertex, Vertex]:
        """Immediate dominators of reachable vertices (Cooper–Harvey–Kennedy).

        The entry maps to itself.
        """
        order = self.dfs_preorder()
        # Reverse postorder via DFS finish times.
        rpo = self._reverse_postorder()
        index = {v: i for i, v in enumerate(rpo)}
        idom: dict[Vertex, Optional[Vertex]] = {v: None for v in order}
        idom[self.entry] = self.entry

        def intersect(a: Vertex, b: Vertex) -> Vertex:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while index[b] > index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        reachable = set(rpo)
        while changed:
            changed = False
            for v in rpo:
                if v == self.entry:
                    continue
                preds = [p for p in self._preds[v] if p in reachable and idom[p] is not None]
                if not preds:
                    continue
                new = preds[0]
                for p in preds[1:]:
                    new = intersect(new, p)
                if idom[v] != new:
                    idom[v] = new
                    changed = True
        return {v: d for v, d in idom.items() if d is not None}

    def _reverse_postorder(self) -> tuple[Vertex, ...]:
        post: list[Vertex] = []
        color: dict[Vertex, int] = {self.entry: 1}
        stack: list[tuple[Vertex, int]] = [(self.entry, 0)]
        while stack:
            v, i = stack[-1]
            succs = self._succs[v]
            if i < len(succs):
                stack[-1] = (v, i + 1)
                w = succs[i]
                if color.get(w, 0) == 0:
                    color[w] = 1
                    stack.append((w, 0))
            else:
                color[v] = 2
                post.append(v)
                stack.pop()
        post.reverse()
        return tuple(post)

    def dominates(self, a: Vertex, b: Vertex) -> bool:
        """True if ``a`` dominates ``b`` (both must be reachable)."""
        idom = self.immediate_dominators()
        v = b
        while True:
            if v == a:
                return True
            if v == self.entry:
                return a == self.entry
            v = idom[v]

    def is_reducible(self) -> bool:
        """True if every retreating edge is a back edge of a natural loop.

        The paper observes that tracing generally produces *irreducible*
        graphs (e.g. its Figure 5), so solvers downstream must not assume
        reducibility; this predicate lets tests verify that observation.
        """
        idom = self.immediate_dominators()
        reachable = set(idom)

        def dominates(a: Vertex, b: Vertex) -> bool:
            v = b
            while True:
                if v == a:
                    return True
                if v == self.entry:
                    return a == self.entry
                v = idom[v]

        for u, v in self.retreating_edges():
            if u not in reachable or v not in reachable:
                continue
            if not dominates(v, u):
                return False
        return True

    def natural_loops(self) -> dict[Edge, frozenset]:
        """Natural loops of the graph: back edge -> loop body vertices.

        Only retreating edges whose target dominates their source define
        natural loops (on an irreducible graph the remaining retreating
        edges are simply absent from the result).  The body contains the
        header and every vertex that can reach the latch without passing
        through the header.
        """
        idom = self.immediate_dominators()
        reachable = set(idom)

        def dominates(a: Vertex, b: Vertex) -> bool:
            v = b
            while True:
                if v == a:
                    return True
                if v == self.entry:
                    return a == self.entry
                v = idom[v]

        loops: dict[Edge, frozenset] = {}
        for latch, header in self.retreating_edges():
            if latch not in reachable or header not in reachable:
                continue
            if not dominates(header, latch):
                continue
            body = {header, latch}
            stack = [latch]
            while stack:
                v = stack.pop()
                for p in self._preds[v]:
                    if p not in body and p != header:
                        body.add(p)
                        stack.append(p)
            loops[(latch, header)] = frozenset(body)
        return loops

    def __str__(self) -> str:
        lines = [f"cfg entry={self.entry} exit={self.exit}"]
        for u in self._succs:
            if self._succs[u]:
                lines.append(f"  {u} -> {', '.join(str(s) for s in self._succs[u])}")
        return "\n".join(lines)
