"""Textual IR: printing and parsing.

The printer is the ``str()`` of the IR classes; this module adds a parser so
IR can round-trip through text.  The format, by example::

    array data[16] = {1, 2, 3}

    func main(n) {
    entry:
      i = 0
      t1 = lt i, n
      x = load data[i]
      store out[i] = x
      r = call helper(i, x)
      call helper(i, x)
      print x, i
      branch t1, body, done
    body:
      jump entry
    done:
      ret 0
    }

Round-tripping is exercised by property tests: ``parse_module(str(m))`` must
reproduce ``m`` exactly.
"""

from __future__ import annotations

import re

from .basic_block import BasicBlock
from .function import ArrayDecl, Function, Module
from .instructions import (
    Assign,
    BinOp,
    Branch,
    Call,
    Jump,
    Load,
    Print,
    Ret,
    Store,
    UnOp,
)
from .operands import Const, Operand, Var
from .ops import BINOPS, UNOPS


class IRSyntaxError(Exception):
    """Raised on malformed textual IR, with a line number in the message."""


_IDENT = r"[%A-Za-z_][%A-Za-z0-9_.@]*"
_OPERAND = rf"(?:-?\d+|{_IDENT})"

_ARRAY_RE = re.compile(
    rf"^array\s+({_IDENT})\[(\d+)\]\s*(?:=\s*\{{([^}}]*)\}})?\s*$"
)
_FUNC_RE = re.compile(rf"^func\s+({_IDENT})\(([^)]*)\)\s*\{{\s*$")
_LABEL_RE = re.compile(rf"^({_IDENT}):$")
_BINOP_RE = re.compile(
    rf"^({_IDENT})\s*=\s*([a-z]+)\s+({_OPERAND})\s*,\s*({_OPERAND})$"
)
_UNOP_RE = re.compile(rf"^({_IDENT})\s*=\s*([a-z]+)\s+({_OPERAND})$")
_ASSIGN_RE = re.compile(rf"^({_IDENT})\s*=\s*({_OPERAND})$")
_LOAD_RE = re.compile(rf"^({_IDENT})\s*=\s*load\s+({_IDENT})\[({_OPERAND})\]$")
_STORE_RE = re.compile(
    rf"^store\s+({_IDENT})\[({_OPERAND})\]\s*=\s*({_OPERAND})$"
)
_CALL_RE = re.compile(rf"^(?:({_IDENT})\s*=\s*)?call\s+({_IDENT})\(([^)]*)\)$")
_PRINT_RE = re.compile(r"^print\s+(.*)$")
_JUMP_RE = re.compile(rf"^jump\s+({_IDENT})$")
_BRANCH_RE = re.compile(
    rf"^branch\s+({_OPERAND})\s*,\s*({_IDENT})\s*,\s*({_IDENT})$"
)
_RET_RE = re.compile(rf"^ret(?:\s+({_OPERAND}))?$")


def _operand(text: str) -> Operand:
    text = text.strip()
    if re.fullmatch(r"-?\d+", text):
        return Const(int(text))
    return Var(text)


def _operand_list(text: str) -> tuple[Operand, ...]:
    text = text.strip()
    if not text:
        return ()
    return tuple(_operand(part) for part in text.split(","))


def parse_module(text: str) -> Module:
    """Parse a textual module. Inverse of ``str(module)``."""
    module = Module()
    lines = text.splitlines()
    i = 0
    n = len(lines)
    while i < n:
        line = lines[i].strip()
        i += 1
        if not line or line.startswith("#"):
            continue
        m = _ARRAY_RE.match(line)
        if m:
            name, size, init = m.group(1), int(m.group(2)), m.group(3)
            init_vals = (
                tuple(int(x) for x in init.split(",")) if init and init.strip() else ()
            )
            module.add_array(ArrayDecl(name, size, init_vals))
            continue
        m = _FUNC_RE.match(line)
        if m:
            fn, i = _parse_function(m, lines, i)
            module.add_function(fn)
            continue
        raise IRSyntaxError(f"line {i}: expected array or func, got {line!r}")
    return module


def parse_function(text: str) -> Function:
    """Parse a single textual function."""
    lines = text.splitlines()
    for i, raw in enumerate(lines):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = _FUNC_RE.match(line)
        if not m:
            raise IRSyntaxError(f"line {i + 1}: expected func header, got {line!r}")
        fn, j = _parse_function(m, lines, i + 1)
        for rest in lines[j:]:
            if rest.strip() and not rest.strip().startswith("#"):
                raise IRSyntaxError(f"trailing content after function: {rest.strip()!r}")
        return fn
    raise IRSyntaxError("no function found")


def _parse_function(header: re.Match, lines: list[str], i: int) -> tuple[Function, int]:
    name = header.group(1)
    params = tuple(p.strip() for p in header.group(2).split(",") if p.strip())
    fn = Function(name, params)
    block: BasicBlock | None = None
    n = len(lines)
    while i < n:
        line = lines[i].strip()
        i += 1
        if not line or line.startswith("#"):
            continue
        if line == "}":
            return fn, i
        m = _LABEL_RE.match(line)
        if m:
            block = fn.add_block(BasicBlock(m.group(1)))
            continue
        if block is None:
            raise IRSyntaxError(f"line {i}: instruction outside a block: {line!r}")
        if block.terminator is not None:
            raise IRSyntaxError(
                f"line {i}: instruction after terminator in {block.label}: {line!r}"
            )
        _parse_instr(line, block, i)
    raise IRSyntaxError(f"function {name}: missing closing brace")


def _parse_instr(line: str, block: BasicBlock, lineno: int) -> None:
    m = _JUMP_RE.match(line)
    if m:
        block.terminator = Jump(m.group(1))
        return
    m = _BRANCH_RE.match(line)
    if m:
        block.terminator = Branch(_operand(m.group(1)), m.group(2), m.group(3))
        return
    m = _RET_RE.match(line)
    if m:
        block.terminator = Ret(_operand(m.group(1)) if m.group(1) else None)
        return
    m = _LOAD_RE.match(line)
    if m:
        block.append(Load(m.group(1), m.group(2), _operand(m.group(3))))
        return
    m = _STORE_RE.match(line)
    if m:
        block.append(Store(m.group(1), _operand(m.group(2)), _operand(m.group(3))))
        return
    m = _CALL_RE.match(line)
    if m:
        block.append(Call(m.group(1), m.group(2), _operand_list(m.group(3))))
        return
    m = _PRINT_RE.match(line)
    if m:
        block.append(Print(_operand_list(m.group(1))))
        return
    m = _BINOP_RE.match(line)
    if m and m.group(2) in BINOPS:
        block.append(BinOp(m.group(1), m.group(2), _operand(m.group(3)), _operand(m.group(4))))
        return
    m = _UNOP_RE.match(line)
    if m and m.group(2) in UNOPS:
        block.append(UnOp(m.group(1), m.group(2), _operand(m.group(3))))
        return
    m = _ASSIGN_RE.match(line)
    if m:
        block.append(Assign(m.group(1), _operand(m.group(2))))
        return
    raise IRSyntaxError(f"line {lineno}: cannot parse instruction {line!r}")


__all__ = ["parse_module", "parse_function", "IRSyntaxError"]
