"""Retrieval trees (tries) over arbitrary hashable letters.

The Aho–Corasick construction of §3 starts from the retrieval tree of the
trimmed hot paths; keywords here are sequences of CFG edges.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

Letter = Hashable


class Trie:
    """A retrieval tree with integer states; state 0 is the root.

    Each root-to-node path spells a distinct prefix of some inserted keyword,
    and every keyword prefix has exactly one such path — the two defining
    properties quoted in the paper.
    """

    def __init__(self) -> None:
        self._children: list[dict[Letter, int]] = [{}]
        self._word_end: list[bool] = [False]
        self._depth: list[int] = [0]

    @property
    def root(self) -> int:
        return 0

    @property
    def num_states(self) -> int:
        return len(self._children)

    def insert(self, word: Sequence[Letter], mark_end: bool = True) -> int:
        """Insert a keyword; returns the state at which it ends.

        With ``mark_end=False`` the path is created (or found) but the final
        state is not marked as a keyword end.
        """
        state = 0
        for letter in word:
            nxt = self._children[state].get(letter)
            if nxt is None:
                nxt = len(self._children)
                self._children[state][letter] = nxt
                self._children.append({})
                self._word_end.append(False)
                self._depth.append(self._depth[state] + 1)
            state = nxt
        if mark_end:
            self._word_end[state] = True
        return state

    def child(self, state: int, letter: Letter) -> int | None:
        """The child of ``state`` along ``letter``, or None."""
        return self._children[state].get(letter)

    def children(self, state: int) -> dict[Letter, int]:
        """All children of ``state`` (letter -> state)."""
        return dict(self._children[state])

    def is_word_end(self, state: int) -> bool:
        """True if a whole keyword ends at ``state``."""
        return self._word_end[state]

    def depth(self, state: int) -> int:
        """Distance of ``state`` from the root."""
        return self._depth[state]

    def contains(self, word: Sequence[Letter]) -> bool:
        """True if ``word`` was inserted as a keyword."""
        state = 0
        for letter in word:
            nxt = self._children[state].get(letter)
            if nxt is None:
                return False
            state = nxt
        return self._word_end[state]

    def states(self) -> Iterator[int]:
        return iter(range(len(self._children)))

    def word_of(self, state: int) -> tuple[Letter, ...]:
        """The prefix spelled by the root-to-``state`` path.

        O(total trie size); intended for debugging and tests.
        """
        path: list[Letter] = []
        target = state
        found = self._search_word(0, target, path)
        if not found:
            raise KeyError(f"no state {state}")
        return tuple(path)

    def _search_word(self, state: int, target: int, path: list[Letter]) -> bool:
        if state == target:
            return True
        for letter, child in self._children[state].items():
            path.append(letter)
            if self._search_word(child, target, path):
                return True
            path.pop()
        return False
