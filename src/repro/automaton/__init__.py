"""Qualification automata (§3) and partition refinement (§5 step 3)."""

from .aho_corasick import AhoCorasick
from .minimize import hopcroft_refine, moore_refine, quotient_map
from .qualification import DOT, QualificationAutomaton
from .trie import Trie

__all__ = [
    "AhoCorasick",
    "DOT",
    "hopcroft_refine",
    "moore_refine",
    "QualificationAutomaton",
    "quotient_map",
    "Trie",
]
