"""Partition refinement (DFA minimization) for the reduction step.

§5 step 3 of the paper views the hot-path graph as a finite automaton whose
edges are labelled by original-CFG edges, and refines the compatibility
partition ``Π`` with "the standard DFA minimization algorithm [Gri73]"
(Hopcroft, as described by Gries) so the resulting partition ``Π'`` induces a
well-defined quotient graph: for every class and every label, all members'
transitions land in one class.  Because refinement only *splits* classes, no
new entry path can reach a class that couldn't before, which is the paper's
argument that minimization cannot lower any solution.

Two implementations are provided:

* :func:`hopcroft_refine` — the worklist algorithm with the classic
  "all but the largest" optimization, O(n log n) splits;
* :func:`moore_refine` — straightforward signature-based refinement, used as
  a cross-checking oracle in tests.

Both are deterministic and return classes as tuples in a canonical order.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping, Sequence

State = Hashable
Label = Hashable
#: transitions(state) -> {label: successor state}
Transitions = Callable[[State], Mapping[Label, State]]


def _normalize(partition: Iterable[Iterable[State]], order: dict[State, int]) -> list[tuple[State, ...]]:
    classes = [tuple(sorted(block, key=order.__getitem__)) for block in partition]
    classes = [c for c in classes if c]
    classes.sort(key=lambda c: order[c[0]])
    return classes


def _check_partition(states: Sequence[State], partition: Iterable[Iterable[State]]) -> None:
    seen: set[State] = set()
    count = 0
    for block in partition:
        for s in block:
            if s in seen:
                raise ValueError(f"state {s!r} appears in two classes")
            seen.add(s)
            count += 1
    if seen != set(states):
        raise ValueError("partition does not cover exactly the given states")


def moore_refine(
    states: Sequence[State],
    partition: Iterable[Iterable[State]],
    transitions: Transitions,
) -> list[tuple[State, ...]]:
    """Refine ``partition`` until every class maps each label into a single
    class.  Simple fixed-point signature refinement (the test oracle)."""
    _check_partition(states, partition)
    order = {s: i for i, s in enumerate(states)}
    classes = _normalize(partition, order)
    while True:
        class_of: dict[State, int] = {}
        for i, block in enumerate(classes):
            for s in block:
                class_of[s] = i
        new_classes: list[tuple[State, ...]] = []
        changed = False
        for block in classes:
            groups: dict[tuple, list[State]] = {}
            for s in block:
                sig = tuple(
                    sorted(
                        (repr(label), class_of[t])
                        for label, t in transitions(s).items()
                    )
                )
                groups.setdefault(sig, []).append(s)
            if len(groups) > 1:
                changed = True
            new_classes.extend(tuple(g) for g in groups.values())
        classes = _normalize(new_classes, order)
        if not changed:
            return classes


def hopcroft_refine(
    states: Sequence[State],
    partition: Iterable[Iterable[State]],
    transitions: Transitions,
) -> list[tuple[State, ...]]:
    """Hopcroft's partition refinement, generalized to partial label maps.

    Returns the coarsest refinement of ``partition`` such that for every
    class ``C`` and label ``a``, the ``a``-successors of all members of ``C``
    (when defined) lie in a single class and are defined for the same
    members.
    """
    _check_partition(states, partition)
    order = {s: i for i, s in enumerate(states)}

    # Inverse transitions: (label, target) -> [sources].
    inverse: dict[tuple, list[State]] = {}
    labels: set = set()
    for s in states:
        for label, t in transitions(s).items():
            inverse.setdefault((repr(label), _key(t)), []).append(s)
            labels.add(repr(label))

    # Classes as lists; class index per state.
    classes: list[list[State]] = [list(block) for block in _normalize(partition, order)]
    class_of: dict[State, int] = {}
    for i, block in enumerate(classes):
        for s in block:
            class_of[s] = i

    # Worklist of (class index snapshot contents, label) splitters. We store
    # frozensets so stale entries still denote the right state set.
    worklist: list[tuple[frozenset, str]] = []
    for block in classes:
        fs = frozenset(block)
        for label in sorted(labels):
            worklist.append((fs, label))

    while worklist:
        splitter_set, label = worklist.pop()
        # X = states with a `label` transition into the splitter set.
        x: set[State] = set()
        for t in splitter_set:
            x.update(inverse.get((label, _key(t)), ()))
        if not x:
            continue
        # Split every class crossed by X.
        affected = sorted({class_of[s] for s in x})
        for ci in affected:
            block = classes[ci]
            inside = [s for s in block if s in x]
            outside = [s for s in block if s not in x]
            if not inside or not outside:
                continue
            # Replace block with `inside`; append `outside` as a new class.
            classes[ci] = inside
            new_index = len(classes)
            classes.append(outside)
            for s in outside:
                class_of[s] = new_index
            smaller = inside if len(inside) <= len(outside) else outside
            fs = frozenset(smaller)
            for lab in sorted(labels):
                worklist.append((fs, lab))

    return _normalize(classes, order)


def _key(state: State):
    return state


def quotient_map(classes: Sequence[Sequence[State]]) -> dict[State, State]:
    """Map each state to its class representative (the first member)."""
    rep: dict[State, State] = {}
    for block in classes:
        head = block[0]
        for s in block:
            rep[s] = head
    return rep
