"""The general Aho–Corasick automaton, with BFS-constructed failure links.

The paper's qualification automaton exploits Theorem 2: for keyword sets
derived from *trimmed Ball–Larus paths*, the failure function is trivial
(``q•`` on a recording edge, ``qε`` otherwise), so only trie edges need
storing.  This module implements the *textbook* construction [Aho94] for
arbitrary keyword sets, for two purposes:

* an executable proof of Theorem 2 — the test suite checks that on trimmed
  hot-path keywords the general automaton's transition function coincides
  exactly with :class:`~repro.automaton.qualification.QualificationAutomaton`;
* an ablation baseline measuring what the trivial failure function saves
  (``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Sequence

from .trie import Trie

Letter = Hashable


class AhoCorasick:
    """A complete keyword-matching DFA over an explicit alphabet.

    States are trie states; the transition function is built from failure
    links as in the classic algorithm: ``goto`` if a trie edge matches,
    otherwise follow failure links until one does (or the root is reached).
    """

    def __init__(
        self, keywords: Iterable[Sequence[Letter]], alphabet: Iterable[Letter]
    ) -> None:
        self.alphabet = tuple(dict.fromkeys(alphabet))
        self.trie = Trie()
        for word in keywords:
            self.trie.insert(word)
        self.failure: list[int] = [0] * self.trie.num_states
        #: States at which some keyword ends, directly or via failure chain.
        self.output: list[bool] = [
            self.trie.is_word_end(s) for s in self.trie.states()
        ]
        self._build_failure_links()

    @property
    def root(self) -> int:
        return self.trie.root

    @property
    def num_states(self) -> int:
        return self.trie.num_states

    def _build_failure_links(self) -> None:
        queue: deque[int] = deque()
        for child in self.trie.children(self.root).values():
            self.failure[child] = self.root
            queue.append(child)
        while queue:
            state = queue.popleft()
            for letter, child in self.trie.children(state).items():
                queue.append(child)
                # Walk failure links of `state` looking for a `letter` edge.
                f = self.failure[state]
                while f != self.root and self.trie.child(f, letter) is None:
                    f = self.failure[f]
                target = self.trie.child(f, letter)
                self.failure[child] = (
                    target if target is not None and target != child else self.root
                )
                if self.output[self.failure[child]]:
                    self.output[child] = True

    def transition(self, state: int, letter: Letter) -> int:
        """The DFA transition: goto edge if present, else failure chain."""
        while True:
            child = self.trie.child(state, letter)
            if child is not None:
                return child
            if state == self.root:
                return self.root
            state = self.failure[state]

    def run(self, letters: Sequence[Letter]) -> int:
        """Drive the automaton from the root over ``letters``."""
        state = self.root
        for letter in letters:
            state = self.transition(state, letter)
        return state

    def matches(self, text: Sequence[Letter]) -> list[tuple[int, int]]:
        """All keyword occurrences in ``text`` as (end index, state) pairs.

        ``end index`` is the position just past the match.
        """
        hits: list[tuple[int, int]] = []
        state = self.root
        for i, letter in enumerate(text):
            state = self.transition(state, letter)
            if self.output[state]:
                hits.append((i + 1, state))
        return hits
