"""The qualification automaton that recognizes hot paths (§3 of the paper).

The automaton is the Aho–Corasick keyword matcher for the *trimmed* hot
paths (each hot Ball–Larus path minus its final recording edge), with the
leading ``•`` of every path represented by a distinguished trie edge from the
root.  Theorem 2 shows the failure function is trivial for such keyword sets:

* on a letter matching a trie edge, follow it;
* on any recording edge, go to ``q•`` (the target of the ``•`` edge);
* on anything else, go to ``qε`` (the root).

so only the retrieval-tree edges are stored.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

from ..ir.cfg import Edge
from ..profiles.path_profile import BLPath
from .trie import Trie

Vertex = Hashable


class _Dot:
    """The • placeholder letter that begins every trimmed hot path."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "•"

    def __reduce__(self):
        # Preserve singleton identity across pickling (artifact cache,
        # process-pool workers).
        return "DOT"


DOT = _Dot()


class QualificationAutomaton:
    """A complete, deterministic qualification automaton (Definition 5)
    whose transitions are labelled by CFG edges.

    States are trie states.  ``q_epsilon`` (the root) is the start state for
    Definition 6's purposes, but data-flow tracing starts at ``q_dot``
    because the entry's incoming "edge" is a recording edge (Figure 4 begins
    with ``(r, q•)``).
    """

    def __init__(
        self,
        recording: frozenset[Edge],
        hot_paths: Iterable[BLPath] = (),
    ) -> None:
        self.recording = recording
        self.trie = Trie()
        self.q_epsilon = self.trie.root
        # The single • edge out of the root (Definition 9's q•) exists even
        # for an empty hot set, so tracing always has a start state.
        self.q_dot = self.trie.insert([DOT], mark_end=False)
        self.hot_paths: tuple[BLPath, ...] = tuple(hot_paths)
        self._hot_end_states: dict[int, BLPath] = {}
        for path in self.hot_paths:
            trimmed = self.trim(path)
            for edge in trimmed:
                if edge in recording:
                    raise ValueError(
                        f"hot path {path} has an interior recording edge {edge}"
                    )
            end = self.trie.insert([DOT, *trimmed])
            self._hot_end_states[end] = path

    @staticmethod
    def trim(path: BLPath) -> tuple[Edge, ...]:
        """The keyword for a hot path: its edges minus the final (recording)
        edge.  Trimming makes the automaton return to the same state (q•)
        after any recording edge."""
        return path.edges()[:-1]

    # -- the DFA -----------------------------------------------------------

    def transition(self, state: int, edge: Edge) -> int:
        """The (total) transition function."""
        child = self.trie.child(state, edge)
        if child is not None:
            return child
        if edge in self.recording:
            return self.q_dot
        return self.q_epsilon

    def run(self, start: int, edges: Sequence[Edge]) -> int:
        """Drive the automaton from ``start`` over ``edges``."""
        state = start
        for edge in edges:
            state = self.transition(state, edge)
        return state

    @property
    def num_states(self) -> int:
        return self.trie.num_states

    def states(self) -> Iterator[int]:
        return self.trie.states()

    def depth(self, state: int) -> int:
        """Length of the hot-path prefix recognized at ``state``."""
        return self.trie.depth(state)

    def is_hot_prefix(self, state: int) -> bool:
        """True if ``state`` lies on some hot path's spine (is not qε)."""
        return state != self.q_epsilon

    def hot_path_at(self, state: int) -> BLPath | None:
        """The hot path whose trimmed spine ends exactly at ``state``."""
        return self._hot_end_states.get(state)

    def state_name(self, state: int) -> str:
        """A compact display name: ``qε``, ``q•``, or ``q<n>``."""
        if state == self.q_epsilon:
            return "qe"
        if state == self.q_dot:
            return "q."
        return f"q{state}"
