"""Classification of dynamic instructions (Figures 10 and 13 of the paper).

Each *value-producing site* (an instruction with a destination) is classified
by what kind of analysis can prove its result constant:

* **Local** — constant by scanning the enclosing basic block alone.
* **Iterative** — constant per Wegman–Zadek on the original CFG (CA = 0).
* **Qualified** — constant per path-qualified analysis at some duplicate in
  the reduced hot-path graph.
* **Identical** — Iterative, plus sites the qualified analysis proves
  constant *with the same value at every duplicate* (these would also be
  found by a meet-over-all-paths solution).
* **Variable** — constant with *different values* at different duplicates
  (only duplication can reveal these).
* **Mixed** — constant at one or more duplicates and unknown at others
  (the paper found most qualified constants fall here).
* **Unknowable** — the dynamic executions whose result is tainted by memory,
  calls, or parameters: no intraprocedural scalar analysis "will ever find
  [them] constant".  Estimated from the interpreter's dynamic taint, our
  stand-in for the paper's per-block estimate.

All categories are *dynamically weighted*: a site contributes its profiled
execution frequency (on the graph where the fact holds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..core.qualified import QualifiedAnalysis
from ..core.translate import reduce_profile, translate_profile
from ..dataflow.local import local_constant_sites
from ..interp.interpreter import Site, SiteStats
from ..profiles.path_profile import PathProfile


@dataclass
class ConstantClassification:
    """Dynamically weighted instruction counts for one routine."""

    #: All executed instructions (including stores, prints, terminators).
    total_dynamic: int
    #: Executions of locally-constant sites.
    local: int
    #: Executions of tainted results (never knowable to these analyses).
    unknowable: int
    #: Executions of *non-local* Wegman–Zadek constants.
    iterative_nonlocal: int
    #: Executions of *non-local* qualified constants (on the reduced graph).
    qualified_nonlocal: int
    #: Executions of all constant-result sites, baseline (incl. local).
    baseline_constants: int
    #: Executions of all constant-result sites, qualified (incl. local).
    qualified_constants: int
    #: Qualified executions at Identical sites that Wegman–Zadek missed.
    identical_extra: int
    #: Qualified executions at Variable sites.
    variable: int
    #: Qualified executions at sites constant here, unknown elsewhere.
    mixed: int

    @property
    def improvement_ratio(self) -> float:
        """Qualified / iterative non-local constants (the paper's 2–112×)."""
        if self.iterative_nonlocal == 0:
            return float("inf") if self.qualified_nonlocal else 1.0
        return self.qualified_nonlocal / self.iterative_nonlocal

    @property
    def constant_increase(self) -> float:
        """Fractional increase in dynamic instructions with constant results
        over the CA = 0 baseline (Figure 9's y-axis)."""
        if self.baseline_constants == 0:
            return 0.0 if self.qualified_constants == 0 else float("inf")
        return self.qualified_constants / self.baseline_constants - 1.0


def classify_constants(
    qa: QualifiedAnalysis,
    eval_profile: PathProfile,
    site_stats: Optional[Mapping[Site, SiteStats]] = None,
) -> ConstantClassification:
    """Classify one routine's dynamic instructions.

    ``eval_profile`` is a profile of the *original* CFG from the evaluation
    (ref) run; it is translated onto the reduced graph internally.
    ``site_stats`` (from an evaluation run of the interpreter) supplies the
    taint counts for the Unknowable estimate; pass None to report 0.
    """
    fn = qa.function
    freq = eval_profile.block_frequencies()
    total_dynamic = eval_profile.total_instructions(qa.block_sizes)

    local_sites = {label: local_constant_sites(b) for label, b in fn.blocks.items()}
    local_dyn = sum(
        freq.get(label, 0) * len(sites) for label, sites in local_sites.items()
    )

    baseline_const = {
        label: qa.baseline.pure_constant_sites(label) for label in fn.blocks
    }
    baseline_constants = sum(
        freq.get(label, 0) * len(sites) for label, sites in baseline_const.items()
    )
    iterative_nonlocal = sum(
        freq.get(label, 0)
        * len([i for i in sites if i not in local_sites[label]])
        for label, sites in baseline_const.items()
    )

    if qa.traced:
        reduced = qa.reduced
        analysis = qa.reduced_analysis
        eval_reduced = reduce_profile(
            translate_profile(eval_profile, qa.hpg), reduced
        )
        dup_freq = eval_reduced.block_frequencies()
        duplicates: dict[str, list] = {}
        for vertex in reduced.cfg.vertices:
            if vertex[0] in fn.blocks:
                duplicates.setdefault(vertex[0], []).append(vertex)

        qualified_constants = 0
        qualified_nonlocal = 0
        identical_extra = 0
        variable = 0
        mixed = 0
        for label, dups in duplicates.items():
            block_local = local_sites[label]
            n_sites = [
                idx
                for idx, instr in enumerate(fn.blocks[label].instrs)
                if instr.dest is not None and instr.is_pure
            ]
            const_at: dict[int, dict] = {idx: {} for idx in n_sites}
            for dup in dups:
                consts = analysis.pure_constant_sites(dup)
                for idx in n_sites:
                    if idx in consts:
                        const_at[idx][dup] = consts[idx]
            for idx in n_sites:
                values = const_at[idx]
                if not values:
                    continue
                exec_weight = sum(dup_freq.get(d, 0) for d in values)
                qualified_constants += exec_weight
                if idx in block_local:
                    continue
                qualified_nonlocal += exec_weight
                distinct = set(values.values())
                everywhere = len(values) == len(dups)
                if idx in baseline_const[label]:
                    continue  # already iterative; counted within Identical
                if len(distinct) > 1:
                    variable += exec_weight
                elif everywhere:
                    identical_extra += exec_weight
                else:
                    mixed += exec_weight
    else:
        qualified_constants = baseline_constants
        qualified_nonlocal = iterative_nonlocal
        identical_extra = 0
        variable = 0
        mixed = 0

    unknowable = 0
    if site_stats is not None:
        for (site_fn, _, _), stats in site_stats.items():
            if site_fn == fn.name:
                unknowable += stats.tainted_executions

    return ConstantClassification(
        total_dynamic=total_dynamic,
        local=local_dyn,
        unknowable=unknowable,
        iterative_nonlocal=iterative_nonlocal,
        qualified_nonlocal=qualified_nonlocal,
        baseline_constants=baseline_constants,
        qualified_constants=qualified_constants,
        identical_extra=identical_extra,
        variable=variable,
        mixed=mixed,
    )


def constant_distribution(weights: Mapping) -> list[int]:
    """Per-vertex dynamic non-local constant executions, descending — the
    raw series behind Figure 7's cumulative distribution.

    ``weights`` is :attr:`repro.core.reduction.ReductionResult.weights` (or
    any vertex -> executions map).
    """
    return sorted((w for w in weights.values() if w > 0), reverse=True)


def cumulative_coverage(distribution: list[int]) -> list[float]:
    """Cumulative fraction covered by the top-k vertices (Figure 7's
    y-axis), for k = 1..len(distribution)."""
    total = sum(distribution)
    if total == 0:
        return []
    out: list[float] = []
    acc = 0
    for w in distribution:
        acc += w
        out.append(acc / total)
    return out
