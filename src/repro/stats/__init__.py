"""Constant classification and distribution statistics (Figures 7, 10, 13)."""

from .classify import (
    ConstantClassification,
    classify_constants,
    constant_distribution,
    cumulative_coverage,
)
from .venn import VennSummary, render_venn, venn_summary

__all__ = [
    "classify_constants",
    "ConstantClassification",
    "constant_distribution",
    "cumulative_coverage",
    "render_venn",
    "venn_summary",
    "VennSummary",
]
