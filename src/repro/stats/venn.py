"""The Figure 13 Venn regions, computed from a classification.

Figure 13 partitions a program's dynamic instructions into Local,
Iterative, MOP, Qualified, Identical, Variable, and Unknowable regions.
MOP is not directly measurable (the paper: "We cannot measure this category
directly"), so, exactly as the paper does, the Identical and Variable sets
approximate the interesting intersections.
"""

from __future__ import annotations

from dataclasses import dataclass

from .classify import ConstantClassification


@dataclass(frozen=True)
class VennSummary:
    """Dynamic-instruction regions of the paper's Figure 13."""

    #: Constant by scanning the enclosing block (subset of every analysis).
    local: int
    #: Non-local constants Wegman–Zadek finds (Iterative \ Local).
    iterative_only: int
    #: Qualified constants that MOP would also find (Identical \ Iterative).
    identical_only: int
    #: Qualified constants only duplication reveals, with differing values.
    variable: int
    #: Qualified constants at some duplicates, unknown at others.
    mixed: int
    #: Never knowable to these analyses (tainted by memory/calls/params).
    unknowable: int
    #: Everything else (non-constant but in-principle knowable, stores,
    #: prints, terminators, ...).
    other: int

    @property
    def total(self) -> int:
        return (
            self.local
            + self.iterative_only
            + self.identical_only
            + self.variable
            + self.mixed
            + self.unknowable
            + self.other
        )


def venn_summary(c: ConstantClassification) -> VennSummary:
    """Partition ``c.total_dynamic`` into the Figure 13 regions.

    The constant regions are disjoint by construction of
    :func:`repro.stats.classify.classify_constants`; ``other`` absorbs the
    remainder so the regions always sum to the dynamic total.
    """
    constant_regions = (
        c.local
        + c.iterative_nonlocal
        + c.identical_extra
        + c.variable
        + c.mixed
    )
    other = c.total_dynamic - constant_regions - c.unknowable
    return VennSummary(
        local=c.local,
        iterative_only=c.iterative_nonlocal,
        identical_only=c.identical_extra,
        variable=c.variable,
        mixed=c.mixed,
        unknowable=c.unknowable,
        other=max(other, 0),
    )


def render_venn(summary: VennSummary) -> str:
    """A text rendering of the regions with percentages."""
    total = summary.total or 1
    rows = [
        ("Local", summary.local),
        ("Iterative (non-local, WZ)", summary.iterative_only),
        ("Identical (qualified = MOP)", summary.identical_only),
        ("Variable (duplication only)", summary.variable),
        ("Mixed (constant/unknown)", summary.mixed),
        ("Unknowable", summary.unknowable),
        ("Other", summary.other),
    ]
    width = max(len(name) for name, _ in rows)
    lines = ["Figure 13 regions (dynamic instructions):"]
    for name, value in rows:
        lines.append(f"  {name.ljust(width)} {value:>10d}  {value / total:6.1%}")
    return "\n".join(lines)
