"""Analyzer entry points: compute, rank, and fan out lint findings.

The analyzer composes the classic data-flow lints (``LINT001``–``004``)
with the path-qualified passes (``LINT005``–``010``) over one module's
qualified analyses, then ranks findings by profile mass so the hottest
evidence surfaces first.  Everything here is deterministic: identical
inputs produce byte-identical finding lists regardless of ``--jobs`` or
daemon vs. CLI execution, which the baseline fingerprints rely on.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from ..checks.diagnostics import Diagnostic, Diagnostics
from ..checks.engine import CheckContext, run_passes
from ..checks.runner import LintPass
from .passes import DEFAULT_MIN_MASS, PathLintPass


def rank(findings: Iterable[Diagnostic]) -> tuple[Diagnostic, ...]:
    """Order findings by profile mass (descending), then stable identity.

    Unranked findings (no path evidence) sort after ranked ones; ties
    break on (code, function, block, instr, message) so the order is
    total and reproducible."""
    def key(d: Diagnostic):
        return (
            d.mass is None,
            -(d.mass or 0.0),
            d.code,
            d.function or "",
            d.block or "",
            -1 if d.instr is None else d.instr,
            d.message,
        )

    return tuple(sorted(findings, key=key))


def compute_findings(
    module,
    qualified: Mapping[str, object],
    min_mass: float = DEFAULT_MIN_MASS,
    workload: str = "program",
) -> tuple[Diagnostic, ...]:
    """All analyzer findings for one module + its qualified analyses."""
    out = Diagnostics()
    ctx = CheckContext(
        workload=workload,
        stage="lint",
        module=module,
        qualified=dict(qualified),
    )
    run_passes((LintPass(), PathLintPass(min_mass)), ctx, out)
    return rank(out.records)


def compute_function_findings(
    fn,
    qualified_analysis,
    min_mass: float = DEFAULT_MIN_MASS,
    workload: str = "program",
) -> tuple[Diagnostic, ...]:
    """Analyzer findings for a *single* function.

    Both lint passes are function-local (the classic lints inspect one
    function at a time; the path lints inspect one routine's qualified
    analysis at a time), so linting each function separately and
    re-ranking the concatenation reproduces :func:`compute_findings`
    exactly — :func:`rank` is a deterministic total order over the same
    finding multiset.  The incremental pipeline relies on this to cache
    lint results per function.
    """
    from ..ir.function import Module

    solo = Module()
    solo.add_function(fn)
    qualified = (
        {fn.name: qualified_analysis} if qualified_analysis is not None else {}
    )
    out = Diagnostics()
    ctx = CheckContext(
        workload=workload,
        stage="lint",
        module=solo,
        qualified=qualified,
    )
    run_passes((LintPass(), PathLintPass(min_mass)), ctx, out)
    return rank(out.records)


def findings_under(
    module,
    qualified: Mapping[str, object],
    min_mass: float = DEFAULT_MIN_MASS,
    dataflow_engine: str = "auto",
    workload: str = "program",
) -> tuple[Diagnostic, ...]:
    """:func:`compute_findings` under an explicit data-flow engine.

    The qualified analyses are fixed inputs; only the analyzer's own
    solves (liveness, available expressions, copies, definite assignment)
    re-run under ``dataflow_engine`` — the matrix suite compares engines
    pairwise to prove the lint layer engine-independent."""
    from ..dataflow import engine_scope

    with engine_scope(dataflow_engine):
        return compute_findings(module, qualified, min_mass, workload)


def lint_program(
    module,
    args,
    inputs,
    ca: float,
    cr: float,
    engine: str = "compiled",
    workload: str = "program",
    dataflow_engine: str = "auto",
    wz_engine: str = "auto",
    min_mass: float = DEFAULT_MIN_MASS,
) -> tuple[Diagnostic, ...]:
    """Analyze an ad-hoc program: one profiled run, the qualified pipeline
    per routine, then the full lint battery (the ``repro lint <file>``
    path, mirroring :func:`repro.checks.runner.check_program`)."""
    from ..core.qualified import run_qualified
    from ..dataflow import engine_scope, wz_engine_scope
    from ..interp.interpreter import Interpreter
    from ..profiles.path_profile import PathProfile

    with engine_scope(dataflow_engine), wz_engine_scope(wz_engine):
        result = Interpreter(
            module, profile_mode="bl", track_sites=False, engine=engine
        ).run(args, inputs)
        qualified = {
            name: run_qualified(
                fn,
                result.profiles.get(name, PathProfile()),
                ca,
                cr,
                wz_engine=wz_engine,
            )
            for name, fn in module.functions.items()
        }
        return compute_findings(module, qualified, min_mass, workload)


def lint_target(
    name: str,
    cache_dir: Optional[str] = None,
    ca: Optional[float] = None,
    cr: Optional[float] = None,
    min_mass: float = DEFAULT_MIN_MASS,
    engine: str = "compiled",
    dataflow_engine: str = "auto",
    wz_engine: str = "auto",
) -> tuple[Diagnostic, ...]:
    """Analyze one registered/generated target by name (cacheable)."""
    from ..evaluation.harness import DEFAULT_CA, DEFAULT_CR
    from ..pipeline.cached_run import make_run
    from ..workloads.matrix import resolve_target

    run = make_run(
        resolve_target(name),
        cache_dir=cache_dir,
        engine=engine,
        dataflow_engine=dataflow_engine,
        wz_engine=wz_engine,
    )
    return run.lint(
        ca if ca is not None else DEFAULT_CA,
        cr if cr is not None else DEFAULT_CR,
        min_mass,
    )


def _lint_target_job(
    name: str,
    cache_dir: Optional[str],
    ca: Optional[float],
    cr: Optional[float],
    min_mass: float,
    engine: str,
    dataflow_engine: str,
    wz_engine: str,
) -> tuple[str, list[dict]]:
    """Process-pool job: findings for one target, shipped as dicts."""
    findings = lint_target(
        name,
        cache_dir=cache_dir,
        ca=ca,
        cr=cr,
        min_mass=min_mass,
        engine=engine,
        dataflow_engine=dataflow_engine,
        wz_engine=wz_engine,
    )
    return name, [d.to_dict() for d in findings]


def pair_with_target(
    target: str, findings: Sequence[Diagnostic]
) -> list[tuple[str, Diagnostic]]:
    """The ``(target, finding)`` pairs the reporters consume."""
    return [(target, d) for d in findings]


__all__ = [
    "compute_findings",
    "findings_under",
    "lint_program",
    "lint_target",
    "pair_with_target",
    "rank",
]
