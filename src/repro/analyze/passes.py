"""Path-qualified lint passes (family ``LINT005``–``LINT010``).

Where ``LINT001``–``004`` spend ordinary iterative (MFP) facts, these
passes spend the *qualified* facts of the paper's pipeline: data-flow
solved on the hot-path graph, where each traced copy ``(v, q)`` of a
block sees only the executions consistent with automaton state ``q``.
Forward facts at a copy are therefore restricted to a subset of the
paths the iterative solution must merge over — the Theorem-1 sharpening
— and every finding carries a :class:`~repro.checks.diagnostics.PathEvidence`
payload quantifying how much *profile mass* flows through the copies
that support it.

The passes:

* ``LINT005`` — hot-path dead store: live in the iterative solution, but
  overwritten before any read along hot paths carrying ≥ ``min_mass`` of
  the block's profile mass (per-path scan over the selected hot paths);
* ``LINT006`` — hot-path-constant branch: the iterative propagator cannot
  resolve the condition, but the hot-path copies carrying the mass all
  resolve it (straightening candidate, cross-linked to
  ``repro.opt.straighten``);
* ``LINT007`` — redundant recomputation: an expression unavailable in the
  iterative must-solution is available on the hot copies (qualified
  available-expressions);
* ``LINT008`` — maybe-uninitialized use proven initialized on all hot
  copies: demoted to INFO with provenance instead of a hard warning;
* ``LINT009`` — hot-path copy propagation: a variable read is a known
  copy of another variable on the hot copies but not iteratively;
* ``LINT010`` — qualified constant sharpening: a pure site the iterative
  analysis cannot fold is constant on hot copies carrying the mass (the
  paper's headline payoff, visible as a diagnostic).

All six only fire when the qualified fact is strictly sharper than the
iterative one, so every finding is direct evidence the qualification
pipeline bought precision.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..checks.diagnostics import Diagnostics, FixHint, PathEvidence, Severity
from ..checks.engine import CheckContext, CheckPass
from ..checks.lint import DCE_FIX, STRAIGHTEN_FIX
from ..core.hot_path_graph import HpgVertex
from ..core.translate import translate_path
from ..dataflow.framework import DataflowProblem, solve
from ..dataflow.graph_view import GraphView
from ..dataflow.lattice import UNREACHABLE
from ..dataflow.problems.available_exprs import (
    ALL,
    AvailableExpressions,
    _expr_vars,
    expression_of,
)
from ..dataflow.problems.copy_prop import CopyPropagation
from ..dataflow.problems.liveness import LiveVariables
from ..dataflow.problems.reaching_defs import ReachingDefinitions
from ..dataflow.transfer import eval_operand
from ..ir.basic_block import BasicBlock
from ..ir.instructions import Assign, Branch
from ..ir.operands import Var

LINT_HOT_DEAD_STORE = "LINT005"
LINT_HOT_CONSTANT_BRANCH = "LINT006"
LINT_HOT_REDUNDANT_EXPR = "LINT007"
LINT_HOT_INITIALIZED = "LINT008"
LINT_HOT_COPY = "LINT009"
LINT_HOT_CONSTANT_SITE = "LINT010"

PATH_LINT_CODES = (
    LINT_HOT_DEAD_STORE,
    LINT_HOT_CONSTANT_BRANCH,
    LINT_HOT_REDUNDANT_EXPR,
    LINT_HOT_INITIALIZED,
    LINT_HOT_COPY,
    LINT_HOT_CONSTANT_SITE,
)

#: Default profile-mass threshold below which path findings are dropped.
DEFAULT_MIN_MASS = 0.5

COPY_FIX = FixHint(
    transform="copy_prop",
    module="repro.opt.copy_prop",
    detail="rewrite the use to read the copied-from variable directly",
)
FOLD_FIX = FixHint(
    transform="const_fold",
    module="repro.opt.constants",
    detail="fold the site to its constant on the reduced hot-path graph",
)

Vertex = Hashable


class DefiniteAssignment(DataflowProblem):
    """Which variables are definitely assigned (forward, must).

    The complement of "maybe uninitialized": a variable in the solution at
    a point has a definition on *every* path reaching it.  Not separable
    into gen/kill bitsets worth compiling (gen-only, tiny), so it solves
    through the generic engine.
    """

    direction = "forward"

    def __init__(self, params: tuple[str, ...]) -> None:
        self.params = tuple(params)

    def top(self):
        return ALL

    def meet(self, a, b):
        if a is ALL:
            return b
        if b is ALL:
            return a
        return a & b

    def boundary(self):
        return frozenset(self.params)

    def equal(self, a, b) -> bool:
        if a is ALL or b is ALL:
            return a is b
        return a == b

    def transfer(self, vertex, block: Optional[BasicBlock], value):
        if block is None:
            return value
        current = set() if value is ALL else set(value)
        for instr in block.instrs:
            if instr.dest is not None:
                current.add(instr.dest)
        return frozenset(current)


# -- per-routine shared precomputation --------------------------------------


class _PathFacts:
    """Everything the path lints need about one traced routine, computed
    once and shared: HPG duplicates, per-copy profile mass, lazy qualified
    data-flow solutions, and the hot-path membership of each copy."""

    def __init__(self, qa) -> None:
        self.qa = qa
        self.fn = qa.function
        self.hpg = qa.hpg
        self.hview = qa.hpg.view()
        self.cview = GraphView.from_function(self.fn, qa.cfg)
        #: Profile mass (interior occurrences) per traced vertex.
        self.freq: dict[HpgVertex, int] = qa.hpg_profile.block_frequencies()
        self.dups: dict = {
            label: qa.hpg.duplicates(label) for label in self.fn.blocks
        }
        #: (hot-path id, traced vertices it touches) — for attribution.
        self.path_vertices: list[tuple[int, frozenset]] = []
        for idx, path in enumerate(qa.hot_paths):
            try:
                traced = translate_path(path, qa.hpg)
            except ValueError:
                continue
            self.path_vertices.append((idx, frozenset(traced.vertices)))
        self._solutions: dict = {}

    def block_mass(self, label) -> int:
        return sum(self.freq.get(d, 0) for d in self.dups[label])

    def mass_of(self, supporting) -> int:
        """Frequency-weighted support of a set of traced copies."""
        return sum(self.freq.get(d, 0) for d in supporting)

    def contributing_paths(self, supporting) -> tuple[int, ...]:
        """Hot-path ids whose traced path touches a supporting copy."""
        sup = set(supporting)
        return tuple(
            idx for idx, verts in self.path_vertices if verts & sup
        )

    def evidence(
        self,
        label,
        supporting,
        *,
        iterative: str,
        qualified: str,
    ) -> Optional[PathEvidence]:
        """Build the provenance payload, or None when the supporting copies
        carry no profile mass (the finding would be unranked noise)."""
        total = self.block_mass(label)
        if not total:
            return None
        mass = self.mass_of(supporting) / total
        return PathEvidence(
            mass=mass,
            hot_paths=self.contributing_paths(supporting),
            supporting=len(supporting),
            duplicates=len(self.dups[label]),
            iterative=iterative,
            qualified=qualified,
            sharper=True,
        )

    def solution(self, problem_key: str, factory, view_key: str):
        """Memoized data-flow solution (per problem x per graph).

        :class:`DefiniteAssignment` declares no gen/kill lowering, so it is
        pinned to the generic solver — an ambient ``engine_scope("compiled")``
        (the matrix's lint-parity stage) must not make it unsolvable."""
        key = (problem_key, view_key)
        if key not in self._solutions:
            view = self.hview if view_key == "hpg" else self.cview
            problem = factory()
            engine = (
                "generic" if isinstance(problem, DefiniteAssignment) else None
            )
            self._solutions[key] = solve(problem, view, engine=engine)
        return self._solutions[key]


def _emit(
    out: Diagnostics,
    code: str,
    severity: Severity,
    message: str,
    *,
    facts: _PathFacts,
    block,
    instr=None,
    hint=None,
    fix_hint=None,
    evidence: PathEvidence,
) -> None:
    out.emit(
        code,
        severity,
        message,
        function=facts.fn.name,
        block=block,
        instr=instr,
        hint=hint,
        fix_hint=fix_hint,
        path_evidence=evidence,
    )


# -- LINT005: hot-path dead stores ------------------------------------------


def _cfg_dead_stores(fn, view) -> set:
    """(label, idx) of stores the iterative liveness already proves dead
    (LINT002 territory — excluded so path findings are strictly sharper)."""
    sol = solve(LiveVariables(), view)
    dead = set()
    for label, block in fn.blocks.items():
        live = set(sol.value_in.get(label, frozenset()))
        if block.terminator is not None:
            for op in block.terminator.uses():
                if isinstance(op, Var):
                    live.add(op.name)
        for idx in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[idx]
            if instr.dest is not None:
                if instr.dest not in live and instr.is_pure:
                    dead.add((label, idx))
                live.discard(instr.dest)
            for name in instr.use_vars():
                live.add(name)
    return dead


def _dead_along_path(fn, path, occurrence: int, label, store_idx: int, dest):
    """Is the store overwritten before any read along the remainder of the
    Ball–Larus path?  ``occurrence`` indexes ``path.interior()``.  Reaching
    the end of the path without a verdict means the continuation is unknown
    — conservatively *not* dead."""
    interior = path.interior()
    pos = occurrence
    first = True
    while pos < len(interior):
        block = fn.blocks.get(interior[pos])
        if block is None:
            return False
        start = store_idx + 1 if first else 0
        for idx in range(start, len(block.instrs)):
            instr = block.instrs[idx]
            if dest in instr.use_vars():
                return False
            if instr.dest == dest:
                return True
        if block.terminator is not None:
            for op in block.terminator.uses():
                if isinstance(op, Var) and op.name == dest:
                    return False
        first = False
        pos += 1
    return False


def _check_hot_dead_stores(
    facts: _PathFacts, out: Diagnostics, min_mass: float
) -> None:
    fn = facts.fn
    qa = facts.qa
    cfg_dead = _cfg_dead_stores(fn, facts.cview)
    #: label -> interior occurrences [(hot-path id, position)].
    occurrences: dict = {}
    for path_id, path in enumerate(qa.hot_paths):
        for pos, v in enumerate(path.interior()):
            occurrences.setdefault(v, []).append((path_id, pos))
    block_freq = qa.train_profile.block_frequencies()
    for label, block in fn.blocks.items():
        occs = occurrences.get(label)
        if not occs:
            continue
        total = block_freq.get(label, 0)
        if not total:
            continue
        for idx, instr in enumerate(block.instrs):
            dest = instr.dest
            if dest is None or not instr.is_pure:
                continue
            if (label, idx) in cfg_dead:
                continue  # already LINT002 — not a path finding
            supporting_mass = 0
            supporting_ids = []
            for path_id, pos in occs:
                if _dead_along_path(
                    fn, qa.hot_paths[path_id], pos, label, idx, dest
                ):
                    supporting_mass += qa.train_profile.count(
                        qa.hot_paths[path_id]
                    )
                    supporting_ids.append(path_id)
            if not supporting_ids:
                continue
            mass = supporting_mass / total
            if mass < min_mass:
                continue
            evidence = PathEvidence(
                mass=mass,
                hot_paths=tuple(dict.fromkeys(supporting_ids)),
                supporting=len(set(supporting_ids)),
                duplicates=len(qa.hot_paths),
                iterative=f"{dest!r} is live on some CFG path",
                qualified=(
                    f"{dest!r} is overwritten before any read along the "
                    f"supporting hot paths"
                ),
                sharper=True,
            )
            _emit(
                out,
                LINT_HOT_DEAD_STORE,
                Severity.WARNING,
                f"{instr} writes {dest!r}, which hot paths overwrite "
                f"before reading",
                facts=facts,
                block=label,
                instr=idx,
                hint="the store only matters on cold paths",
                fix_hint=DCE_FIX,
                evidence=evidence,
            )


# -- LINT006: hot-path-constant branches ------------------------------------


def _check_hot_constant_branches(
    facts: _PathFacts, out: Diagnostics, min_mass: float
) -> None:
    qa = facts.qa
    baseline = qa.baseline
    hpg_wz = qa.hpg_analysis
    for label, block in facts.fn.blocks.items():
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        if not baseline.is_executable(label):
            continue
        env = baseline.output_env(label)
        if env is UNREACHABLE or isinstance(eval_operand(term.cond, env), int):
            continue  # the iterative analysis already resolves it (LINT004)
        supporting = []
        values = set()
        for dup in facts.dups[label]:
            if not hpg_wz.is_executable(dup):
                continue
            denv = hpg_wz.output_env(dup)
            if denv is UNREACHABLE:
                continue
            cond = eval_operand(term.cond, denv)
            if isinstance(cond, int):
                supporting.append(dup)
                values.add(cond)
        if not supporting:
            continue
        evidence = facts.evidence(
            label,
            supporting,
            iterative=f"condition {term.cond} is unresolved iteratively",
            qualified=(
                "condition is a known constant on the supporting hot-path "
                "copies"
            ),
        )
        if evidence is None or evidence.mass < min_mass:
            continue
        shown = ",".join(str(v) for v in sorted(values))
        _emit(
            out,
            LINT_HOT_CONSTANT_BRANCH,
            Severity.WARNING,
            f"branch condition {term.cond} is constant ({shown}) on hot "
            f"paths; straightening candidate",
            facts=facts,
            block=label,
            hint="qualify then straighten the hot legs",
            fix_hint=STRAIGHTEN_FIX,
            evidence=evidence,
        )


# -- LINT007: redundant recomputation on hot paths --------------------------


def _block_avail_schedule(block) -> list[tuple[int, bool, object]]:
    """One forward scan decomposing in-block availability.

    For each instruction index that computes an expression, yields
    ``(idx, local, from_in)``: ``local`` means the expression was
    generated earlier in the block and survives to ``idx`` regardless of
    the in-set; ``from_in`` is the expression itself when availability at
    ``idx`` reduces to ``from_in in in_set`` (no operand written before
    ``idx``), else None.  This makes evaluating availability against any
    number of in-sets (the CFG entry plus every hot dup) a membership
    test per candidate instead of a transfer replay per in-set."""
    schedule = []
    gen_live: set = set()
    killed: set[str] = set()
    vars_of: dict = {}
    for idx, instr in enumerate(block.instrs):
        expr = expression_of(instr)
        if expr is not None:
            ev = vars_of.get(expr)
            if ev is None:
                ev = vars_of[expr] = _expr_vars(expr)
            local = expr in gen_live
            from_in = (
                None
                if local or any(v in killed for v in ev)
                else expr
            )
            schedule.append((idx, local, from_in))
            gen_live.add(expr)
        if instr.dest is not None:
            dest = instr.dest
            killed.add(dest)
            if gen_live:
                gen_live = {
                    e for e in gen_live if dest not in vars_of[e]
                }
    return schedule


def _check_hot_redundant_exprs(
    facts: _PathFacts, out: Diagnostics, min_mass: float
) -> None:
    csol = facts.solution("avail", AvailableExpressions, "cfg")
    hsol = facts.solution("avail", AvailableExpressions, "hpg")
    for label, block in facts.fn.blocks.items():
        cfg_in = csol.value_in.get(label, ALL)
        if cfg_in is ALL:
            continue  # unreachable iteratively; nothing to sharpen
        # A candidate is redundant on some hot copy but not iteratively:
        # locally-available sites are redundant everywhere, and sites
        # whose operands are overwritten earlier in the block can never
        # inherit availability from any in-set.
        candidates = [
            (idx, expr)
            for idx, local, expr in _block_avail_schedule(block)
            if not local and expr is not None and expr not in cfg_in
        ]
        if not candidates:
            continue
        dup_ins = [
            (dup, hin)
            for dup in facts.dups[label]
            if (hin := hsol.value_in.get(dup, ALL)) is not ALL
        ]
        for idx, expr in candidates:
            instr = block.instrs[idx]
            supporting = [dup for dup, hin in dup_ins if expr in hin]
            if not supporting:
                continue
            evidence = facts.evidence(
                label,
                supporting,
                iterative="expression is not available on all CFG paths",
                qualified=(
                    "expression is already computed on every path into the "
                    "supporting hot copies"
                ),
            )
            if evidence is None or evidence.mass < min_mass:
                continue
            _emit(
                out,
                LINT_HOT_REDUNDANT_EXPR,
                Severity.WARNING,
                f"{instr} recomputes a value already available on hot "
                f"paths",
                facts=facts,
                block=label,
                instr=idx,
                hint="hoist or reuse the prior computation on the hot legs",
                evidence=evidence,
            )


# -- LINT008: maybe-uninitialized uses initialized on hot paths -------------


def _check_hot_initialized(
    facts: _PathFacts, out: Diagnostics, min_mass: float
) -> None:
    fn = facts.fn
    params = fn.params
    csol = facts.solution("definite", lambda: DefiniteAssignment(params), "cfg")
    hsol = facts.solution("definite", lambda: DefiniteAssignment(params), "hpg")
    rsol = facts.solution(
        "reaching", lambda: ReachingDefinitions(params, facts.cview.cfg.entry), "cfg"
    )
    for label, block in fn.blocks.items():
        cfg_in = csol.value_in.get(label, ALL)
        if cfg_in is ALL:
            continue
        reaching = {d[2] for d in rsol.value_in.get(label, frozenset())}
        dup_ins = [
            (dup, hin)
            for dup in facts.dups[label]
            if (hin := hsol.value_in.get(dup, ALL)) is not ALL
        ]
        # Definite assignment before an instruction splits into the block
        # entry set (cfg_in / each dup's hin) plus ``local``, the dests
        # written earlier in the block — the local part is the same for
        # every in-set, so each candidate costs one lookup per dup.
        local: set = set()
        for idx, instr in enumerate(block.instrs):
            for name in sorted(set(instr.use_vars())):
                if name in cfg_in or name in local:
                    continue  # definitely assigned — nothing to report
                if name not in reaching:
                    continue  # no def reaches at all — that's LINT001
                supporting = [dup for dup, hin in dup_ins if name in hin]
                if not supporting:
                    continue
                evidence = facts.evidence(
                    label,
                    supporting,
                    iterative=(
                        f"{name!r} may be uninitialized on some CFG path"
                    ),
                    qualified=(
                        f"{name!r} is definitely assigned on the supporting "
                        f"hot copies"
                    ),
                )
                if evidence is None or evidence.mass < min_mass:
                    continue
                _emit(
                    out,
                    LINT_HOT_INITIALIZED,
                    Severity.INFO,
                    f"{instr} reads {name!r}, maybe-uninitialized "
                    f"iteratively but initialized on all hot paths",
                    facts=facts,
                    block=label,
                    instr=idx,
                    hint="cold-path-only hazard; demoted by path evidence",
                    evidence=evidence,
                )
            if instr.dest is not None:
                local.add(instr.dest)


# -- LINT009: copy-propagation opportunities on hot paths -------------------


def _check_hot_copies(
    facts: _PathFacts, out: Diagnostics, min_mass: float
) -> None:
    csol = facts.solution("copies", CopyPropagation, "cfg")
    hsol = facts.solution("copies", CopyPropagation, "hpg")
    for label, block in facts.fn.blocks.items():
        cfg_in = csol.value_in.get(label, ALL)
        if cfg_in is ALL:
            continue
        cfg_by_dst: dict = {}
        for dst, src in cfg_in:
            cfg_by_dst.setdefault(dst, set()).add(src)
        dup_by_dst = []
        for dup in facts.dups[label]:
            hin = hsol.value_in.get(dup, ALL)
            if hin is ALL:
                continue
            by_dst: dict = {}
            for dst, src in hin:
                by_dst.setdefault(dst, set()).add(src)
            dup_by_dst.append((dup, by_dst))
        # The copy set before an instruction splits into copies generated
        # in the block (``local_cur``, replayed once — identical for every
        # in-set) and in-set pairs whose dst/src escaped every write so
        # far (``killed``) — so each candidate costs lookups, not a
        # transfer replay per dup.
        killed: set = set()
        local_cur: set = set()
        for idx, instr in enumerate(block.instrs):
            uses = sorted(set(instr.use_vars()))
            reported: set = set()
            for name in uses:
                if any(c[0] == name for c in local_cur):
                    continue  # iterative copy-prop already handles it
                if name not in killed and any(
                    src not in killed for src in cfg_by_dst.get(name, ())
                ):
                    continue  # iterative copy-prop already handles it
                sources: dict = {}
                if name not in killed:
                    for dup, by_dst in dup_by_dst:
                        for src in by_dst.get(name, ()):
                            if src not in killed:
                                sources.setdefault(src, []).append(dup)
                for src in sorted(sources):
                    if (name, src) in reported:
                        continue
                    supporting = sources[src]
                    evidence = facts.evidence(
                        label,
                        supporting,
                        iterative=(
                            f"{name!r} is not a known copy on all CFG paths"
                        ),
                        qualified=(
                            f"{name!r} equals {src!r} on the supporting hot "
                            f"copies"
                        ),
                    )
                    if evidence is None or evidence.mass < min_mass:
                        continue
                    reported.add((name, src))
                    _emit(
                        out,
                        LINT_HOT_COPY,
                        Severity.INFO,
                        f"{instr} reads {name!r}, a copy of {src!r} along "
                        f"hot paths",
                        facts=facts,
                        block=label,
                        instr=idx,
                        hint="propagate the copy on the qualified graph",
                        fix_hint=COPY_FIX,
                        evidence=evidence,
                    )
            # CopyPropagation.transfer per instruction: kill, then gen.
            if instr.dest is not None:
                killed.add(instr.dest)
                if local_cur:
                    local_cur = {c for c in local_cur if instr.dest not in c}
            if (
                isinstance(instr, Assign)
                and isinstance(instr.src, Var)
                and instr.dest != instr.src.name
            ):
                local_cur.add((instr.dest, instr.src.name))


# -- LINT010: qualified constant sharpening ---------------------------------


def _check_hot_constant_sites(
    facts: _PathFacts, out: Diagnostics, min_mass: float
) -> None:
    qa = facts.qa
    baseline = qa.baseline
    hpg_wz = qa.hpg_analysis
    for label, block in facts.fn.blocks.items():
        base_pure = baseline.pure_constant_sites(label)
        sites: dict = {}
        for dup in facts.dups[label]:
            if not hpg_wz.is_executable(dup):
                continue
            for idx, value in hpg_wz.pure_constant_sites(dup).items():
                if idx in base_pure:
                    continue  # the iterative analysis already folds it
                sites.setdefault(idx, {}).setdefault(value, []).append(dup)
        for idx in sorted(sites):
            supporting = [
                dup for dups in sites[idx].values() for dup in dups
            ]
            values = sorted(sites[idx])
            evidence = facts.evidence(
                label,
                supporting,
                iterative="site is non-constant in the iterative solution",
                qualified=(
                    "site evaluates to a known constant on the supporting "
                    "hot copies"
                ),
            )
            if evidence is None or evidence.mass < min_mass:
                continue
            shown = ",".join(str(v) for v in values)
            _emit(
                out,
                LINT_HOT_CONSTANT_SITE,
                Severity.INFO,
                f"{block.instrs[idx]} is constant ({shown}) on hot paths "
                f"but not iteratively",
                facts=facts,
                block=label,
                instr=idx,
                hint="the qualified optimizer can fold this site",
                fix_hint=FOLD_FIX,
                evidence=evidence,
            )


# -- the pass ----------------------------------------------------------------


def path_lint_qualified(
    qualified, out: Optional[Diagnostics] = None, min_mass: float = DEFAULT_MIN_MASS
) -> Diagnostics:
    """Run every path lint over per-routine qualified analyses."""
    if out is None:
        out = Diagnostics()
    for routine in sorted(qualified):
        qa = qualified[routine]
        if not qa.traced:
            continue
        facts = _PathFacts(qa)
        _check_hot_dead_stores(facts, out, min_mass)
        _check_hot_constant_branches(facts, out, min_mass)
        _check_hot_redundant_exprs(facts, out, min_mass)
        _check_hot_initialized(facts, out, min_mass)
        _check_hot_copies(facts, out, min_mass)
        _check_hot_constant_sites(facts, out, min_mass)
    return out


class PathLintPass(CheckPass):
    """Profile-qualified lints over the hot-path graph (``LINT005``–``010``).

    Deliberately *not* registered in the stage-pass registries: it runs
    only through the analyzer entry points (``repro lint``, ``/v1/lint``),
    keeping ``repro check`` output stable.
    """

    name = "path_lint"
    codes = PATH_LINT_CODES
    requires = ("qualified",)

    def __init__(self, min_mass: float = DEFAULT_MIN_MASS) -> None:
        self.min_mass = min_mass

    def run(self, ctx: CheckContext, out: Diagnostics) -> None:
        path_lint_qualified(ctx.qualified, out=out, min_mass=self.min_mass)


__all__ = [
    "DefiniteAssignment",
    "PathLintPass",
    "path_lint_qualified",
    "PATH_LINT_CODES",
    "DEFAULT_MIN_MASS",
    "LINT_HOT_DEAD_STORE",
    "LINT_HOT_CONSTANT_BRANCH",
    "LINT_HOT_REDUNDANT_EXPR",
    "LINT_HOT_INITIALIZED",
    "LINT_HOT_COPY",
    "LINT_HOT_CONSTANT_SITE",
    "COPY_FIX",
    "FOLD_FIX",
]
