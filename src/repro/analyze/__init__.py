"""The profile-qualified static analyzer (``repro lint`` / ``/v1/lint``).

Layers:

* :mod:`~repro.analyze.passes` — the path-aware lint family
  (``LINT005``–``010``) spending the hot-path-graph facts;
* :mod:`~repro.analyze.runner` — compute/rank entry points shared by the
  CLI, the service daemon, the drivers, and the matrix suite;
* :mod:`~repro.analyze.report` — ranked text, JSON, and SARIF 2.1.0;
* :mod:`~repro.analyze.baseline` — content-addressed suppression so CI
  fails only on *new* findings.

See ``docs/ANALYZER.md`` for usage and ``docs/CHECKS.md`` for the code
registry.
"""

from .baseline import (
    Baseline,
    baseline_of,
    finding_fingerprint,
    partition,
)
from .passes import (
    DEFAULT_MIN_MASS,
    PATH_LINT_CODES,
    DefiniteAssignment,
    PathLintPass,
    path_lint_qualified,
)
from .report import RULES, render_text, to_json_payload, to_sarif, write_sarif
from .runner import (
    compute_findings,
    compute_function_findings,
    findings_under,
    lint_program,
    lint_target,
    pair_with_target,
    rank,
)

__all__ = [
    "Baseline",
    "DEFAULT_MIN_MASS",
    "DefiniteAssignment",
    "PATH_LINT_CODES",
    "PathLintPass",
    "RULES",
    "baseline_of",
    "compute_findings",
    "compute_function_findings",
    "finding_fingerprint",
    "findings_under",
    "lint_program",
    "lint_target",
    "pair_with_target",
    "partition",
    "path_lint_qualified",
    "rank",
    "render_text",
    "to_json_payload",
    "to_sarif",
    "write_sarif",
]
