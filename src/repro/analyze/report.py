"""Analyzer reporters: ranked text, JSON, and SARIF 2.1.0.

The SARIF export targets the minimal static-analysis interchange shape —
one run, a tool driver with the full ``LINT*`` rule registry, one result
per finding with logical locations (this analyzer works on MiniC IR, not
source files), versioned partial fingerprints shared with the baseline
layer, and ``suppressions`` entries for baselined findings — so output
drops into any SARIF viewer or upload endpoint.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional, Sequence

from ..checks.diagnostics import Diagnostic, Severity
from .baseline import FINGERPRINT_KEY, Baseline, finding_fingerprint, partition

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"
TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/repro/repro"

#: Rule registry: every code the analyzer can emit, in registry order.
RULES: tuple[dict, ...] = (
    {
        "id": "LINT001",
        "name": "UseBeforeDefinition",
        "shortDescription": {
            "text": "A variable is read where no definition reaches."
        },
        "defaultConfiguration": {"level": "warning"},
    },
    {
        "id": "LINT002",
        "name": "DeadStore",
        "shortDescription": {
            "text": "A pure instruction writes a value that is never read."
        },
        "defaultConfiguration": {"level": "warning"},
    },
    {
        "id": "LINT003",
        "name": "UnreachableUnderConstants",
        "shortDescription": {
            "text": (
                "A structurally reachable block that constant propagation "
                "proves no executable path enters."
            )
        },
        "defaultConfiguration": {"level": "warning"},
    },
    {
        "id": "LINT004",
        "name": "ConstantBranch",
        "shortDescription": {
            "text": "An executable branch whose condition is a constant."
        },
        "defaultConfiguration": {"level": "warning"},
    },
    {
        "id": "LINT005",
        "name": "HotPathDeadStore",
        "shortDescription": {
            "text": (
                "A store that is live iteratively but overwritten before "
                "any read along hot paths carrying the profile mass."
            )
        },
        "defaultConfiguration": {"level": "warning"},
    },
    {
        "id": "LINT006",
        "name": "HotPathConstantBranch",
        "shortDescription": {
            "text": (
                "A branch the iterative propagator cannot resolve, but "
                "whose condition is constant on the hot-path copies — a "
                "straightening candidate."
            )
        },
        "defaultConfiguration": {"level": "warning"},
    },
    {
        "id": "LINT007",
        "name": "HotPathRedundantExpression",
        "shortDescription": {
            "text": (
                "An expression recomputed although it is already available "
                "on every path into the hot-path copies."
            )
        },
        "defaultConfiguration": {"level": "warning"},
    },
    {
        "id": "LINT008",
        "name": "HotPathInitialized",
        "shortDescription": {
            "text": (
                "A maybe-uninitialized use that the qualified analysis "
                "proves initialized on all hot paths (severity demoted)."
            )
        },
        "defaultConfiguration": {"level": "note"},
    },
    {
        "id": "LINT009",
        "name": "HotPathCopy",
        "shortDescription": {
            "text": (
                "A variable read that is a known copy of another variable "
                "along hot paths but not iteratively."
            )
        },
        "defaultConfiguration": {"level": "note"},
    },
    {
        "id": "LINT010",
        "name": "QualifiedConstantSharpening",
        "shortDescription": {
            "text": (
                "A pure site non-constant in the iterative solution but "
                "constant on hot-path copies carrying the profile mass."
            )
        },
        "defaultConfiguration": {"level": "note"},
    },
)

_RULE_INDEX = {rule["id"]: idx for idx, rule in enumerate(RULES)}

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _result_properties(target: str, diag: Diagnostic) -> dict:
    properties: dict = {"target": target}
    if diag.hint:
        properties["hint"] = diag.hint
    if diag.fix_hint is not None:
        properties["fix"] = diag.fix_hint.to_dict()
    if diag.path_evidence is not None:
        properties["pathEvidence"] = diag.path_evidence.to_dict()
    return properties


def to_sarif(
    findings: Sequence[tuple[str, Diagnostic]],
    baseline: Optional[Baseline] = None,
) -> dict:
    """A SARIF 2.1.0 log for ``(target, finding)`` pairs.

    Baselined findings are *included* with a ``suppressions`` entry (SARIF's
    model for accepted findings) rather than dropped, so viewers show the
    full picture.
    """
    results = []
    for target, diag in findings:
        fingerprint = finding_fingerprint(target, diag)
        result: dict = {
            "ruleId": diag.code,
            "level": _LEVELS[diag.severity],
            "message": {"text": diag.message},
            "locations": [
                {
                    "logicalLocations": [
                        {
                            "fullyQualifiedName": (
                                f"{target}::{diag.location()}"
                                if diag.location()
                                else target
                            ),
                            "kind": "function",
                        }
                    ]
                }
            ],
            "partialFingerprints": {FINGERPRINT_KEY: fingerprint},
            "properties": _result_properties(target, diag),
        }
        if diag.code in _RULE_INDEX:
            result["ruleIndex"] = _RULE_INDEX[diag.code]
        if baseline is not None and fingerprint in baseline:
            suppression: dict = {"kind": "external"}
            justification = baseline.justification(fingerprint)
            if justification:
                suppression["justification"] = justification
            result["suppressions"] = [suppression]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": list(RULES),
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    path: str,
    findings: Sequence[tuple[str, Diagnostic]],
    baseline: Optional[Baseline] = None,
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_sarif(findings, baseline), fh, indent=2)
        fh.write("\n")


def render_text(
    findings: Sequence[tuple[str, Diagnostic]],
    baseline: Optional[Baseline] = None,
    limit: Optional[int] = None,
) -> str:
    """Ranked human report: one line per finding, suppressed ones marked."""
    new, suppressed = partition(findings, baseline)
    lines = []
    shown = findings if limit is None else findings[:limit]
    suppressed_set = {id(d) for _, d in suppressed}
    for target, diag in shown:
        marker = " [baselined]" if id(diag) in suppressed_set else ""
        lines.append(f"{target} :: {diag.format()}{marker}")
    if limit is not None and len(findings) > limit:
        lines.append(f"... and {len(findings) - limit} more")
    lines.append(
        f"{len(findings)} finding(s): {len(new)} new, "
        f"{len(suppressed)} baselined"
    )
    return "\n".join(lines)


def to_json_payload(
    findings: Sequence[tuple[str, Diagnostic]],
    baseline: Optional[Baseline] = None,
) -> dict:
    """The ``repro lint --json`` payload."""
    new, suppressed = partition(findings, baseline)
    suppressed_set = {id(d) for _, d in suppressed}
    records = []
    for target, diag in findings:
        record = diag.to_dict()
        record["target"] = target
        record["fingerprint"] = finding_fingerprint(target, diag)
        record["suppressed"] = id(diag) in suppressed_set
        records.append(record)
    counts = {s.label: 0 for s in Severity}
    for _, diag in findings:
        counts[diag.severity.label] += 1
    return {
        "findings": records,
        "counts": counts,
        "new": len(new),
        "suppressed": len(suppressed),
    }


__all__ = [
    "RULES",
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "TOOL_NAME",
    "render_text",
    "to_json_payload",
    "to_sarif",
    "write_sarif",
]
