"""Content-addressed finding baselines: suppress the known, fail the new.

A baseline file records the *fingerprints* of accepted findings, so CI can
run ``repro lint --fail-on-new --baseline lint-baseline.json`` and fail only
when a finding appears that is not already on record.  Fingerprints hash
the finding's stable identity — target, code, location, message — through
the same canonical-JSON digest as the artifact cache, so they are identical
across runs, across ``--jobs`` values, and across daemon vs. CLI execution
(the analyzer is deterministic end to end).

The file format is deliberately reviewable::

    {
      "schema": 1,
      "findings": {
        "<fingerprint>": {
          "target": "...", "code": "LINT00x", "location": "...",
          "message": "...", "justification": "..."
        }
      }
    }

``justification`` is free-form and written by whoever accepts the finding.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from ..checks.diagnostics import Diagnostic
from ..pipeline.cache import content_key

BASELINE_SCHEMA = 1

#: partialFingerprints key used in SARIF output (versioned: bump when the
#: fingerprint recipe changes).
FINGERPRINT_KEY = "reproLint/v1"


def finding_fingerprint(target: str, diag: Diagnostic) -> str:
    """Stable content digest of one finding's identity.

    Includes the target so the same defect in two workloads baselines
    independently; excludes severity, hints, and path evidence so cosmetic
    re-wordings of provenance do not churn baselines.
    """
    return content_key(
        "lint-finding",
        target,
        diag.code,
        diag.function,
        diag.block,
        diag.instr,
        diag.message,
    )


@dataclass
class Baseline:
    """An accepted-findings ledger keyed by fingerprint."""

    findings: dict[str, dict] = field(default_factory=dict)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.findings

    def __len__(self) -> int:
        return len(self.findings)

    def justification(self, fingerprint: str) -> str:
        entry = self.findings.get(fingerprint, {})
        return entry.get("justification", "")

    def record(
        self, target: str, diag: Diagnostic, justification: str = ""
    ) -> str:
        fp = finding_fingerprint(target, diag)
        self.findings[fp] = {
            "target": target,
            "code": diag.code,
            "location": diag.location(),
            "message": diag.message,
            "justification": justification,
        }
        return fp

    def to_dict(self) -> dict:
        return {
            "schema": BASELINE_SCHEMA,
            "findings": {
                fp: self.findings[fp] for fp in sorted(self.findings)
            },
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "Baseline":
        schema = d.get("schema")
        if schema != BASELINE_SCHEMA:
            raise ValueError(f"unsupported baseline schema {schema!r}")
        findings = d.get("findings", {})
        if not isinstance(findings, dict):
            raise ValueError("baseline 'findings' must be an object")
        return cls(findings=dict(findings))

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def save(self, path: str) -> None:
        """Atomic write (mkstemp + replace), matching the artifact cache."""
        directory = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def partition(
    findings: Iterable[tuple[str, Diagnostic]],
    baseline: Optional[Baseline],
) -> tuple[list[tuple[str, Diagnostic]], list[tuple[str, Diagnostic]]]:
    """Split ``(target, finding)`` pairs into (new, suppressed)."""
    new: list[tuple[str, Diagnostic]] = []
    suppressed: list[tuple[str, Diagnostic]] = []
    for target, diag in findings:
        if baseline is not None and finding_fingerprint(target, diag) in baseline:
            suppressed.append((target, diag))
        else:
            new.append((target, diag))
    return new, suppressed


def baseline_of(
    findings: Iterable[tuple[str, Diagnostic]], justification: str = ""
) -> Baseline:
    """A fresh baseline accepting every given finding."""
    baseline = Baseline()
    for target, diag in findings:
        baseline.record(target, diag, justification)
    return baseline


__all__ = [
    "BASELINE_SCHEMA",
    "FINGERPRINT_KEY",
    "Baseline",
    "baseline_of",
    "finding_fingerprint",
    "partition",
]
