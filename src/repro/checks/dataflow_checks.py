"""Data-flow soundness checks (diagnostic family ``DF``).

The conditional constant propagator is a worklist solver; these checks
validate its *answers* rather than its steps:

* ``DF001`` — post-fixpoint residual: for every executable edge ``u -> w``
  the solution already absorbs one more propagation step — ``u`` is
  reachable, the edge exists, and ``env_in[w] ⊑ transfer(u)`` pointwise.
  A genuine fixpoint has zero residual, so any violation is an ERROR;
* ``DF002`` — qualified-analysis conservation (the soundness half of
  Theorem 1): folding a hot-path-graph (or reduced-graph) solution back
  onto the original CFG — meeting the environments of all duplicates of a
  vertex — can only *refine* the baseline.  Formally
  ``baseline.env_in[v] ⊑ ⨅ {hpg.env_in[(v,q)]}`` for every original
  vertex, because the traced graph only separates paths the baseline
  merges;
* ``DF003`` — transfer monotonicity spot checks: for sampled blocks and
  deterministic environment pairs ``a ⊑ b``, confirm
  ``transfer(block, a) ⊑ transfer(block, b)``.  The framework's
  termination and the meaning of ``DF001`` both rest on this.
"""

from __future__ import annotations

from typing import Optional

from ..dataflow.lattice import (
    BOT,
    ConstEnv,
    UNREACHABLE,
    leq_env,
    leq_flat,
    meet_env,
)
from ..dataflow.transfer import transfer_block
from ..dataflow.wegman_zadek import CondConstResult
from ..ir.function import Function
from ..ir.operands import Var
from .diagnostics import Diagnostics, Severity

DF_RESIDUAL = "DF001"
DF_PROJECTION_UNSOUND = "DF002"
DF_TRANSFER_NOT_MONOTONE = "DF003"

#: DF003 samples at most this many blocks per routine ...
_MAX_BLOCKS_SAMPLED = 8
#: ... and at most this many variables per block.
_MAX_VARS_PER_BLOCK = 4


def check_solution(
    routine: str,
    result: CondConstResult,
    out: Optional[Diagnostics] = None,
    graph: str = "cfg",
) -> Diagnostics:
    """``DF001``: the solution is a post-fixpoint of one propagation step."""
    if out is None:
        out = Diagnostics()
    where = "" if graph == "cfg" else f" on the {graph}"
    cfg = result.view.cfg

    def err(message: str, *, block=None, hint=None):
        out.emit(
            DF_RESIDUAL,
            Severity.ERROR,
            message + where,
            function=routine,
            block=block,
            hint=hint,
        )

    if not result.is_executable(cfg.entry):
        err(f"entry {cfg.entry} is not executable", block=cfg.entry)
    for u, w in sorted(result.executable_edges, key=str):
        if not cfg.has_edge(u, w):
            err(
                f"executable edge {u}->{w} is not a graph edge",
                block=u,
            )
            continue
        if not result.is_executable(u):
            err(
                f"edge {u}->{w} is executable but its source is not",
                block=u,
            )
            continue
        if not leq_env(result.input_env(w), result.output_env(u)):
            err(
                f"residual propagation step at {u}->{w}: env_in[{w}] is "
                f"not below transfer({u})",
                block=u,
                hint="the worklist solver stopped before reaching a "
                "fixpoint, or a cached solution was corrupted",
            )
    return out


def check_projection(
    routine: str,
    baseline: CondConstResult,
    traced_result: CondConstResult,
    graph,
    out: Optional[Diagnostics] = None,
    label: str = "hot-path graph",
) -> Diagnostics:
    """``DF002``: the traced solution, folded onto the original CFG, refines
    the baseline (Theorem 1's conservation direction)."""
    if out is None:
        out = Diagnostics()
    by_original: dict = {}
    for v in graph.cfg.vertices:
        env = traced_result.input_env(v)
        prev = by_original.get(v[0], UNREACHABLE)
        by_original[v[0]] = meet_env(prev, env)
    for orig in baseline.view.cfg.vertices:
        base_env = baseline.input_env(orig)
        projected = by_original.get(orig, UNREACHABLE)
        if not leq_env(base_env, projected):
            if base_env is UNREACHABLE or projected is UNREACHABLE:
                bad = ["<reachability>"]
            else:
                names = {n for n, _ in base_env.items()}
                names |= {n for n, _ in projected.items()}
                bad = sorted(
                    n
                    for n in names
                    if not leq_flat(base_env.get(n), projected.get(n))
                )
            out.emit(
                DF_PROJECTION_UNSOUND,
                Severity.ERROR,
                f"{label} solution projected onto {orig} does not refine "
                f"the baseline (vars {bad!r})",
                function=routine,
                block=orig,
                hint="the qualified analysis lost information the baseline "
                "had: Theorem 1's conservation is violated",
            )
    return out


def _sample_vars(block) -> list:
    names: list = []
    for instr in block.instrs:
        if instr.dest is not None and instr.dest not in names:
            names.append(instr.dest)
        for name in instr.use_vars():
            if name not in names:
                names.append(name)
    if block.terminator is not None:
        for op in block.terminator.uses():
            if isinstance(op, Var) and op.name not in names:
                names.append(op.name)
    return names[:_MAX_VARS_PER_BLOCK]


def check_monotonicity(
    routine: str,
    fn: Function,
    out: Optional[Diagnostics] = None,
) -> Diagnostics:
    """``DF003``: spot-check ``a ⊑ b  ⇒  transfer(a) ⊑ transfer(b)`` on
    deterministic environment pairs built from each block's own variables."""
    if out is None:
        out = Diagnostics()
    for label, block in list(fn.blocks.items())[:_MAX_BLOCKS_SAMPLED]:
        names = _sample_vars(block)
        lo = ConstEnv({n: BOT for n in names})
        hi = ConstEnv()  # everything TOP
        pairs = [(lo, hi)]
        if names:
            mid = ConstEnv({names[0]: 1})
            pairs += [(lo, mid), (mid, hi)]
        for a, b in pairs:
            if not a.leq(b):  # pragma: no cover - pairs are ordered by design
                continue
            ta, tb = transfer_block(block, a), transfer_block(block, b)
            if not ta.leq(tb):
                out.emit(
                    DF_TRANSFER_NOT_MONOTONE,
                    Severity.ERROR,
                    f"transfer of block {label} is not monotone: "
                    f"{a!r} ⊑ {b!r} but {ta!r} ⋢ {tb!r}",
                    function=routine,
                    block=label,
                    hint="a non-monotone transfer breaks both termination "
                    "and the fixpoint's meaning",
                )
    return out


def check_dataflow(routine: str, qa, out: Optional[Diagnostics] = None) -> Diagnostics:
    """All DF checks for one routine's :class:`QualifiedAnalysis`."""
    if out is None:
        out = Diagnostics()
    check_solution(routine, qa.baseline, out=out)
    if qa.hpg_analysis is not None:
        check_solution(routine, qa.hpg_analysis, out=out, graph="hot-path graph")
        check_projection(
            routine, qa.baseline, qa.hpg_analysis, qa.hpg, out=out,
            label="hot-path graph",
        )
    if qa.reduced_analysis is not None and qa.reduced is not None:
        check_solution(routine, qa.reduced_analysis, out=out, graph="reduced graph")
        check_projection(
            routine, qa.baseline, qa.reduced_analysis, qa.reduced, out=out,
            label="reduced graph",
        )
    check_monotonicity(routine, qa.function, out=out)
    return out


__all__ = [
    "check_solution",
    "check_projection",
    "check_monotonicity",
    "check_dataflow",
    "DF_RESIDUAL",
    "DF_PROJECTION_UNSOUND",
    "DF_TRANSFER_NOT_MONOTONE",
]
