"""The self-verifying analysis layer: invariant checkers and IR lint passes.

This package encodes the paper's structural theorems as executable checks
(see ``docs/CHECKS.md`` for the diagnostic-code registry):

* :mod:`~repro.checks.ir_checks` — IR/CFG well-formedness (``IR*``);
* :mod:`~repro.checks.profile_checks` — Ball–Larus flow conservation
  (``PROF*``, Kirchhoff + path-sum identities);
* :mod:`~repro.checks.automaton_checks` — Theorem 2 failure-function shape
  (``AUT*``);
* :mod:`~repro.checks.hpg_checks` — hot-path-graph projection and Lemma 1–2
  profile carry-over (``HPG*``);
* :mod:`~repro.checks.dataflow_checks` — post-fixpoint residual, projection
  precision, transfer monotonicity (``DF*``);
* :mod:`~repro.checks.lint` — dataflow-powered IR lints (``LINT*``).

Findings are :class:`Diagnostic` records with collect-all semantics
(:mod:`~repro.checks.diagnostics`); passes run through the instrumented
:func:`run_passes` framework (:mod:`~repro.checks.engine`).  Pipeline
wiring — the null-object :class:`PipelineChecker` installed on workload
runs and the ``repro check`` CLI entry points — lives in
:mod:`repro.checks.runner` (imported lazily to keep this package importable
from :mod:`repro.ir` without cycles).
"""

from .diagnostics import Diagnostic, Diagnostics, FixHint, PathEvidence, Severity
from .engine import CheckContext, CheckPass, run_passes
from .ir_checks import check_function_ir, check_module_ir

__all__ = [
    "CheckContext",
    "CheckPass",
    "Diagnostic",
    "Diagnostics",
    "FixHint",
    "PathEvidence",
    "Severity",
    "check_function_ir",
    "check_module_ir",
    "run_passes",
]
