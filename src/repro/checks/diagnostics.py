"""Structured diagnostics: the currency of the checker layer.

Every checker and lint pass reports findings as :class:`Diagnostic` records
collected into a :class:`Diagnostics` sink — *collect-all* semantics, unlike
the historical raise-on-first :class:`~repro.ir.validate.ValidationError`
path (which is now a thin wrapper over these records).

A diagnostic carries a stable machine-readable ``code`` (see
``docs/CHECKS.md`` for the full registry and the paper theorem/lemma each
code encodes), a :class:`Severity`, a location (function / block / instruction
index), a human message, and an optional fix hint.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from enum import IntEnum
from typing import Iterable, Iterator, Optional


class Severity(IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class FixHint:
    """A machine-readable pointer at the transformation that resolves a
    finding (e.g. the ``opt/straighten.py`` pass for a constant branch).

    Frozen and scalar-only so :class:`Diagnostic` stays hashable — findings
    are deduplicated through a ``set`` when merged across pool workers.
    """

    #: Transformation name (``straighten``, ``dce``, ``copy_prop``, ...).
    transform: str
    #: Dotted module implementing the transformation.
    module: str
    #: One-line description of what applying it would do here.
    detail: str = ""

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "FixHint":
        return cls(
            transform=d["transform"],
            module=d["module"],
            detail=d.get("detail", ""),
        )


@dataclass(frozen=True)
class PathEvidence:
    """Profile-mass provenance for a path-qualified finding.

    Attached by the ``LINT005``–``LINT010`` analyzer passes: how much of the
    training profile's mass flows through the hot-path-graph duplicates that
    support the finding, which hot paths contribute, and what the iterative
    (MFP) versus qualified analyses each concluded — the paper's Theorem-1
    sharpening delta, visible in a diagnostic.
    """

    #: Fraction of the block's profile mass on the supporting duplicates.
    mass: float
    #: Indices (into the routine's hot-path list) of contributing paths.
    hot_paths: tuple[int, ...] = ()
    #: Supporting hot-path-graph duplicates of the block.
    supporting: int = 0
    #: Total hot-path-graph duplicates of the block.
    duplicates: int = 0
    #: What the iterative (whole-CFG) analysis concluded at this site.
    iterative: str = ""
    #: What the path-qualified analysis concluded on the supporting copies.
    qualified: str = ""
    #: True when the qualified fact is strictly sharper than the iterative
    #: one (the finding exists *only* because of path qualification).
    sharper: bool = False

    def to_dict(self) -> dict:
        d = asdict(self)
        d["hot_paths"] = list(self.hot_paths)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "PathEvidence":
        return cls(
            mass=float(d["mass"]),
            hot_paths=tuple(int(i) for i in d.get("hot_paths", ())),
            supporting=int(d.get("supporting", 0)),
            duplicates=int(d.get("duplicates", 0)),
            iterative=d.get("iterative", ""),
            qualified=d.get("qualified", ""),
            sharper=bool(d.get("sharper", False)),
        )


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a checker or lint pass."""

    code: str
    severity: Severity
    message: str
    #: Routine the finding is located in (None for module-level findings).
    function: Optional[str] = None
    #: Block label or (stringified) graph vertex, when known.
    block: Optional[str] = None
    #: Instruction index within the block, when known.
    instr: Optional[int] = None
    #: A short suggestion for fixing the finding.
    hint: Optional[str] = None
    #: Machine-readable fix transformation, when one applies.
    fix_hint: Optional[FixHint] = None
    #: Profile-mass provenance (path-qualified analyzer findings only).
    path_evidence: Optional[PathEvidence] = None

    @property
    def mass(self) -> Optional[float]:
        """Profile-mass fraction supporting this finding (ranking key)."""
        return self.path_evidence.mass if self.path_evidence else None

    def location(self) -> str:
        """``function:block:instr`` with absent parts omitted."""
        parts = [p for p in (self.function, self.block) if p]
        if self.instr is not None:
            parts.append(str(self.instr))
        return ":".join(parts)

    def format(self) -> str:
        """One display line: ``error IR003 work:B: missing terminator``."""
        loc = self.location()
        line = f"{self.severity.label} {self.code}"
        if self.path_evidence is not None:
            line += f" [mass {self.path_evidence.mass:.0%}]"
        if loc:
            line += f" {loc}:"
        line += f" {self.message}"
        if self.hint:
            line += f" (hint: {self.hint})"
        if self.fix_hint is not None:
            line += f" (fix: {self.fix_hint.transform})"
        return line

    def to_dict(self) -> dict:
        d = asdict(self)
        d["severity"] = self.severity.label
        if self.fix_hint is not None:
            d["fix_hint"] = self.fix_hint.to_dict()
        if self.path_evidence is not None:
            d["path_evidence"] = self.path_evidence.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Diagnostic":
        fix_hint = d.get("fix_hint")
        path_evidence = d.get("path_evidence")
        return cls(
            code=d["code"],
            severity=Severity[d["severity"].upper()],
            message=d["message"],
            function=d.get("function"),
            block=d.get("block"),
            instr=d.get("instr"),
            hint=d.get("hint"),
            fix_hint=None if fix_hint is None else FixHint.from_dict(fix_hint),
            path_evidence=(
                None
                if path_evidence is None
                else PathEvidence.from_dict(path_evidence)
            ),
        )


class Diagnostics:
    """An append-only collection of diagnostics.

    Checkers *emit into* a shared sink instead of raising, so one run
    surfaces every violation at once.  The collection is picklable and
    JSON-serializable, so diagnostics survive the artifact cache and the
    process-pool boundary of :class:`~repro.pipeline.ParallelDriver`.
    """

    def __init__(self, records: Iterable[Diagnostic] = ()) -> None:
        self._records: list[Diagnostic] = list(records)

    # -- recording ---------------------------------------------------------

    def emit(
        self,
        code: str,
        severity: Severity,
        message: str,
        *,
        function: Optional[str] = None,
        block: Optional[str] = None,
        instr: Optional[int] = None,
        hint: Optional[str] = None,
        fix_hint: Optional[FixHint] = None,
        path_evidence: Optional[PathEvidence] = None,
    ) -> Diagnostic:
        d = Diagnostic(
            code=code,
            severity=severity,
            message=message,
            function=function,
            block=None if block is None else str(block),
            instr=instr,
            hint=hint,
            fix_hint=fix_hint,
            path_evidence=path_evidence,
        )
        self._records.append(d)
        return d

    def add(self, diagnostic: Diagnostic) -> None:
        self._records.append(diagnostic)

    def extend(self, other: "Diagnostics | Iterable[Diagnostic]") -> None:
        self._records.extend(other)

    # -- queries -----------------------------------------------------------

    @property
    def records(self) -> tuple[Diagnostic, ...]:
        return tuple(self._records)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self._records if d.severity >= Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self._records if d.severity == Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self._records)

    @property
    def max_severity(self) -> Optional[Severity]:
        return max((d.severity for d in self._records), default=None)

    def codes(self) -> set[str]:
        return {d.code for d in self._records}

    def filter(
        self,
        code: Optional[str] = None,
        severity: Optional[Severity] = None,
        function: Optional[str] = None,
    ) -> "Diagnostics":
        """Sub-collection matching all given criteria."""
        return Diagnostics(
            d
            for d in self._records
            if (code is None or d.code == code)
            and (severity is None or d.severity == severity)
            and (function is None or d.function == function)
        )

    def counts(self) -> dict[str, int]:
        """Record counts keyed by severity label (all labels present)."""
        out = {s.label: 0 for s in Severity}
        for d in self._records:
            out[d.severity.label] += 1
        return out

    def summary(self) -> str:
        c = self.counts()
        return (
            f"{c['error']} error(s), {c['warning']} warning(s), "
            f"{c['info']} info"
        )

    # -- rendering / transport ---------------------------------------------

    def render_text(self, limit: Optional[int] = None) -> str:
        """Multi-line text report: one line per finding plus a summary."""
        shown = self._records if limit is None else self._records[:limit]
        lines = [d.format() for d in shown]
        if limit is not None and len(self._records) > limit:
            lines.append(f"... and {len(self._records) - limit} more")
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dicts(self) -> list[dict]:
        return [d.to_dict() for d in self._records]

    def to_json(self) -> str:
        return json.dumps(
            {"diagnostics": self.to_dicts(), "counts": self.counts()},
            indent=2,
        )

    @classmethod
    def from_dicts(cls, dicts: Iterable[dict]) -> "Diagnostics":
        return cls(Diagnostic.from_dict(d) for d in dicts)

    def exit_code(self, fail_on: str = "error") -> int:
        """Severity-based process exit code.

        ``error`` findings exit 2; ``warning`` findings exit 1 when
        ``fail_on="warning"``; ``fail_on="never"`` always exits 0.
        """
        if fail_on not in ("error", "warning", "never"):
            raise ValueError(f"bad fail_on {fail_on!r}")
        if fail_on == "never":
            return 0
        if self.has_errors:
            return 2
        if fail_on == "warning" and self.warnings:
            return 1
        return 0

    def __repr__(self) -> str:
        return f"Diagnostics({self.summary()})"


__all__ = ["Severity", "Diagnostic", "Diagnostics", "FixHint", "PathEvidence"]
