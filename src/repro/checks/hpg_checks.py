"""Hot-path-graph checks (diagnostic family ``HPG``).

Executable specs for §4's tracing construction and the §4.2/Lemma 1–2
profile carry-over, plus the §5 reduction's projection invariants:

* ``HPG001`` — projection is edge-preserving: every traced edge projects to
  an original CFG edge, and (the original CFG being fully reachable) every
  original edge is the projection of some traced edge;
* ``HPG002`` — automaton consistency: a traced edge ``(v,q) -> (w,q')``
  satisfies ``q' = δ(q, (v,w))``, and tracing starts at ``(entry, q•)``;
* ``HPG003`` — recording edges carry over (§4.2): a traced edge is
  recording iff its projection is;
* ``HPG004``/``HPG005`` — Lemma 2: the translated profile preserves total
  path mass, and its edge frequencies project exactly onto the original
  profile's;
* ``HPG006``/``HPG007`` — the same invariants for the reduced graph: mass
  preservation under :func:`~repro.core.translate.reduce_profile`, and the
  quotient's edges still projecting onto original edges with recording
  status preserved.

Lemma 1 (the translated profile is a valid Ball–Larus profile *of the
traced graph*) is checked by re-running the ``PROF*`` family on the
hot-path graph itself.
"""

from __future__ import annotations

from typing import Optional

from .diagnostics import Diagnostics, Severity
from .profile_checks import check_profile

HPG_PROJECTION_BROKEN = "HPG001"
HPG_STATE_INCONSISTENT = "HPG002"
HPG_RECORDING_NOT_CARRIED = "HPG003"
HPG_PROFILE_MASS_LOST = "HPG004"
HPG_PROFILE_PROJECTION_MISMATCH = "HPG005"
HPG_REDUCED_MASS_LOST = "HPG006"
HPG_REDUCED_PROJECTION_BROKEN = "HPG007"

_MAX_EDGE_REPORTS = 10


def _check_traced_edges(
    routine: str,
    graph,
    out: Diagnostics,
    *,
    edge_code: str,
    label: str,
) -> None:
    """Projection + recording carry-over for a traced or reduced graph."""
    ocfg = graph.original_cfg
    orec = graph.original_recording

    def err(code: str, message: str, *, block=None, hint=None):
        out.emit(
            code, Severity.ERROR, message, function=routine, block=block, hint=hint
        )

    for u, w in graph.cfg.edges:
        ou, ow = u[0], w[0]
        if not ocfg.has_edge(ou, ow):
            err(
                edge_code,
                f"{label} edge {u}->{w} projects to non-existent original "
                f"edge {ou}->{ow}",
                block=u,
            )
            continue
        traced_rec = (u, w) in graph.recording
        orig_rec = (ou, ow) in orec
        if traced_rec and not orig_rec:
            err(
                HPG_RECORDING_NOT_CARRIED,
                f"{label} edge {u}->{w} is marked recording but its "
                f"projection {ou}->{ow} is not",
                block=u,
            )
        elif orig_rec and not traced_rec:
            err(
                HPG_RECORDING_NOT_CARRIED,
                f"{label} edge {u}->{w} projects onto recording edge "
                f"{ou}->{ow} but is not marked recording",
                block=u,
                hint="recording edges must carry over (paper section 4.2) "
                "so the profile reinterprets on the traced graph",
            )


def _project_frequencies(freqs: dict) -> dict:
    projected: dict = {}
    for (u, w), c in freqs.items():
        e = (u[0], w[0])
        projected[e] = projected.get(e, 0) + c
    return projected


def _check_frequency_projection(
    routine: str,
    translated,
    original,
    out: Diagnostics,
    *,
    code: str,
    label: str,
) -> None:
    projected = _project_frequencies(translated.edge_frequencies())
    want = original.edge_frequencies()
    reports = 0
    for e in sorted(set(projected) | set(want), key=str):
        p, o = projected.get(e, 0), want.get(e, 0)
        if p != o:
            reports += 1
            if reports <= _MAX_EDGE_REPORTS:
                out.emit(
                    code,
                    Severity.ERROR,
                    f"{label} profile projects {p} traversals onto edge "
                    f"{e[0]}->{e[1]}, original profile has {o}",
                    function=routine,
                    block=e[0],
                )
    if reports > _MAX_EDGE_REPORTS:
        out.emit(
            code,
            Severity.ERROR,
            f"... and {reports - _MAX_EDGE_REPORTS} more projected-frequency "
            "mismatches",
            function=routine,
        )


def check_hpg(routine: str, qa, out: Optional[Diagnostics] = None) -> Diagnostics:
    """Check one routine's hot-path graph, reduced graph, and translated
    profiles (no-op for untraced analyses)."""
    if out is None:
        out = Diagnostics()
    hpg = qa.hpg
    if hpg is None:
        return out

    def err(code: str, message: str, *, block=None, hint=None):
        out.emit(
            code, Severity.ERROR, message, function=routine, block=block, hint=hint
        )

    automaton = hpg.automaton
    ocfg = hpg.original_cfg

    # -- the traced graph --------------------------------------------------
    _check_traced_edges(
        routine, hpg, out, edge_code=HPG_PROJECTION_BROKEN, label="traced"
    )
    for u, w in hpg.cfg.edges:
        if not ocfg.has_edge(u[0], w[0]):
            continue  # already reported above
        want = automaton.transition(u[1], (u[0], w[0]))
        if w[1] != want:
            err(
                HPG_STATE_INCONSISTENT,
                f"traced edge {u}->{w} lands in state "
                f"{automaton.state_name(w[1])}, automaton transitions to "
                f"{automaton.state_name(want)}",
                block=u,
            )
    entry = hpg.cfg.entry
    if entry[0] != ocfg.entry or entry[1] != automaton.q_dot:
        err(
            HPG_STATE_INCONSISTENT,
            f"tracing must start at (entry, q_dot); found {entry}",
        )
    # Surjectivity: the validator guarantees every original vertex is
    # reachable, so every original edge must be traced at least once
    # (Theorem 3's reachability of the product construction).
    projected = {(u[0], w[0]) for u, w in hpg.cfg.edges}
    for e in ocfg.edges:
        if e not in projected:
            err(
                HPG_PROJECTION_BROKEN,
                f"original edge {e[0]}->{e[1]} has no traced counterpart",
                block=e[0],
            )

    # -- the translated profile (Lemmas 1-2) -------------------------------
    if qa.hpg_profile is not None:
        if qa.hpg_profile.total_count != qa.train_profile.total_count:
            err(
                HPG_PROFILE_MASS_LOST,
                f"translated profile has {qa.hpg_profile.total_count} path "
                f"traversals, original has {qa.train_profile.total_count}",
                hint="profile translation must preserve counts (Lemma 2)",
            )
        _check_frequency_projection(
            routine,
            qa.hpg_profile,
            qa.train_profile,
            out,
            code=HPG_PROFILE_PROJECTION_MISMATCH,
            label="translated",
        )
        # Lemma 1: the translated profile is itself a well-formed
        # Ball-Larus profile of the traced graph.
        check_profile(
            routine,
            hpg.cfg,
            hpg.recording,
            qa.hpg_profile,
            out=out,
            graph="hot-path graph",
        )

    # -- the reduced graph and its profile ---------------------------------
    reduced = qa.reduced
    if reduced is not None:
        _check_traced_edges(
            routine,
            reduced,
            out,
            edge_code=HPG_REDUCED_PROJECTION_BROKEN,
            label="reduced",
        )
    if reduced is not None and qa.reduced_profile is not None:
        if qa.reduced_profile.total_count != qa.hpg_profile.total_count:
            err(
                HPG_REDUCED_MASS_LOST,
                f"reduced profile has {qa.reduced_profile.total_count} path "
                f"traversals, traced profile has "
                f"{qa.hpg_profile.total_count}",
            )
        _check_frequency_projection(
            routine,
            qa.reduced_profile,
            qa.train_profile,
            out,
            code=HPG_REDUCED_MASS_LOST,
            label="reduced",
        )
        check_profile(
            routine,
            reduced.cfg,
            reduced.recording,
            qa.reduced_profile,
            out=out,
            graph="reduced graph",
        )
    return out


__all__ = [
    "check_hpg",
    "HPG_PROJECTION_BROKEN",
    "HPG_STATE_INCONSISTENT",
    "HPG_RECORDING_NOT_CARRIED",
    "HPG_PROFILE_MASS_LOST",
    "HPG_PROFILE_PROJECTION_MISMATCH",
    "HPG_REDUCED_MASS_LOST",
    "HPG_REDUCED_PROJECTION_BROKEN",
]
