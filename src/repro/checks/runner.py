"""Pipeline wiring for the check passes.

This module owns everything that touches the rest of the pipeline (and is
therefore imported lazily, never from ``repro.checks.__init__``):

* the concrete :class:`~repro.checks.engine.CheckPass` subclasses, one per
  diagnostic family;
* :class:`PipelineChecker` — the hook object a
  :class:`~repro.evaluation.harness.WorkloadRun` calls after each stage,
  with :data:`NULL_CHECKER` as the zero-overhead disabled default
  (null-object pattern, same shape as the observability layer);
* convenience entry points used by the ``repro check`` CLI and the tests:
  :func:`check_module`, :func:`check_run_result`, :func:`check_qualified`,
  :func:`check_workload_run`, and :func:`check_program`.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..ir.cfg import Cfg
from ..profiles.recording import recording_edges
from .automaton_checks import check_automaton
from .dataflow_checks import check_dataflow
from .diagnostics import Diagnostics
from .engine import CheckContext, CheckPass, run_passes
from .hpg_checks import check_hpg
from .ir_checks import check_module_ir
from .lint import lint_function
from .profile_checks import check_profile


class IrPass(CheckPass):
    """Structural IR/CFG well-formedness (collect-all ``IR*``)."""

    name = "ir"
    codes = tuple(f"IR{n:03d}" for n in range(1, 11))
    requires = ("module",)

    def run(self, ctx: CheckContext, out: Diagnostics) -> None:
        check_module_ir(ctx.module, out=out)


class LintPass(CheckPass):
    """Dataflow-powered IR lints (``LINT*``)."""

    name = "lint"
    codes = ("LINT001", "LINT002", "LINT003", "LINT004")
    requires = ("module",)

    def run(self, ctx: CheckContext, out: Diagnostics) -> None:
        qualified = ctx.qualified or {}
        for fn in ctx.module.functions.values():
            qa = qualified.get(fn.name)
            # Reuse the qualified bundle's baseline Wegman–Zadek run when
            # the analyzer provides one; plain check runs solve fresh.
            lint_function(
                fn,
                ctx.module,
                out=out,
                wz=None if qa is None else qa.baseline,
            )


class ProfilePass(CheckPass):
    """Ball–Larus conservation of the run's path profiles (``PROF*``)."""

    name = "profile"
    codes = tuple(f"PROF{n:03d}" for n in range(1, 7))
    requires = ("module", "result")

    def run(self, ctx: CheckContext, out: Diagnostics) -> None:
        for routine, profile in ctx.result.profiles.items():
            fn = ctx.module.functions.get(routine)
            if fn is None or not profile.total_count:
                continue
            cfg = Cfg.from_function(fn)
            block_counts = {
                label: count
                for (owner, label), count in ctx.result.block_counts.items()
                if owner == routine
            }
            check_profile(
                routine,
                cfg,
                recording_edges(cfg),
                profile,
                block_counts=block_counts,
                out=out,
            )


class AutomatonPass(CheckPass):
    """Theorem 2 / trie-shape checks on qualification automata (``AUT*``)."""

    name = "automaton"
    codes = ("AUT001", "AUT002", "AUT003", "AUT004")
    requires = ("qualified",)

    def run(self, ctx: CheckContext, out: Diagnostics) -> None:
        for routine, qa in ctx.qualified.items():
            if qa.automaton is not None:
                check_automaton(routine, qa.cfg, qa.recording, qa.automaton, out=out)


class HpgPass(CheckPass):
    """Hot-path-graph projection and profile carry-over (``HPG*``)."""

    name = "hpg"
    codes = tuple(f"HPG{n:03d}" for n in range(1, 8))
    requires = ("qualified",)

    def run(self, ctx: CheckContext, out: Diagnostics) -> None:
        for routine, qa in ctx.qualified.items():
            check_hpg(routine, qa, out=out)


class DataflowPass(CheckPass):
    """Post-fixpoint, projection-conservation, monotonicity (``DF*``)."""

    name = "dataflow"
    codes = ("DF001", "DF002", "DF003")
    requires = ("qualified",)

    def run(self, ctx: CheckContext, out: Diagnostics) -> None:
        for routine, qa in ctx.qualified.items():
            check_dataflow(routine, qa, out=out)


#: Passes by pipeline stage (the order diagnostics appear in reports).
MODULE_PASSES = (IrPass(), LintPass())
RUN_PASSES = (ProfilePass(),)
QUALIFIED_PASSES = (AutomatonPass(), HpgPass(), DataflowPass())
ALL_PASSES = MODULE_PASSES + RUN_PASSES + QUALIFIED_PASSES


class PipelineChecker:
    """Runs the check passes after each pipeline stage of a workload run.

    Installed on a :class:`~repro.evaluation.harness.WorkloadRun` via its
    ``checker`` argument; findings from every stage accumulate in
    :attr:`diagnostics`.
    """

    enabled = True

    def __init__(self) -> None:
        self.diagnostics = Diagnostics()

    def after_compile(self, workload: str, module) -> None:
        run_passes(
            MODULE_PASSES,
            CheckContext(workload=workload, stage="compile", module=module),
            self.diagnostics,
        )

    def after_run(self, workload: str, stage: str, module, result) -> None:
        run_passes(
            RUN_PASSES,
            CheckContext(
                workload=workload, stage=stage, module=module, result=result
            ),
            self.diagnostics,
        )

    def after_qualified(
        self, workload: str, qualified: Mapping[str, Any]
    ) -> None:
        run_passes(
            QUALIFIED_PASSES,
            CheckContext(workload=workload, stage="qualify", qualified=qualified),
            self.diagnostics,
        )


class _NullChecker:
    """Disabled checker: every hook is a no-op (zero overhead off the hot
    path, like the disabled observability singletons)."""

    enabled = False

    def __init__(self) -> None:
        self.diagnostics = Diagnostics()

    def after_compile(self, workload: str, module) -> None:
        pass

    def after_run(self, workload: str, stage: str, module, result) -> None:
        pass

    def after_qualified(self, workload: str, qualified) -> None:
        pass


NULL_CHECKER = _NullChecker()


# -- direct entry points (CLI and tests) -----------------------------------


def check_module(module, workload: str = "", out: Optional[Diagnostics] = None) -> Diagnostics:
    """IR + lint checks over a compiled module."""
    return run_passes(
        MODULE_PASSES,
        CheckContext(workload=workload, stage="compile", module=module),
        out,
    )


def check_run_result(
    module, result, workload: str = "", stage: str = "run",
    out: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Profile-conservation checks over one interpreter run."""
    return run_passes(
        RUN_PASSES,
        CheckContext(workload=workload, stage=stage, module=module, result=result),
        out,
    )


def check_qualified(
    qualified: Mapping[str, Any],
    workload: str = "",
    out: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Automaton, HPG and dataflow checks over per-routine analyses."""
    return run_passes(
        QUALIFIED_PASSES,
        CheckContext(workload=workload, stage="qualify", qualified=qualified),
        out,
    )


def check_workload_run(run, ca: float, cr: float) -> Diagnostics:
    """Run every check family against an existing
    :class:`~repro.evaluation.harness.WorkloadRun` (used by ``repro check``
    when the run itself was created without a checker)."""
    out = Diagnostics()
    name = run.workload.name
    check_module(run.module, workload=name, out=out)
    check_run_result(run.module, run.train, workload=name, stage="train", out=out)
    check_run_result(run.module, run.ref, workload=name, stage="ref", out=out)
    check_qualified(run.qualified(ca, cr), workload=name, out=out)
    return out


def check_program(
    module,
    args,
    inputs,
    ca: float,
    cr: float,
    engine: str = "compiled",
    workload: str = "program",
    dataflow_engine: str = "auto",
    wz_engine: str = "auto",
) -> Diagnostics:
    """Check an ad-hoc program: compile-stage checks, one profiled run, and
    the qualified pipeline per routine (the ``repro check <file>`` path).

    ``wz_engine`` selects the conditional-constant engine for the qualified
    pipelines *and* the lint passes — the DF/LINT invariants hold under
    either engine, so running the checks under ``compiled`` differentially
    validates the dense WZ lowering end to end."""
    from ..core.qualified import run_qualified
    from ..dataflow import engine_scope, wz_engine_scope
    from ..interp.interpreter import Interpreter

    out = Diagnostics()
    with engine_scope(dataflow_engine), wz_engine_scope(wz_engine):
        check_module(module, workload=workload, out=out)
        result = Interpreter(
            module, profile_mode="bl", track_sites=False, engine=engine
        ).run(args, inputs)
        check_run_result(
            module, result, workload=workload, stage="profile", out=out
        )
        qualified = {
            name: run_qualified(
                fn,
                result.profiles.get(name, _empty_profile()),
                ca,
                cr,
                wz_engine=wz_engine,
            )
            for name, fn in module.functions.items()
        }
        check_qualified(qualified, workload=workload, out=out)
    return out


def _empty_profile():
    from ..profiles.path_profile import PathProfile

    return PathProfile()


__all__ = [
    "IrPass",
    "LintPass",
    "ProfilePass",
    "AutomatonPass",
    "HpgPass",
    "DataflowPass",
    "MODULE_PASSES",
    "RUN_PASSES",
    "QUALIFIED_PASSES",
    "ALL_PASSES",
    "PipelineChecker",
    "NULL_CHECKER",
    "check_module",
    "check_run_result",
    "check_qualified",
    "check_workload_run",
    "check_program",
]
