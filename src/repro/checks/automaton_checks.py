"""Qualification-automaton checks (diagnostic family ``AUT``).

The qualification automaton (paper Definition 5) must be the Aho–Corasick
keyword matcher for the trimmed hot paths, and Theorem 2 says its failure
function is *trivial* (recording edge → ``q•``, anything else → ``qε``).
These checks make that an executable spec:

* ``AUT001`` — keywords (trimmed hot paths) contain no interior recording
  edge: trimming removes the single final recording edge, so none remain;
* ``AUT002`` — Theorem 2: the automaton's transition function coincides,
  state for state and letter for letter, with the *textbook* Aho–Corasick
  construction (BFS failure links) over the same keywords, with every
  recording edge read as the ``•`` letter;
* ``AUT003`` — retrieval-tree shape: the root's only child is ``q•`` along
  ``•`` (every keyword starts with the implicit ``•``);
* ``AUT004`` — each hot path's trimmed spine, driven from ``q•``, ends at a
  keyword-end state that maps back to exactly that path.
"""

from __future__ import annotations

from typing import Optional

from ..automaton.aho_corasick import AhoCorasick
from ..automaton.qualification import DOT, QualificationAutomaton
from ..ir.cfg import Cfg
from .diagnostics import Diagnostics, Severity

AUT_INTERIOR_RECORDING = "AUT001"
AUT_THEOREM2_MISMATCH = "AUT002"
AUT_BAD_TRIE_SHAPE = "AUT003"
AUT_SPINE_MISMATCH = "AUT004"

#: Cap on per-code transition mismatches reported (graphs are small, but a
#: broken failure function would otherwise flood the report).
_MAX_MISMATCHES = 10


def check_automaton(
    routine: str,
    cfg: Cfg,
    recording: frozenset,
    automaton: QualificationAutomaton,
    out: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Check one routine's qualification automaton; collect-all."""
    if out is None:
        out = Diagnostics()

    def err(code: str, message: str, *, hint=None):
        out.emit(code, Severity.ERROR, message, function=routine, hint=hint)

    trimmed_paths = []
    for path in automaton.hot_paths:
        trimmed = QualificationAutomaton.trim(path)
        trimmed_paths.append((path, trimmed))
        for e in trimmed:
            if e in recording:
                err(
                    AUT_INTERIOR_RECORDING,
                    f"trimmed hot path {path} contains recording edge "
                    f"{e[0]}->{e[1]}",
                    hint="hot paths must be Ball-Larus paths: only the "
                    "final (trimmed-off) edge is recording",
                )

    # Retrieval-tree shape (Definition 9's q-dot).
    trie = automaton.trie
    root_children = trie.children(automaton.q_epsilon)
    if root_children.get(DOT) != automaton.q_dot:
        err(
            AUT_BAD_TRIE_SHAPE,
            "q_dot is not the root's child along the dot letter",
        )
    extra = [k for k in root_children if k is not DOT]
    if extra:
        err(
            AUT_BAD_TRIE_SHAPE,
            f"root has non-dot children {extra!r}; every keyword must "
            "start with the implicit dot",
        )

    # Each hot path's spine is recognized end-to-end.
    for path, trimmed in trimmed_paths:
        end = automaton.run(automaton.q_dot, trimmed)
        if not trie.is_word_end(end) or automaton.hot_path_at(end) != path:
            err(
                AUT_SPINE_MISMATCH,
                f"driving the trimmed spine of {path} from q_dot ends at "
                f"{automaton.state_name(end)}, which does not recognize it",
            )

    # Theorem 2: compare against the textbook Aho-Corasick automaton over
    # the same keywords, reading recording edges as the dot letter.  Both
    # constructions insert keywords in the same order, so trie state
    # numbering coincides and transitions compare directly.
    keywords = [[DOT]] + [[DOT, *trimmed] for _, trimmed in trimmed_paths]
    alphabet = [DOT] + list(cfg.edges)
    general = AhoCorasick(keywords, alphabet)
    if general.num_states != automaton.num_states:
        err(
            AUT_THEOREM2_MISMATCH,
            f"automaton has {automaton.num_states} states but the textbook "
            f"Aho-Corasick over the same keywords has {general.num_states}",
            hint="the trie holds edges outside the trimmed hot paths",
        )
        return out
    mismatches = 0
    for state in automaton.states():
        for edge in cfg.edges:
            letter = DOT if edge in recording else edge
            got = automaton.transition(state, edge)
            want = general.transition(state, letter)
            if got != want:
                mismatches += 1
                if mismatches <= _MAX_MISMATCHES:
                    err(
                        AUT_THEOREM2_MISMATCH,
                        f"transition({automaton.state_name(state)}, "
                        f"{edge[0]}->{edge[1]}) = "
                        f"{automaton.state_name(got)}, textbook "
                        f"Aho-Corasick gives {automaton.state_name(want)}",
                        hint="Theorem 2's trivial failure function is "
                        "violated",
                    )
    if mismatches > _MAX_MISMATCHES:
        err(
            AUT_THEOREM2_MISMATCH,
            f"... and {mismatches - _MAX_MISMATCHES} more transition "
            "mismatches",
        )
    return out


__all__ = [
    "check_automaton",
    "AUT_INTERIOR_RECORDING",
    "AUT_THEOREM2_MISMATCH",
    "AUT_BAD_TRIE_SHAPE",
    "AUT_SPINE_MISMATCH",
]
