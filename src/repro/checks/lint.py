"""IR lint passes powered by the data-flow problems (family ``LINT``).

Unlike the ``IR*`` structural checks these are *semantic* findings — the
function is well-formed but suspicious.  Each lint reuses an existing
analysis rather than re-deriving facts:

* ``LINT001`` — use before definition: a variable is read at a point no
  definition may reach (reaching definitions, parameters included);
* ``LINT002`` — dead store: a pure instruction writes a variable that is
  not live afterwards (live variables);
* ``LINT003`` — block unreachable under constant propagation: structurally
  reachable, but conditional constant propagation proves no executable
  path enters it (Wegman–Zadek);
* ``LINT004`` — constant branch condition: an executable branch whose
  condition the propagator resolves to a single constant, so one leg can
  never execute.

All lints are WARNING severity: they flag dubious code, not broken
invariants, and clean pipelines must stay error-free.
"""

from __future__ import annotations

from typing import Optional

from ..dataflow.framework import solve
from ..dataflow.graph_view import GraphView
from ..dataflow.lattice import UNREACHABLE
from ..dataflow.problems.liveness import LiveVariables
from ..dataflow.problems.reaching_defs import ReachingDefinitions
from ..dataflow.transfer import eval_operand
from ..dataflow.wegman_zadek import analyze
from ..ir.cfg import Cfg
from ..ir.function import Function, Module
from ..ir.instructions import Branch
from ..ir.operands import Var
from .diagnostics import Diagnostics, FixHint, Severity

LINT_USE_BEFORE_DEF = "LINT001"
LINT_DEAD_STORE = "LINT002"
LINT_UNREACHABLE_UNDER_CONSTANTS = "LINT003"
LINT_CONSTANT_BRANCH = "LINT004"

#: Machine-readable fix pointers: the optimizer pass that would resolve the
#: finding (the CLI and SARIF exports surface these verbatim).
DCE_FIX = FixHint(
    transform="dce",
    module="repro.opt.dce",
    detail="eliminate_dead_code removes stores whose value is never read",
)
STRAIGHTEN_FIX = FixHint(
    transform="straighten",
    module="repro.opt.straighten",
    detail="fold the branch into a jump and fuse the surviving leg",
)


def _warn(out: Diagnostics, code: str, message: str, *, function, block,
          instr=None, hint=None, fix_hint=None):
    out.emit(
        code,
        Severity.WARNING,
        message,
        function=function,
        block=block,
        instr=instr,
        hint=hint,
        fix_hint=fix_hint,
    )


def _check_use_before_def(fn: Function, view: GraphView, out: Diagnostics) -> None:
    sol = solve(ReachingDefinitions(fn.params, view.cfg.entry), view)
    for label, block in fn.blocks.items():
        reaching = {d[2] for d in sol.value_in.get(label, frozenset())}
        local: set = set()

        def flag(name: str, idx, what: str) -> None:
            _warn(
                out,
                LINT_USE_BEFORE_DEF,
                f"{what} reads {name!r} but no definition reaches it",
                function=fn.name,
                block=label,
                instr=idx,
                hint="the variable is uninitialized on every path here",
            )

        for idx, instr in enumerate(block.instrs):
            for name in instr.use_vars():
                if name not in local and name not in reaching:
                    flag(name, idx, str(instr))
            if instr.dest is not None:
                local.add(instr.dest)
        if block.terminator is not None:
            for op in block.terminator.uses():
                if (
                    isinstance(op, Var)
                    and op.name not in local
                    and op.name not in reaching
                ):
                    flag(op.name, None, str(block.terminator))


def _check_dead_stores(fn: Function, view: GraphView, out: Diagnostics) -> None:
    sol = solve(LiveVariables(), view)
    for label, block in fn.blocks.items():
        # Backward problem: value_in[v] flows in from the successors, i.e.
        # liveness at block *exit*.
        live = set(sol.value_in.get(label, frozenset()))
        if block.terminator is not None:
            for op in block.terminator.uses():
                if isinstance(op, Var):
                    live.add(op.name)
        for idx in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[idx]
            dest = instr.dest
            if dest is not None:
                if dest not in live and instr.is_pure:
                    _warn(
                        out,
                        LINT_DEAD_STORE,
                        f"{instr} writes {dest!r} but the value is never read",
                        function=fn.name,
                        block=label,
                        instr=idx,
                        fix_hint=DCE_FIX,
                    )
                live.discard(dest)
            for name in instr.use_vars():
                live.add(name)


def _check_constant_control(
    fn: Function, view: GraphView, out: Diagnostics, wz=None
) -> None:
    if wz is None:
        wz = analyze(view)
    reachable = view.cfg.reachable()
    for label, block in fn.blocks.items():
        if label in reachable and not wz.is_executable(label):
            _warn(
                out,
                LINT_UNREACHABLE_UNDER_CONSTANTS,
                "block is structurally reachable but constant propagation "
                "proves no executable path enters it",
                function=fn.name,
                block=label,
            )
            continue
        term = block.terminator
        if isinstance(term, Branch) and wz.is_executable(label):
            env = wz.output_env(label)
            if env is UNREACHABLE:
                continue
            cond = eval_operand(term.cond, env)
            if isinstance(cond, int):
                taken = term.if_true if cond != 0 else term.if_false
                _warn(
                    out,
                    LINT_CONSTANT_BRANCH,
                    f"branch condition {term.cond} is always {cond}; only "
                    f"{taken!r} can execute",
                    function=fn.name,
                    block=label,
                    hint="fold the branch into a jump",
                    fix_hint=STRAIGHTEN_FIX,
                )


def lint_function(
    fn: Function,
    module: Optional[Module] = None,
    out: Optional[Diagnostics] = None,
    wz=None,
) -> Diagnostics:
    """Run all lints over one function; collect-all, WARNING severity.

    ``wz`` optionally supplies a precomputed Wegman–Zadek result for the
    function's CFG (the analyzer reuses the qualified bundle's baseline
    run instead of solving conditional constants a second time)."""
    if out is None:
        out = Diagnostics()
    view = GraphView.from_function(fn, Cfg.from_function(fn))
    _check_use_before_def(fn, view, out)
    _check_dead_stores(fn, view, out)
    _check_constant_control(fn, view, out, wz=wz)
    return out


def lint_module(module: Module, out: Optional[Diagnostics] = None) -> Diagnostics:
    """Lint every function of a module."""
    if out is None:
        out = Diagnostics()
    for fn in module.functions.values():
        lint_function(fn, module, out=out)
    return out


__all__ = [
    "lint_function",
    "lint_module",
    "LINT_USE_BEFORE_DEF",
    "LINT_DEAD_STORE",
    "LINT_UNREACHABLE_UNDER_CONSTANTS",
    "LINT_CONSTANT_BRANCH",
]
