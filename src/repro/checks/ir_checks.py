"""IR/CFG well-formedness checks (diagnostic family ``IR``).

The collect-all successor of the historical raise-on-first
``repro.ir.validate`` pass: the same structural invariants, but every
violation in a module is reported, each as a :class:`Diagnostic`.
:func:`repro.ir.validate.validate_function` is now a thin wrapper that
raises on the first error-severity record these checks produce.
"""

from __future__ import annotations

from typing import Optional

from ..ir.cfg import Cfg
from ..ir.function import Function, Module
from ..ir.instructions import Branch, Call
from ..ir.operands import Const, Var
from .diagnostics import Diagnostics, Severity

IR_NO_BLOCKS = "IR001"
IR_BAD_ENTRY = "IR002"
IR_MISSING_TERMINATOR = "IR003"
IR_UNKNOWN_TARGET = "IR004"
IR_DEGENERATE_BRANCH = "IR005"
IR_BAD_OPERAND = "IR006"
IR_UNKNOWN_ARRAY = "IR007"
IR_UNKNOWN_FUNCTION = "IR008"
IR_UNREACHABLE_BLOCK = "IR009"
IR_NO_MAIN = "IR010"

#: Builtins the interpreter provides; their results are opaque to analysis.
BUILTIN_FUNCTIONS = frozenset({"abs", "min2", "max2", "clamp"})


def check_function_ir(
    fn: Function,
    module: Optional[Module] = None,
    out: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Structural invariants of one function, collect-all.

    * every block has exactly one terminator;
    * every jump/branch target resolves to a block in the function;
    * the entry label exists;
    * branches have distinct targets (parallel edges are unsupported);
    * operands are Const/Var; arrays and call targets resolve when a
      module is supplied (builtins allowed);
    * every block is reachable from the entry.
    """
    if out is None:
        out = Diagnostics()

    def err(code: str, message: str, *, block=None, instr=None, hint=None):
        out.emit(
            code,
            Severity.ERROR,
            message,
            function=fn.name,
            block=block,
            instr=instr,
            hint=hint,
        )

    if not fn.blocks:
        err(
            IR_NO_BLOCKS,
            "function has no blocks",
            hint="every function needs at least an entry block",
        )
        return out
    entry_ok = fn.entry in fn.blocks
    if not entry_ok:
        err(
            IR_BAD_ENTRY,
            f"entry {fn.entry!r} is not a block",
            hint="point fn.entry at an existing block label",
        )

    structure_ok = entry_ok
    for label, block in fn.blocks.items():
        if block.terminator is None:
            err(
                IR_MISSING_TERMINATOR,
                "missing terminator",
                block=label,
                hint="end the block with jump/branch/ret",
            )
            structure_ok = False
            continue
        for target in block.terminator.targets():
            if target not in fn.blocks:
                err(
                    IR_UNKNOWN_TARGET,
                    f"terminator targets unknown block {target!r}",
                    block=label,
                )
                structure_ok = False
        if isinstance(block.terminator, Branch):
            t = block.terminator
            if t.if_true == t.if_false:
                # Not fatal to execution, but a degenerate branch defeats
                # edge-based profiling (parallel edges are unsupported).
                err(
                    IR_DEGENERATE_BRANCH,
                    f"branch with identical targets {t.if_true!r}",
                    block=label,
                    hint="replace with an unconditional jump",
                )
        for idx, instr in enumerate(block.instrs):
            for op in instr.uses():
                if not isinstance(op, (Const, Var)):
                    err(
                        IR_BAD_OPERAND,
                        f"bad operand {op!r} in {instr}",
                        block=label,
                        instr=idx,
                    )
            if module is not None:
                if hasattr(instr, "array") and instr.array not in module.arrays:
                    err(
                        IR_UNKNOWN_ARRAY,
                        f"unknown array {instr.array!r}",
                        block=label,
                        instr=idx,
                        hint="declare the array globally",
                    )
                if isinstance(instr, Call):
                    if (
                        instr.func not in module.functions
                        and instr.func not in BUILTIN_FUNCTIONS
                    ):
                        err(
                            IR_UNKNOWN_FUNCTION,
                            f"unknown function {instr.func!r}",
                            block=label,
                            instr=idx,
                        )

    # Reachability needs an intact skeleton (a valid entry and a terminator
    # in every block); with structural errors present the CFG itself is not
    # well-defined, so skip rather than crash mid-check.
    if structure_ok:
        cfg = Cfg.from_function(fn)
        reachable = cfg.reachable()
        for label in fn.blocks:
            if label not in reachable:
                err(
                    IR_UNREACHABLE_BLOCK,
                    "unreachable block",
                    block=label,
                    hint="delete it or add an edge from reachable code",
                )
    return out


def check_module_ir(
    module: Module, out: Optional[Diagnostics] = None
) -> Diagnostics:
    """Module-level invariants plus every function's, collect-all."""
    if out is None:
        out = Diagnostics()
    if "main" not in module.functions:
        out.emit(
            IR_NO_MAIN,
            Severity.ERROR,
            "module has no main function",
            hint="define func main(...)",
        )
    for fn in module.functions.values():
        check_function_ir(fn, module, out)
    return out


__all__ = [
    "BUILTIN_FUNCTIONS",
    "check_function_ir",
    "check_module_ir",
    "IR_NO_BLOCKS",
    "IR_BAD_ENTRY",
    "IR_MISSING_TERMINATOR",
    "IR_UNKNOWN_TARGET",
    "IR_DEGENERATE_BRANCH",
    "IR_BAD_OPERAND",
    "IR_UNKNOWN_ARRAY",
    "IR_UNKNOWN_FUNCTION",
    "IR_UNREACHABLE_BLOCK",
    "IR_NO_MAIN",
]
