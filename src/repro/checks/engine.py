"""The check-pass framework: contexts, passes, and the instrumented runner.

A :class:`CheckPass` inspects whatever slice of the pipeline its
``requires`` names (the compiled module, a profiling run, the per-routine
qualified analyses) and emits :class:`~repro.checks.diagnostics.Diagnostic`
records.  :func:`run_passes` runs every applicable pass over a
:class:`CheckContext`, wrapping each in an observability span
(``check.<pass>``) and counting findings per pass and severity, so `repro
trace` shows where checker time goes and how much each pass found.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from ..obs import get_metrics, get_tracer
from .diagnostics import Diagnostics


@dataclass
class CheckContext:
    """Everything a pass may inspect; passes declare what they require.

    Fields are filled in by the caller for whichever pipeline stage just
    ran; a pass whose ``requires`` names an absent (``None``) field simply
    does not run.
    """

    #: Workload (or program) name, for span attribution only.
    workload: str = ""
    #: Pipeline stage the context describes (compile/train/ref/qualified).
    stage: str = ""
    #: The compiled :class:`~repro.ir.function.Module`.
    module: Optional[Any] = None
    #: An interpreter :class:`~repro.interp.interpreter.RunResult` with
    #: Ball–Larus profiles (profile-conservation checks).
    result: Optional[Any] = None
    #: Per-routine :class:`~repro.core.qualified.QualifiedAnalysis` values.
    qualified: Optional[Mapping[str, Any]] = None


class CheckPass(ABC):
    """One family of invariant checks or lints."""

    #: Stable pass name (span suffix and metrics label).
    name: str = ""
    #: Diagnostic codes this pass may emit (documented in docs/CHECKS.md).
    codes: tuple[str, ...] = ()
    #: CheckContext fields that must be non-None for the pass to run.
    requires: tuple[str, ...] = ()

    def applicable(self, ctx: CheckContext) -> bool:
        return all(getattr(ctx, r) is not None for r in self.requires)

    @abstractmethod
    def run(self, ctx: CheckContext, out: Diagnostics) -> None:
        """Inspect ``ctx`` and emit findings into ``out``."""


def run_passes(
    passes: Iterable[CheckPass],
    ctx: CheckContext,
    out: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Run every applicable pass; returns (and fills) the diagnostics sink."""
    if out is None:
        out = Diagnostics()
    tracer = get_tracer()
    metrics = get_metrics()
    for check in passes:
        if not check.applicable(ctx):
            continue
        before = len(out)
        with tracer.span(
            f"check.{check.name}", workload=ctx.workload, stage=ctx.stage
        ) as span:
            check.run(ctx, out)
        findings = len(out) - before
        span.set(findings=findings)
        if metrics.enabled:
            metrics.counter("check_pass_runs", check=check.name).inc()
            for d in out.records[before:]:
                metrics.counter(
                    "check_findings",
                    check=check.name,
                    severity=d.severity.label,
                ).inc()
    return out


__all__ = ["CheckContext", "CheckPass", "run_passes"]
