"""Ball–Larus path-profile conservation checks (diagnostic family ``PROF``).

A well-formed path profile over a CFG (paper Definitions 7–8) satisfies:

* every path is a real walk of the graph (``PROF001``);
* interior edges are never recording edges and the final edge always is
  (``PROF002``/``PROF003``) — the defining shape of a Ball–Larus path;
* the derived edge frequencies obey Kirchhoff's law at every vertex except
  the virtual entry/exit (``PROF004``): path concatenation covers the
  executed trace exactly, so flow in equals flow out;
* each path traverses exactly one recording edge, so the total path count
  equals the summed frequency of the recording edges (``PROF005``);
* the profile-derived block frequencies equal the interpreter's observed
  block execution counts when available (``PROF006``) — the profile
  partitions the trace, losing and inventing nothing.

These checks run unchanged on the original CFG *and* on hot-path graphs
(recording edges carry over per §4.2), which is how
:mod:`~repro.checks.hpg_checks` verifies Lemma 1's reinterpretation claim.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..ir.cfg import Cfg, Edge
from ..profiles.path_profile import PathProfile
from .diagnostics import Diagnostics, Severity

PROF_EDGE_NOT_IN_GRAPH = "PROF001"
PROF_INTERIOR_RECORDING = "PROF002"
PROF_FINAL_NOT_RECORDING = "PROF003"
PROF_FLOW_IMBALANCE = "PROF004"
PROF_PATH_SUM_MISMATCH = "PROF005"
PROF_BLOCK_COUNT_MISMATCH = "PROF006"


def check_profile(
    routine: str,
    cfg: Cfg,
    recording: frozenset,
    profile: PathProfile,
    block_counts: Optional[Mapping] = None,
    out: Optional[Diagnostics] = None,
    graph: str = "cfg",
) -> Diagnostics:
    """Check one routine's profile against its graph; collect-all."""
    if out is None:
        out = Diagnostics()
    where = "" if graph == "cfg" else f" on the {graph}"

    def err(code: str, message: str, *, block=None, hint=None):
        out.emit(
            code,
            Severity.ERROR,
            message + where,
            function=routine,
            block=block,
            hint=hint,
        )

    for path in profile.paths():
        edges = path.edges()
        for e in edges:
            if not cfg.has_edge(*e):
                err(
                    PROF_EDGE_NOT_IN_GRAPH,
                    f"path {path} uses non-existent edge {e[0]}->{e[1]}",
                    block=e[0],
                )
        for e in edges[:-1]:
            if e in recording:
                err(
                    PROF_INTERIOR_RECORDING,
                    f"path {path} crosses recording edge {e[0]}->{e[1]} "
                    "in its interior",
                    block=e[0],
                    hint="Ball-Larus paths end at the first recording edge",
                )
        if edges[-1] not in recording:
            err(
                PROF_FINAL_NOT_RECORDING,
                f"path {path} does not end with a recording edge",
                block=edges[-1][0],
            )

    # Kirchhoff flow conservation on the derived edge frequencies.  One
    # subtlety: the recording edge that *starts* each activation (entry ->
    # first block) belongs to no path, so entry successors carry an in-flow
    # deficit; those deficits must be non-negative and sum to the number of
    # activations, i.e. the flow into the virtual exit.
    freq = profile.edge_frequencies()
    inflow: dict = {}
    outflow: dict = {}
    for (u, v), c in freq.items():
        outflow[u] = outflow.get(u, 0) + c
        inflow[v] = inflow.get(v, 0) + c
    entry_targets = set(cfg.succs(cfg.entry))
    total_deficit = 0
    for v in sorted(set(inflow) | set(outflow) | entry_targets, key=str):
        if v == cfg.entry or v == cfg.exit:
            continue
        i, o = inflow.get(v, 0), outflow.get(v, 0)
        if v in entry_targets:
            if o < i:
                err(
                    PROF_FLOW_IMBALANCE,
                    f"flow conservation violated at entry successor {v}: "
                    f"in={i} exceeds out={o}",
                    block=v,
                    hint="the profile's paths do not concatenate into traces",
                )
            else:
                total_deficit += o - i
        elif i != o:
            err(
                PROF_FLOW_IMBALANCE,
                f"flow conservation violated at {v}: in={i}, out={o}",
                block=v,
                hint="the profile's paths do not concatenate into traces",
            )
    activations = inflow.get(cfg.exit, 0)
    if profile.total_count and total_deficit != activations:
        err(
            PROF_FLOW_IMBALANCE,
            f"entry-successor flow deficit {total_deficit} != activations "
            f"{activations} (flow into the exit)",
            block=cfg.entry,
            hint="every activation contributes exactly one unrecorded "
            "entry edge",
        )

    # Exactly one recording edge per path => path count == recording flow.
    recording_flow = sum(c for e, c in freq.items() if e in recording)
    if recording_flow != profile.total_count:
        err(
            PROF_PATH_SUM_MISMATCH,
            f"total path count {profile.total_count} != summed "
            f"recording-edge frequency {recording_flow}",
        )

    # The profile partitions the executed trace: interior-vertex counts
    # must reproduce the interpreter's block execution counts exactly.
    if block_counts:
        derived = profile.block_frequencies()
        for v in sorted(set(derived) | set(block_counts), key=str):
            d, o = derived.get(v, 0), block_counts.get(v, 0)
            if d != o:
                err(
                    PROF_BLOCK_COUNT_MISMATCH,
                    f"profile says block {v} executed {d} times, "
                    f"interpreter observed {o}",
                    block=v,
                )
    return out


__all__ = [
    "check_profile",
    "PROF_EDGE_NOT_IN_GRAPH",
    "PROF_INTERIOR_RECORDING",
    "PROF_FINAL_NOT_RECORDING",
    "PROF_FLOW_IMBALANCE",
    "PROF_PATH_SUM_MISMATCH",
    "PROF_BLOCK_COUNT_MISMATCH",
]
