"""repro — a reproduction of Ammons & Larus, *Improving Data-flow Analysis
with Path Profiles* (PLDI 1998).

The package implements the paper's full pipeline and every substrate it
depends on:

* :mod:`repro.ir` — a three-address IR with CFGs (the low-SUIF stand-in);
* :mod:`repro.frontend` — the MiniC language that workloads are written in;
* :mod:`repro.interp` — a deterministic interpreter with cost accounting and
  built-in Ball–Larus profiling;
* :mod:`repro.profiles` — Ball–Larus path numbering, path profiles, and
  hot-path selection;
* :mod:`repro.automaton` — the Aho–Corasick qualification automaton and
  partition refinement;
* :mod:`repro.dataflow` — the monotone framework, iterative solver, and
  Wegman–Zadek conditional constant propagation;
* :mod:`repro.core` — the paper's contribution: data-flow tracing, hot-path
  graphs, reduction, profile translation, and the end-to-end pipeline;
* :mod:`repro.opt` — materialization, constant folding, DCE, block layout;
* :mod:`repro.stats` — constant classification (the paper's Figures 10/13);
* :mod:`repro.workloads` / :mod:`repro.evaluation` — the synthetic SPEC95
  workloads and the experiment harness behind every table and figure.

Quick start::

    from repro import compile_program, Interpreter, run_qualified

    module = compile_program(source)
    run = Interpreter(module).run(args, inputs)      # collects a path profile
    qa = run_qualified(module.function("kernel"),
                       run.profiles["kernel"], ca=0.97, cr=0.95)
"""

from .core import (
    HotPathGraph,
    QualifiedAnalysis,
    ReducedGraph,
    reduce_hpg,
    reduce_profile,
    run_qualified,
    trace,
    translate_profile,
)
from .dataflow import ConstEnv, GraphView, analyze, solve
from .evaluation import Workload, WorkloadRun
from .frontend import compile_program
from .interp import Interpreter, run_module
from .ir import Cfg, Function, IRBuilder, Module, parse_module
from .profiles import (
    BallLarusNumbering,
    BLPath,
    PathProfile,
    recording_edges,
    select_hot_paths,
)

__version__ = "1.0.0"

__all__ = [
    "analyze",
    "BallLarusNumbering",
    "BLPath",
    "Cfg",
    "compile_program",
    "ConstEnv",
    "Function",
    "GraphView",
    "HotPathGraph",
    "Interpreter",
    "IRBuilder",
    "Module",
    "parse_module",
    "PathProfile",
    "QualifiedAnalysis",
    "recording_edges",
    "reduce_hpg",
    "reduce_profile",
    "ReducedGraph",
    "run_module",
    "run_qualified",
    "select_hot_paths",
    "solve",
    "trace",
    "translate_profile",
    "Workload",
    "WorkloadRun",
    "__version__",
]
