#!/usr/bin/env python3
"""Run the full paper pipeline on one of the SPEC95-like workloads.

Compiles a MiniC workload, profiles its train input, performs path-qualified
constant propagation at the paper's settings (CA = 0.97, CR = 0.95), and
reports the paper's headline metrics on the ref input: non-local constant
improvement over Wegman–Zadek, graph growth before and after reduction, and
the base-vs-optimized running cost.

Run:  python examples/spec_workload_pipeline.py [workload]
      (default: m88ksim95; see repro.workloads.WORKLOAD_NAMES)
"""

import sys

from repro.evaluation import WorkloadRun, format_table
from repro.workloads import WORKLOAD_NAMES, get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "m88ksim95"
    if name not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}")

    print(f"=== {name} ===")
    run = WorkloadRun(get_workload(name))
    print(f"description        : {run.workload.description}")
    print(f"CFG nodes          : {run.cfg_nodes}")
    print(f"train instructions : {run.train.instr_count}")
    print(f"ref instructions   : {run.ref.instr_count}")
    print(f"executed BL paths  : {run.executed_paths}")
    print(f"hot paths (97%)    : {run.hot_path_count(0.97)}")

    orig, hpg, red = run.graph_sizes(0.97)
    print("\n--- graph growth at CA = 0.97 ---")
    print(f"original -> traced -> reduced: {orig} -> {hpg} -> {red} vertices")

    agg = run.aggregate_classification(0.97)
    print("\n--- constants on the ref input ---")
    rows = [
        ["local", agg.local],
        ["non-local, Wegman-Zadek", agg.iterative_nonlocal],
        ["non-local, path-qualified", agg.qualified_nonlocal],
        ["  of which Variable", agg.variable],
        ["  of which Identical (new)", agg.identical_extra],
        ["  of which mixed const/unknown", agg.mixed],
        ["unknowable (tainted)", agg.unknowable],
    ]
    print(format_table(["category", "dynamic instructions"], rows))
    print(f"\nimprovement over WZ : {agg.improvement_ratio:.1f}x "
          "(the paper reports 2-112x across SPEC95)")
    print(f"constant increase   : {agg.constant_increase:+.1%} "
          "(paper: +1-7% on full-size benchmarks)")

    row = run.table2(0.97)
    print("\n--- running cost on ref (Table 2 analogue) ---")
    print(f"base (WZ folding)      : {row.base_cost}")
    print(f"optimized (qualified)  : {row.optimized_cost}")
    print(f"speedup                : {row.speedup:.3f}x")

    per_fn = run.qualified(0.97)
    print("\n--- per-routine detail ---")
    rows = []
    for fn_name, qa in per_fn.items():
        rows.append(
            [
                fn_name,
                qa.original_size,
                qa.hpg_size,
                qa.reduced_size,
                len(qa.hot_paths),
                f"{qa.analysis_time * 1000:.1f}ms",
            ]
        )
    print(
        format_table(
            ["routine", "blocks", "traced", "reduced", "hot paths", "time"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
