#!/usr/bin/env python3
"""Path qualification applied to a different data-flow problem.

The paper notes "the technique can be applied to any data-flow problem".
Because our analyses run against a GraphView, *any* framework instance runs
on a hot-path graph unchanged.  This example runs reaching definitions on
the running example's CFG and on its hot-path graph and shows the payoff:
on the original CFG, the use of ``a`` in H sees two reaching definitions
(from C and from D); on the hot-path graph, every hot duplicate of H sees
exactly one — the analysis knows *which* definition flows along each hot
path, which is what lets the constant propagator give ``x = a + b``
different values at different duplicates.

Run:  python examples/qualified_reaching_defs.py
"""

from repro.dataflow import GraphView, solve
from repro.dataflow.problems import ReachingDefinitions
from repro.interp import Interpreter
from repro.core import run_qualified
from repro.workloads.running_example import (
    running_example_module,
    training_run_inputs,
)


def defs_of_var(defs, var):
    return sorted(str(d[0]) for d in defs if d[2] == var)


def main() -> None:
    module = running_example_module()
    fn = module.function("work")
    activations, inputs = training_run_inputs()
    run = Interpreter(module).run([activations], inputs)
    qa = run_qualified(fn, run.profiles["work"], ca=1.0)

    # Unqualified reaching definitions.
    view = GraphView.from_function(fn)
    problem = ReachingDefinitions(fn.params, view.cfg.entry)
    flat = solve(problem, view)
    print("=== Reaching definitions of 'a' at H, original CFG ===")
    print(" ", defs_of_var(flat.value_in["H"], "a"))
    print("  -> the definitions from C (a=2) and D (a=1) merge: the use of")
    print("     'a' in H cannot be resolved to either.")

    # Qualified: the same problem instance, solved over the hot-path graph.
    hpg_view = qa.hpg.view()
    qualified = solve(
        ReachingDefinitions(fn.params, hpg_view.cfg.entry), hpg_view
    )
    print("\n=== Reaching definitions of 'a' at each duplicate of H ===")
    for dup in qa.hpg.duplicates("H"):
        reaching = defs_of_var(qualified.value_in[dup], "a")
        marker = " <- unique!" if len(reaching) == 1 else ""
        print(f"  H@q{dup[1]}: {reaching}{marker}")

    singles = sum(
        1
        for dup in qa.hpg.duplicates("H")
        if len(defs_of_var(qualified.value_in[dup], "a")) == 1
    )
    print(
        f"\n{singles} of {len(qa.hpg.duplicates('H'))} duplicates of H see a "
        "single reaching definition of 'a';"
    )
    print("on the original CFG, zero do.")


if __name__ == "__main__":
    main()
