#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Rebuilds Figure 1's routine, collects the Figure 2 path profile by running
the program in the interpreter, traces the hot-path graph (Figure 5),
reduces it (Figure 8), and prints the constants that path qualification
discovers but Wegman–Zadek cannot: ``x = a + b`` is 6, 5 or 4 depending on
the duplicate of H, ``i = i + 1`` is 1 on first-iteration copies, and
``n = i`` is 1 on the no-iteration hot path.

Run:  python examples/quickstart.py
"""

from repro.core import run_qualified
from repro.interp import Interpreter
from repro.opt import eliminate_dead_code, materialize
from repro.workloads.running_example import (
    running_example_module,
    training_run_inputs,
)


def main() -> None:
    module = running_example_module()
    print("=== The routine of Figure 1 ===")
    print(module.function("work"))

    # Step 1: profile a training run (Ball-Larus profiling in the interpreter).
    activations, inputs = training_run_inputs()
    run = Interpreter(module).run([activations], inputs)
    profile = run.profiles["work"]
    print("\n=== Path profile (Figure 2) ===")
    for path, count in sorted(profile.items(), key=lambda x: -x[1]):
        print(f"  {count:4d} x {path}")

    # Steps 2-5: select hot paths, build the automaton, trace, analyze, reduce.
    qa = run_qualified(module.function("work"), profile, ca=1.0, cr=0.95)
    print("\n=== Pipeline ===")
    print(f"  hot paths selected : {len(qa.hot_paths)}")
    print(f"  automaton states   : {qa.automaton.num_states}")
    print(f"  CFG vertices       : {qa.original_size}")
    print(f"  hot-path graph     : {qa.hpg_size} vertices "
          f"(+{qa.hpg.growth_over(qa.original_size):.0%})")
    print(f"  reduced graph      : {qa.reduced_size} vertices "
          f"(+{qa.reduced.growth_over(qa.original_size):.0%})")
    print(f"  HPG reducible?     : {qa.hpg.cfg.is_reducible()} "
          "(the paper: tracing yields irreducible graphs)")

    print("\n=== Constants: Wegman-Zadek (baseline) ===")
    for v in qa.cfg.vertices:
        consts = qa.baseline.pure_constant_sites(v)
        if consts:
            block = qa.function.blocks[v]
            for idx, value in consts.items():
                print(f"  {v}: {block.instrs[idx]}  ->  {value}")

    print("\n=== New constants on the reduced hot-path graph ===")
    analysis = qa.reduced_analysis
    for vertex in qa.reduced.cfg.vertices:
        orig = vertex[0]
        block = qa.function.blocks.get(orig)
        if block is None:
            continue
        baseline = qa.baseline.pure_constant_sites(orig)
        for idx, value in analysis.pure_constant_sites(vertex).items():
            if idx not in baseline:
                print(
                    f"  {orig}@q{vertex[1]}: {block.instrs[idx]}  ->  {value}"
                )

    print("\n=== Reduction weights (the paper's Section 5 narration) ===")
    for vertex, weight in sorted(
        qa.reduction.weights.items(), key=lambda kv: -kv[1]
    ):
        if weight:
            print(f"  {vertex[0]}@q{vertex[1]}: {weight} dynamic non-local constants")

    # Generate optimized code and verify it behaves identically.
    optimized = materialize(qa.reduced, qa.reduced_analysis, fold=True)
    eliminate_dead_code(optimized)
    new_module = module.copy()
    del new_module.functions["work"]
    new_module.add_function(optimized)
    check = Interpreter(new_module, profile_mode=None).run([activations], inputs)
    assert check.output == run.output, "optimization changed behaviour!"
    print("\n=== Optimized build ===")
    print(f"  behaviour identical : True")
    print(f"  cost before         : {run.cost}")
    print(f"  cost after          : {check.cost} "
          f"({run.cost / check.cost:.3f}x speedup)")


if __name__ == "__main__":
    main()
