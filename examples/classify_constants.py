#!/usr/bin/env python3
"""Classify a workload's dynamic instructions (Figures 10 and 13).

Runs the full pipeline on one workload and prints the Venn-diagram regions
of the paper's Figure 13: Local, Iterative, Identical, Variable, Mixed,
Unknowable — all weighted by the ref input's dynamic executions — followed
by the per-routine detail and the headline improvement ratio.

Run:  python examples/classify_constants.py [workload]
      (default: go95)
"""

import sys

from repro.evaluation import WorkloadRun, format_table
from repro.stats import render_venn, venn_summary
from repro.workloads import WORKLOAD_NAMES, get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "go95"
    if name not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}")

    run = WorkloadRun(get_workload(name))
    agg = run.aggregate_classification(1.0)

    print(f"=== {name}: dynamic instruction classification at CA = 1 ===\n")
    print(render_venn(venn_summary(agg)))

    ratio = agg.improvement_ratio
    print(
        f"\nNon-local constants: Wegman-Zadek {agg.iterative_nonlocal}, "
        f"path-qualified {agg.qualified_nonlocal} "
        f"({'inf' if ratio == float('inf') else f'{ratio:.1f}x'} — "
        "the paper reports 2-112x)"
    )

    print("\n=== per-routine detail ===")
    rows = []
    for fn_name, c in run.classification(1.0).items():
        rows.append(
            [
                fn_name,
                c.total_dynamic,
                c.local,
                c.iterative_nonlocal,
                c.qualified_nonlocal,
                c.variable,
                c.mixed,
                c.unknowable,
            ]
        )
    print(
        format_table(
            [
                "routine",
                "dynamic",
                "local",
                "WZ nonlocal",
                "qualified",
                "variable",
                "mixed",
                "unknowable",
            ],
            rows,
        )
    )

    print(
        "\nReading: 'variable' constants take different values at different"
        "\nduplicates (only duplication reveals them); 'mixed' are constant"
        "\non some hot paths and unknown elsewhere — the paper found most"
        "\nqualified constants fall in that region."
    )


if __name__ == "__main__":
    main()
