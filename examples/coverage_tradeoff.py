#!/usr/bin/env python3
"""Explore the CA / CR trade-off on one workload.

Reproduces, for a single workload, the sweeps behind Figures 9, 11 and 12:
as hot-path coverage (CA) rises, more constants are found but the traced
graph and the analysis time grow; the reduction cutoff (CR) controls how
much of the duplication survives.  The paper's observation — most of the
benefit arrives by CA = 0.97, and reduction cuts the graph roughly an order
of magnitude — should be visible in the printed tables.

Run:  python examples/coverage_tradeoff.py [workload]
      (default: li95)
"""

import sys

from repro.evaluation import CA_SWEEP, WorkloadRun, format_table
from repro.workloads import WORKLOAD_NAMES, get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "li95"
    if name not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}")
    run = WorkloadRun(get_workload(name))

    print(f"=== coverage sweep for {name} (CR = 0.95) ===")
    rows = []
    base_time = run.analysis_time(0.0)
    for ca in CA_SWEEP:
        agg = run.aggregate_classification(ca)
        orig, hpg, red = run.graph_sizes(ca)
        rows.append(
            [
                f"{ca:.4g}",
                run.hot_path_count(ca),
                f"{(hpg - orig) / orig:+.0%}",
                f"{(red - orig) / orig:+.0%}",
                f"{agg.constant_increase:+.1%}",
                f"{run.analysis_time(ca) / base_time:.1f}x",
            ]
        )
    print(
        format_table(
            [
                "CA",
                "hot paths",
                "HPG growth",
                "reduced growth",
                "constants",
                "analysis time",
            ],
            rows,
        )
    )

    print(f"\n=== reduction cutoff sweep for {name} (CA = 0.97) ===")
    rows = []
    for cr in (0.0, 0.5, 0.8, 0.95, 1.0):
        sizes = run.graph_sizes(0.97, cr)
        agg = run.aggregate_classification(0.97, cr)
        rows.append(
            [
                f"{cr:.2f}",
                sizes[1],
                sizes[2],
                agg.qualified_nonlocal,
            ]
        )
    print(
        format_table(
            ["CR", "traced vertices", "reduced vertices", "qualified constants"],
            rows,
        )
    )
    print(
        "\nCR trades graph size against preserved constants: at CR = 0 every"
        "\nduplicate merges back (sizes return toward the original CFG); at"
        "\nCR = 1 every vertex carrying any constant is protected."
    )


if __name__ == "__main__":
    main()
