"""Constant-classification tests (Figures 7, 10, 13)."""

import pytest

from repro.stats import (
    classify_constants,
    constant_distribution,
    cumulative_coverage,
)


class TestRunningExampleClassification:
    @pytest.fixture(scope="class")
    def classification(self, example_qualified, example_run):
        return classify_constants(
            example_qualified,
            example_run.profiles["work"],
            example_run.site_stats,
        )

    def test_totals_positive(self, classification):
        assert classification.total_dynamic > 0

    def test_locals_are_the_assignments(self, classification, example_run):
        """A, C, D, F, G each execute one local constant assignment; their
        dynamic weight equals those blocks' frequencies."""
        freq = example_run.profiles["work"].block_frequencies()
        expected = (
            freq["A"] + freq["C"] + freq["D"] + freq["F"] + freq["G"]
        )
        assert classification.local == expected

    def test_wz_finds_no_nonlocal_constants_here(self, classification):
        """'Without path qualification, only the assignments of constants
        are constant instructions' — so the non-local iterative count is 0."""
        assert classification.iterative_nonlocal == 0

    def test_qualified_nonlocal_matches_hand_count(self, classification):
        """x=a+b at four duplicates (frequencies 70/30/105/30 = 235), i++ at
        two (70+30 = 100), n=i at one (70): 405 dynamic qualified
        constants."""
        assert classification.qualified_nonlocal == 405

    def test_improvement_ratio_infinite_when_baseline_zero(self, classification):
        assert classification.improvement_ratio == float("inf")

    def test_variable_constants_detected(self, classification):
        """x = a+b has different constant values at different duplicates, so
        its qualified executions land in Variable."""
        assert classification.variable == 235  # x at weights 70+30+105+30

    def test_mixed_constants_detected(self, classification):
        """i++ (100) and n=i (70) are constant at some duplicates and
        unknown at others — the paper's "neither Identical nor Variable"
        majority."""
        assert classification.mixed == 170

    def test_unknowable_includes_loads(self, classification, example_run):
        """Every load result is tainted, so unknowable >= dynamic loads."""
        freq = example_run.profiles["work"].block_frequencies()
        loads = freq["B"] + freq["E"] + freq["H"]
        assert classification.unknowable >= loads

    def test_constant_increase_positive(self, classification):
        assert classification.constant_increase > 0

    def test_untraced_classification_collapses_to_baseline(
        self, example_module, example_run
    ):
        from repro.core import run_qualified

        qa = run_qualified(
            example_module.function("work"), example_run.profiles["work"], ca=0.0
        )
        c = classify_constants(qa, example_run.profiles["work"])
        assert c.qualified_nonlocal == c.iterative_nonlocal
        assert c.qualified_constants == c.baseline_constants
        assert c.variable == 0 and c.mixed == 0 and c.identical_extra == 0
        assert c.unknowable == 0  # no site stats supplied


class TestDistribution:
    def test_constant_distribution_sorted_desc(self):
        weights = {("a", 0): 5, ("b", 0): 50, ("c", 0): 0, ("d", 0): 10}
        assert constant_distribution(weights) == [50, 10, 5]

    def test_cumulative_coverage(self):
        dist = [50, 30, 20]
        cov = cumulative_coverage(dist)
        assert cov == [0.5, 0.8, 1.0]

    def test_cumulative_coverage_empty(self):
        assert cumulative_coverage([]) == []

    def test_example_distribution_is_concentrated(self, example_qualified):
        """Figure 7's point: few vertices carry nearly all non-local
        constants."""
        dist = constant_distribution(example_qualified.reduction.weights)
        cov = cumulative_coverage(dist)
        assert len(dist) == 5
        assert cov[1] > 0.5  # two vertices already cover most of it
