"""Property-based solver tests: every worklist strategy reaches the same
fixpoint.

A seeded random-function generator produces small IR routines whose CFGs
include retreating edges and irreducible regions (branch targets are drawn
freely, so loops entered mid-body arise regularly — the shape the paper says
tracing produces).  For reaching definitions and constant propagation the
RPO-priority solver, the legacy LIFO solver, and the reference round-robin
solver must agree vertex-for-vertex, the result must be a true fixpoint
(one more transfer+meet pass changes nothing), and every computed value must
sit at or below the lattice top.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dataflow import GraphView, solve
from repro.dataflow.framework import (
    SOLVER_STRATEGIES,
    DataflowProblem,
    SolverBudgetExceeded,
    priority_order,
)
from repro.dataflow.problems import (
    ConstantPropagation,
    LiveVariables,
    ReachingDefinitions,
)
from repro.ir import IRBuilder

VARS = ("a", "b", "c", "p", "q")
PARAMS = ("p", "q")


# -- generator ----------------------------------------------------------------


@st.composite
def random_functions(draw, max_blocks: int = 7):
    """A structurally valid random routine.

    Branch/jump targets are drawn from *all* blocks, so back edges and
    multi-entry (irreducible) loop shapes occur; the last block always
    returns so the CFG has an exit edge.
    """
    n = draw(st.integers(min_value=1, max_value=max_blocks))
    labels = [f"b{i}" for i in range(n)]
    b = IRBuilder("f", PARAMS)

    def operand():
        if draw(st.booleans()):
            return draw(st.sampled_from(VARS))
        return draw(st.integers(min_value=-4, max_value=4))

    for i, label in enumerate(labels):
        b.block(label)
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            dest = draw(st.sampled_from(VARS))
            kind = draw(st.integers(min_value=0, max_value=2))
            if kind == 0:
                b.assign(dest, draw(st.integers(min_value=-4, max_value=4)))
            elif kind == 1:
                b.binop(
                    dest,
                    draw(st.sampled_from(("add", "mul"))),
                    operand(),
                    operand(),
                )
            else:
                b.assign(dest, draw(st.sampled_from(VARS)))
        if i == n - 1 or draw(st.integers(min_value=0, max_value=5)) == 0:
            b.ret(draw(st.sampled_from(VARS)))
        elif draw(st.booleans()):
            b.jump(labels[draw(st.integers(min_value=0, max_value=n - 1))])
        else:
            t = labels[draw(st.integers(min_value=0, max_value=n - 1))]
            f = labels[draw(st.integers(min_value=0, max_value=n - 1))]
            if t == f:
                b.jump(t)
            else:
                b.branch(draw(st.sampled_from(VARS)), t, f)
    return b.finish()


def _problems(fn, view):
    return [
        ReachingDefinitions(fn.params, view.cfg.entry),
        ConstantPropagation(fn.params),
    ]


def _manual_relax(problem, view, sol, vertex):
    """One more transfer+meet pass at ``vertex``; the resulting output."""
    cfg = view.cfg
    forward = problem.direction == "forward"
    start = cfg.entry if forward else cfg.exit
    prev_of = cfg.preds if forward else cfg.succs
    preds = prev_of(vertex)
    if vertex == start:
        acc = problem.boundary()
        for p in preds:
            acc = problem.meet(acc, sol.value_out[p])
    elif preds:
        acc = sol.value_out[preds[0]]
        for p in preds[1:]:
            acc = problem.meet(acc, sol.value_out[p])
    else:
        acc = sol.value_in[vertex]
    return acc, problem.transfer(vertex, view.block_of(vertex), acc)


# -- properties ---------------------------------------------------------------


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(fn=random_functions())
def test_all_strategies_reach_the_same_fixpoint(fn):
    view = GraphView.from_function(fn)
    for problem in _problems(fn, view):
        solutions = {
            s: solve(problem, view, strategy=s) for s in SOLVER_STRATEGIES
        }
        reference = solutions["round_robin"]
        for name, sol in solutions.items():
            for v in view.cfg.vertices:
                assert problem.equal(sol.value_in[v], reference.value_in[v]), (
                    name,
                    v,
                )
                assert problem.equal(sol.value_out[v], reference.value_out[v]), (
                    name,
                    v,
                )


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(fn=random_functions())
def test_solution_is_an_idempotent_fixpoint_below_top(fn):
    view = GraphView.from_function(fn)
    for problem in _problems(fn, view):
        sol = solve(problem, view)
        top = problem.top()
        for v in view.cfg.vertices:
            new_in, new_out = _manual_relax(problem, view, sol, v)
            assert problem.equal(new_in, sol.value_in[v]), v
            assert problem.equal(new_out, sol.value_out[v]), v
            # The fixpoint sits at or below the lattice top.
            assert problem.equal(
                problem.meet(sol.value_out[v], top), sol.value_out[v]
            ), v


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(fn=random_functions())
def test_priority_order_is_a_permutation(fn):
    cfg = GraphView.from_function(fn).cfg
    for forward in (True, False):
        prio = priority_order(cfg, forward)
        assert set(prio) == set(cfg.vertices)
        assert sorted(prio.values()) == list(range(cfg.num_vertices))
    assert priority_order(cfg, True)[cfg.entry] == 0


# -- deterministic cases ------------------------------------------------------


def _irreducible_fn():
    """The classic two-entry loop: b and c jump into each other's loop."""
    b = IRBuilder("f", ["p"])
    b.block("a")
    b.branch("p", "b", "c")
    b.block("b")
    b.assign("x", 1)
    b.branch("p", "c", "out")
    b.block("c")
    b.assign("y", 2)
    b.jump("b")
    b.block("out")
    b.ret("x")
    return b.finish()


def test_strategies_agree_on_irreducible_graph():
    fn = _irreducible_fn()
    view = GraphView.from_function(fn)
    assert not view.cfg.is_reducible()
    assert view.cfg.retreating_edges()
    for problem in _problems(fn, view) + [LiveVariables()]:
        sols = [solve(problem, view, strategy=s) for s in SOLVER_STRATEGIES]
        for sol in sols[1:]:
            for v in view.cfg.vertices:
                assert problem.equal(sol.value_out[v], sols[0].value_out[v])


def test_rpo_does_less_work_than_lifo_on_a_chain():
    b = IRBuilder("f", ["p"])
    n = 30
    for i in range(n):
        b.block(f"b{i}")
        b.assign("x", i)
        if i == n - 1:
            b.ret("x")
        else:
            b.jump(f"b{i + 1}")
    fn = b.finish()
    view = GraphView.from_function(fn)
    problem = ReachingDefinitions(fn.params, view.cfg.entry)
    rpo = solve(problem, view, strategy="rpo", collect_stats=True)
    lifo = solve(problem, view, strategy="lifo", collect_stats=True)
    # RPO relaxes each chain vertex at most twice (once to leave top, once to
    # confirm); the stack order pays a quadratic-ish revisit bill instead.
    assert rpo.stats.max_visits_per_vertex <= 2
    assert rpo.stats.visits < lifo.stats.visits


def test_budget_trips_on_non_monotone_transfer():
    class Diverging(DataflowProblem):
        direction = "forward"

        def top(self):
            return 0

        def meet(self, a, b):
            return max(a, b)

        def boundary(self):
            return 0

        def transfer(self, vertex, block, value):
            return value + 1  # infinite ascending chain: never stabilizes

    b = IRBuilder("f", [])
    b.block("entry")
    b.jump("entry")
    fn = b.finish()
    view = GraphView.from_function(fn)
    with pytest.raises(SolverBudgetExceeded):
        solve(Diverging(), view, max_visits=10)


def test_bad_strategy_rejected():
    fn = _irreducible_fn()
    view = GraphView.from_function(fn)
    with pytest.raises(ValueError):
        solve(LiveVariables(), view, strategy="fifo")
