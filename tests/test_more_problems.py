"""Sign analysis and very-busy expressions — including the qualified-sign
payoff on the running example."""

from repro.core import qualify_problem
from repro.dataflow import GraphView, solve
from repro.dataflow.problems import SignAnalysis, VeryBusyExpressions
from repro.dataflow.problems.available_exprs import expression_of
from repro.dataflow.problems.signs import (
    BOT,
    NEG,
    POS,
    TOP,
    ZERO,
    _env_get,
    add_signs,
    meet_sign,
    mul_signs,
    sign_of,
)
from repro.ir import BinOp, IRBuilder, Var


class TestSignAlgebra:
    def test_sign_of(self):
        assert sign_of(5) == POS and sign_of(-1) == NEG and sign_of(0) == ZERO

    def test_meet(self):
        assert meet_sign(POS, POS) == POS
        assert meet_sign(POS, NEG) == BOT
        assert meet_sign(TOP, NEG) == NEG
        assert meet_sign(BOT, POS) == BOT

    def test_add_table(self):
        assert add_signs(POS, POS) == POS
        assert add_signs(POS, NEG) == BOT
        assert add_signs(ZERO, NEG) == NEG
        assert add_signs(BOT, POS) == BOT

    def test_mul_table(self):
        assert mul_signs(NEG, NEG) == POS
        assert mul_signs(NEG, POS) == NEG
        assert mul_signs(ZERO, NEG) == ZERO
        assert mul_signs(TOP, POS) == TOP

    def test_soundness_against_concrete_values(self):
        import itertools

        samples = {POS: [1, 7], NEG: [-1, -3], ZERO: [0]}
        for sa, sb in itertools.product(samples, repeat=2):
            for a in samples[sa]:
                for b in samples[sb]:
                    if add_signs(sa, sb) not in (BOT, TOP):
                        assert sign_of(a + b) == add_signs(sa, sb)
                    assert sign_of(a * b) == mul_signs(sa, sb)


class TestSignAnalysis:
    def _fn(self):
        b = IRBuilder("f", ["p"])
        b.block("entry")
        b.assign("x", 3)
        b.branch("p", "l", "r")
        b.block("l")
        b.assign("y", 2)
        b.jump("join")
        b.block("r")
        b.assign("y", 9)
        b.jump("join")
        b.block("join")
        b.binop("z", "mul", "x", "y")
        b.binop("w", "add", "z", "p")
        b.ret("w")
        return b.finish()

    def test_signs_survive_merges_when_consistent(self):
        fn = self._fn()
        view = GraphView.from_function(fn)
        sol = solve(SignAnalysis(fn.params), view)
        env = sol.value_in["join"]
        assert _env_get(env, "x") == POS
        assert _env_get(env, "y") == POS  # 2 and 9 agree on sign
        out = sol.value_out["join"]
        assert _env_get(out, "z") == POS  # pos * pos
        assert _env_get(out, "w") == BOT  # p unknown

    def test_qualified_signs_beat_merged_signs(
        self, example_module, example_profile
    ):
        """On the running example `x = a + b` has unknown operands for plain
        sign analysis only if signs disagreed — here both 'a' assignments are
        positive, so even plain analysis wins; the qualified payoff appears
        for 'i': negative vs positive legs exist in general.  Use a purpose-
        built check: plain analysis loses i's ZERO at H; qualification keeps
        ZERO on first-iteration duplicates."""
        fn = example_module.function("work")
        qs = qualify_problem(
            lambda view: SignAnalysis(fn.params),
            fn,
            example_profile,
            ca=1.0,
        )
        plain = _env_get(qs.baseline_in("H"), "i")
        assert plain == BOT  # 0 at entry meets positive loop-carried values
        zero_dups = [
            dup
            for dup in qs.duplicates("H")
            if _env_get(qs.qualified_in(dup), "i") == ZERO
        ]
        assert zero_dups, "some duplicate of H sees i = 0 exactly"


class TestVeryBusyExpressions:
    def test_expression_anticipated_on_both_branches(self):
        b = IRBuilder("f", ["p", "a", "b"])
        b.block("entry")
        b.branch("p", "l", "r")
        b.block("l")
        b.binop("x", "sub", "a", "b")
        b.ret("x")
        b.block("r")
        b.binop("y", "sub", "a", "b")
        b.ret("y")
        fn = b.finish()
        sol = solve(VeryBusyExpressions(), GraphView.from_function(fn))
        expr = expression_of(BinOp("t", "sub", Var("a"), Var("b")))
        assert expr in sol.value_out["entry"]

    def test_not_anticipated_when_one_branch_skips(self):
        b = IRBuilder("f", ["p", "a", "b"])
        b.block("entry")
        b.branch("p", "l", "r")
        b.block("l")
        b.binop("x", "sub", "a", "b")
        b.ret("x")
        b.block("r")
        b.ret("a")
        fn = b.finish()
        sol = solve(VeryBusyExpressions(), GraphView.from_function(fn))
        expr = expression_of(BinOp("t", "sub", Var("a"), Var("b")))
        assert expr not in sol.value_out["entry"]

    def test_killed_by_operand_redefinition(self):
        b = IRBuilder("f", ["a", "b"])
        b.block("entry")
        b.load("a", "m", 0)
        b.binop("x", "sub", "a", "b")
        b.ret("x")
        fn = b.finish()
        sol = solve(VeryBusyExpressions(), GraphView.from_function(fn))
        expr = expression_of(BinOp("t", "sub", Var("a"), Var("b")))
        # The load redefines `a` before the use, so the expression is not
        # anticipated at the block's entry.
        assert expr not in sol.value_out["entry"]
