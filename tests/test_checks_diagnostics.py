"""Tests for the diagnostics data model (``repro.checks.diagnostics``)."""

import json

import pytest

from repro.checks import Diagnostic, Diagnostics, Severity


def make(code="IR001", severity=Severity.ERROR, **kw):
    kw.setdefault("message", "something broke")
    return Diagnostic(code=code, severity=severity, **kw)


class TestDiagnostic:
    def test_location_parts(self):
        d = make(function="work", block="B", instr=3)
        assert d.location() == "work:B:3"

    def test_location_empty(self):
        assert make().location() == ""

    def test_format_includes_code_severity_and_hint(self):
        d = make(
            code="PROF004",
            severity=Severity.ERROR,
            message="flow conservation violated",
            function="work",
            block="B",
            hint="check split_trace",
        )
        text = d.format()
        assert "PROF004" in text
        assert "error" in text
        assert "work:B" in text
        assert "check split_trace" in text

    def test_roundtrip_dict(self):
        d = make(code="LINT002", severity=Severity.WARNING, block="7")
        again = Diagnostic.from_dict(d.to_dict())
        assert again == d
        assert isinstance(again.severity, Severity)

    def test_frozen_and_hashable(self):
        d = make()
        with pytest.raises(Exception):
            d.code = "IR002"
        assert len({d, make()}) == 1


class TestDiagnostics:
    def two(self):
        out = Diagnostics()
        out.emit("IR001", Severity.ERROR, "bad", function="f")
        out.emit("LINT002", Severity.WARNING, "dead store", function="g")
        return out

    def test_emit_and_partition(self):
        out = self.two()
        assert [d.code for d in out.errors] == ["IR001"]
        assert [d.code for d in out.warnings] == ["LINT002"]
        assert out.has_errors

    def test_codes_and_counts(self):
        out = self.two()
        assert out.codes() == {"IR001", "LINT002"}
        assert out.counts() == {"error": 1, "warning": 1, "info": 0}

    def test_filter(self):
        out = self.two()
        assert [d.code for d in out.filter(code="IR001")] == ["IR001"]
        assert (
            [d.code for d in out.filter(severity=Severity.WARNING)]
            == ["LINT002"]
        )

    def test_summary_and_render(self):
        out = self.two()
        assert "1 error" in out.summary()
        text = out.render_text()
        assert "IR001" in text and "LINT002" in text

    def test_render_text_limit(self):
        out = Diagnostics()
        for i in range(5):
            out.emit("IR001", Severity.ERROR, f"bad {i}")
        text = out.render_text(limit=2)
        assert "bad 0" in text and "bad 1" in text
        assert "bad 4" not in text
        assert "and 3 more" in text

    def test_json_roundtrip(self):
        out = self.two()
        parsed = json.loads(out.to_json())
        assert len(parsed["diagnostics"]) == 2
        assert parsed["counts"]["error"] == 1
        again = Diagnostics.from_dicts(parsed["diagnostics"])
        assert list(again.records) == list(out.records)

    def test_extend(self):
        a, b = self.two(), self.two()
        a.extend(b)
        assert len(a.records) == 4

    def test_exit_codes(self):
        clean = Diagnostics()
        assert clean.exit_code() == 0
        warn_only = Diagnostics()
        warn_only.emit("LINT002", Severity.WARNING, "dead store")
        assert warn_only.exit_code() == 0
        assert warn_only.exit_code(fail_on="warning") == 1
        assert warn_only.exit_code(fail_on="never") == 0
        errs = self.two()
        assert errs.exit_code() == 2
        assert errs.exit_code(fail_on="never") == 0
