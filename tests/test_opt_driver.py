"""Whole-module optimization driver tests."""

from repro.interp import Interpreter, run_module
from repro.opt import optimize_module
from repro.workloads.running_example import (
    running_example_module,
    training_run_inputs,
)


def setup_run():
    module = running_example_module()
    n, inputs = training_run_inputs()
    run = Interpreter(module).run([n], inputs)
    return module, n, inputs, run


class TestOptimizeModule:
    def test_behaviour_preserved(self):
        module, n, inputs, run = setup_run()
        optimized, _ = optimize_module(module, run.profiles)
        result = run_module(optimized, args=[n], inputs=inputs, profile_mode=None)
        assert result.output == run.output
        assert result.return_value == run.return_value

    def test_cost_improves(self):
        module, n, inputs, run = setup_run()
        optimized, _ = optimize_module(module, run.profiles, ca=1.0)
        result = run_module(optimized, args=[n], inputs=inputs, profile_mode=None)
        assert result.cost < run.cost

    def test_input_module_untouched(self):
        module, n, inputs, run = setup_run()
        before = str(module)
        optimize_module(module, run.profiles)
        assert str(module) == before

    def test_reports_cover_all_functions(self):
        module, n, inputs, run = setup_run()
        _, reports = optimize_module(module, run.profiles)
        assert {r.name for r in reports} == set(module.functions)
        work = next(r for r in reports if r.name == "work")
        assert work.traced
        assert work.hot_paths > 0
        assert work.blocks_after >= work.blocks_before  # duplication

    def test_missing_profile_falls_back_to_baseline(self):
        module, n, inputs, run = setup_run()
        optimized, reports = optimize_module(module, {})  # no profiles at all
        for report in reports:
            assert not report.traced
        result = run_module(optimized, args=[n], inputs=inputs, profile_mode=None)
        assert result.output == run.output

    def test_pass_toggles(self):
        module, n, inputs, run = setup_run()
        plain, _ = optimize_module(
            module,
            run.profiles,
            dce=False,
            straighten_blocks=False,
            layout=False,
        )
        result = run_module(plain, args=[n], inputs=inputs, profile_mode=None)
        assert result.output == run.output

    def test_arrays_carried_over(self):
        module, n, inputs, run = setup_run()
        optimized, _ = optimize_module(module, run.profiles)
        assert set(optimized.arrays) == set(module.arrays)
