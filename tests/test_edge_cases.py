"""Edge-case tests across modules: degenerate reductions, cost-model
details, pipeline bookkeeping, and API error paths."""

import pytest

from repro.core import run_qualified
from repro.interp import CostModel, DEFAULT_COST_MODEL, run_module
from repro.ir import (
    Branch,
    IRBuilder,
    Jump,
    Load,
    Module,
    Print,
    Ret,
    Store,
    Var,
    as_operand,
)


class TestReductionDegenerateCases:
    def test_cr_zero_collapses_to_original_graph(
        self, example_module, example_profile
    ):
        """With no hot vertices every duplicate of a vertex is compatible,
        and the quotient is exactly the original CFG."""
        fn = example_module.function("work")
        qa = run_qualified(fn, example_profile, ca=1.0, cr=0.0)
        assert qa.reduction.hot_vertices == ()
        assert qa.reduced_size == qa.original_size

    def test_cr_zero_still_behaves(self, example_module, example_profile):
        from repro.opt import materialize
        from repro.workloads.running_example import training_run_inputs
        from repro.interp import Interpreter

        fn = example_module.function("work")
        qa = run_qualified(fn, example_profile, ca=1.0, cr=0.0)
        rebuilt = materialize(qa.reduced, qa.reduced_analysis, fold=True)
        module = example_module.copy()
        del module.functions["work"]
        module.add_function(rebuilt)
        n, inputs = training_run_inputs()
        ref = Interpreter(example_module, profile_mode=None).run([n], inputs)
        out = Interpreter(module, profile_mode=None).run([n], inputs)
        assert out.output == ref.output

    def test_cr_one_protects_every_constant_vertex(
        self, example_module, example_profile
    ):
        fn = example_module.function("work")
        qa = run_qualified(fn, example_profile, ca=1.0, cr=1.0)
        weights = qa.reduction.weights
        hot = set(qa.reduction.hot_vertices)
        assert hot == {v for v, w in weights.items() if w > 0}


class TestPipelineBookkeeping:
    def test_timing_phases_recorded(self, example_qualified):
        qa = example_qualified
        for phase in (
            "baseline",
            "automaton",
            "tracing",
            "profile_translation",
            "hpg_analysis",
            "reduction",
            "reduced_analysis",
        ):
            assert phase in qa.timings
            assert qa.timings[phase] >= 0.0
        assert qa.analysis_time == pytest.approx(sum(qa.timings.values()))

    def test_explicit_cfg_and_recording_accepted(
        self, example_module, example_profile
    ):
        from repro.ir import Cfg
        from repro.profiles import recording_edges

        fn = example_module.function("work")
        cfg = Cfg.from_function(fn)
        recording = recording_edges(cfg)
        qa = run_qualified(
            fn, example_profile, ca=1.0, cfg=cfg, recording=recording
        )
        assert qa.cfg is cfg
        assert qa.recording is recording

    def test_final_profile_untraced_is_train(self, example_module, example_profile):
        fn = example_module.function("work")
        qa = run_qualified(fn, example_profile, ca=0.0)
        assert qa.final_profile() is example_profile


class TestCostModelDetails:
    def test_every_instruction_kind_priced(self):
        cm = DEFAULT_COST_MODEL
        from repro.ir import Assign, BinOp, Call, Const, UnOp

        assert cm.instr_cost(Assign("x", Const(1))) == cm.assign
        assert cm.instr_cost(BinOp("x", "add", Const(1), Const(2))) == cm.binop
        assert cm.instr_cost(BinOp("x", "mul", Const(1), Const(2))) == cm.mul
        assert cm.instr_cost(BinOp("x", "mod", Const(1), Const(2))) == cm.div
        assert cm.instr_cost(UnOp("x", "neg", Const(1))) == cm.unop
        assert cm.instr_cost(Load("x", "m", Const(0))) == cm.load
        assert cm.instr_cost(Store("m", Const(0), Const(1))) == cm.store
        assert cm.instr_cost(Call("x", "f", ())) == cm.call
        assert cm.instr_cost(Print((Const(1),))) == cm.print_

    def test_unknown_instruction_rejected(self):
        with pytest.raises(TypeError):
            DEFAULT_COST_MODEL.instr_cost(object())

    def test_transfer_costs(self):
        cm = CostModel(branch=2, jump=0, ret=2, taken_penalty=5)
        branch = Branch(Var("c"), "a", "b")
        assert cm.transfer_cost(branch, "a", "a") == 2  # fall-through
        assert cm.transfer_cost(branch, "a", "b") == 7  # taken
        jump = Jump("a")
        assert cm.transfer_cost(jump, "a", "a") == 0
        assert cm.transfer_cost(jump, "a", "z") == 5
        assert cm.transfer_cost(Ret(), None, "a") == 2

    def test_custom_cost_model_flows_through(self):
        b = IRBuilder("main")
        b.block("entry")
        b.binop("x", "mul", 2, 3)
        b.ret("x")
        m = Module()
        m.add_function(b.finish())
        cheap = run_module(m, cost_model=CostModel(mul=1, ret=0)).cost
        pricey = run_module(m, cost_model=CostModel(mul=50, ret=0)).cost
        assert pricey - cheap == 49


class TestOperandCoercion:
    def test_bool_becomes_int_constant(self):
        op = as_operand(True)
        assert op.value == 1

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_operand(3.14)


class TestInterpreterDeterminism:
    def test_identical_runs_identical_results(self, example_module):
        from repro.workloads.running_example import training_run_inputs
        from repro.interp import Interpreter

        n, inputs = training_run_inputs()
        interp = Interpreter(example_module)
        a = interp.run([n], inputs)
        b = interp.run([n], inputs)
        assert a.output == b.output
        assert a.cost == b.cost
        assert a.profiles == b.profiles
        assert a.block_counts == b.block_counts


class TestHarnessBuilders:
    def test_base_and_optimized_modules_validate(self, compress_run):
        from repro.ir import validate_module

        validate_module(compress_run.build_base_module())
        validate_module(compress_run.build_optimized_module())

    def test_fresh_module_shares_array_decls(self, compress_run):
        fresh = compress_run._fresh_module()
        assert set(fresh.arrays) == set(compress_run.module.arrays)
        assert not fresh.functions

    def test_function_names(self, compress_run):
        assert set(compress_run.function_names()) == set(
            compress_run.module.functions
        )
