"""Concurrent access to one :class:`ArtifactCache` (and one cache dir).

The service hands a single cache to every request worker, so the store must
survive threaded hit/miss/store races, torn on-disk artifacts, and multiple
cache *instances* (separate daemons, sweep worker processes) sharing a
directory — without exceptions, without duplicate computations for a key
(single-flight), and with artifacts that read back bit-identical.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.pipeline import ArtifactCache, content_key

KIND = "module"


def _artifact(seed: int) -> dict:
    # Nested, orderable structure so byte-comparison of pickles is fair.
    return {"seed": seed, "rows": [[seed, i, seed * i] for i in range(50)]}


def test_single_flight_computes_once_per_key(tmp_path):
    """N concurrent memo() calls for one key run the computation once; the
    other callers block and share the artifact (counted as hits)."""
    cache = ArtifactCache(tmp_path)
    computed = []
    release = threading.Event()

    def compute():
        computed.append(1)
        assert release.wait(30)
        return _artifact(7)

    key = content_key("one")
    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = [pool.submit(cache.memo, KIND, key, compute) for _ in range(8)]
        release.set()
        results = [f.result(timeout=60) for f in futures]
    assert len(computed) == 1
    assert all(r is results[0] for r in results)
    assert cache.stats.misses[KIND] == 1
    assert cache.stats.hits[KIND] == 7


def test_failed_leader_elects_a_new_one(tmp_path):
    """If the computing thread raises, waiting threads retry instead of
    hanging or caching the failure."""
    cache = ArtifactCache(tmp_path)
    calls = []
    lock = threading.Lock()

    def flaky():
        with lock:
            calls.append(1)
            attempt = len(calls)
        if attempt == 1:
            raise RuntimeError("leader died")
        return _artifact(1)

    key = content_key("flaky")
    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = [pool.submit(cache.memo, KIND, key, flaky) for _ in range(4)]
        outcomes = []
        for f in futures:
            try:
                outcomes.append(("ok", f.result(timeout=60)))
            except RuntimeError as exc:
                outcomes.append(("err", str(exc)))
    assert sum(1 for tag, _ in outcomes if tag == "err") == 1
    good = [value for tag, value in outcomes if tag == "ok"]
    assert len(good) == 3 and all(v == _artifact(1) for v in good)
    assert len(calls) == 2  # one failure, one successful recompute


def test_threaded_mixed_keys_bit_identical_on_disk(tmp_path):
    """Threads race over overlapping keys; every artifact lands on disk
    complete, and a fresh cache instance reads back identical bytes."""
    cache = ArtifactCache(tmp_path)
    keys = [content_key("k", i) for i in range(10)]
    compute_counts = [0] * len(keys)
    count_lock = threading.Lock()

    def job(n: int):
        i = n % len(keys)

        def compute():
            with count_lock:
                compute_counts[i] += 1
            return _artifact(i)

        return cache.memo(KIND, keys[i], compute)

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(job, range(80)))
    assert all(results[n] == _artifact(n % len(keys)) for n in range(80))
    assert compute_counts == [1] * len(keys)  # single-flight per key
    snap = cache.stats_snapshot()
    assert snap.misses[KIND] == len(keys)
    assert snap.hits[KIND] == 80 - len(keys)
    assert not list(tmp_path.rglob("*.tmp"))  # atomic stores leave no debris

    fresh = ArtifactCache(tmp_path)
    for i, key in enumerate(keys):
        reloaded = fresh.memo(KIND, key, lambda: pytest.fail("should hit disk"))
        assert pickle.dumps(reloaded) == pickle.dumps(_artifact(i))
    assert fresh.stats.hits[KIND] == len(keys)
    assert KIND not in fresh.stats.misses


def test_two_instances_share_one_directory(tmp_path):
    """Two caches over the same root (two daemons, or daemon + sweep
    workers) interleave freely; each key computes at most once per
    instance's memory layer and disk serves the rest."""
    a, b = ArtifactCache(tmp_path), ArtifactCache(tmp_path)
    keys = [content_key("shared", i) for i in range(6)]

    def worker(cache, offset):
        out = []
        for n in range(24):
            i = (n + offset) % len(keys)
            out.append(cache.memo(KIND, keys[i], lambda i=i: _artifact(i)))
        return out

    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = [
            pool.submit(worker, cache, off)
            for cache in (a, b)
            for off in (0, 3)
        ]
        for f in futures:
            for i, value in enumerate(f.result(timeout=120)):
                assert value["seed"] in range(len(keys))
    # Across both instances every key was computed at most twice (once per
    # process-like instance, when disk didn't win the race) — never 4x.
    total = a.stats.misses.get(KIND, 0) + b.stats.misses.get(KIND, 0)
    assert total <= 2 * len(keys)
    assert a.stats.misses.get(KIND, 0) >= 0  # and nothing raised


def test_torn_disk_artifact_reads_as_miss_and_heals(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = content_key("torn")
    value = cache.memo(KIND, key, lambda: _artifact(3))
    path = cache._path(KIND, key)
    healthy = path.read_bytes()

    # Truncate mid-pickle: the classic torn concurrent write.
    path.write_bytes(healthy[: len(healthy) // 2])
    fresh = ArtifactCache(tmp_path)
    recomputed = fresh.memo(KIND, key, lambda: _artifact(3))
    assert recomputed == value
    assert fresh.stats.corrupt[KIND] == 1
    assert fresh.stats.misses[KIND] == 1
    # The recomputation rewrote the artifact atomically: it reads clean now.
    again = ArtifactCache(tmp_path)
    assert again.memo(KIND, key, lambda: pytest.fail("not healed")) == value
    assert "corrupt" not in again.stats.summary()


@pytest.mark.parametrize(
    "garbage",
    [b"", b"not a pickle at all", b"\x80\x05garbage."],
    ids=["empty", "text", "bad-opcodes"],
)
def test_garbage_artifacts_count_corrupt(tmp_path, garbage):
    cache = ArtifactCache(tmp_path)
    key = content_key("garbage")
    path = cache._path(KIND, key)
    path.parent.mkdir(parents=True)
    path.write_bytes(garbage)
    assert cache.memo(KIND, key, lambda: _artifact(9)) == _artifact(9)
    assert cache.stats.corrupt[KIND] == 1
    assert "corrupt" in cache.stats.summary()


def test_torn_reads_race_with_writers(tmp_path):
    """Readers over a key that keeps getting corrupted never crash and
    always end with the true artifact."""
    cache = ArtifactCache(tmp_path)
    key = content_key("contested")
    path = cache._path(KIND, key)
    stop = threading.Event()

    def vandal():
        while not stop.is_set():
            try:
                path.write_bytes(b"\x80\x05torn")
            except OSError:
                pass

    thread = threading.Thread(target=vandal)
    thread.start()
    try:
        for _ in range(20):
            fresh = ArtifactCache(tmp_path)
            assert fresh.memo(KIND, key, lambda: _artifact(4)) == _artifact(4)
    finally:
        stop.set()
        thread.join()
    # After the vandal stops, one more recompute persists a clean artifact.
    final = ArtifactCache(tmp_path)
    assert final.memo(KIND, key, lambda: _artifact(4)) == _artifact(4)


def test_stats_snapshot_is_consistent_under_load(tmp_path):
    """stats_snapshot() taken mid-hammer never shows more misses than
    computations that actually started."""
    cache = ArtifactCache(tmp_path)
    computed = []
    lock = threading.Lock()

    def job(n):
        def compute():
            with lock:
                computed.append(n)
            return _artifact(n % 4)

        cache.memo(KIND, content_key("s", n % 4), compute)
        snap = cache.stats_snapshot()
        with lock:
            started = len(computed)
        assert snap.misses.get(KIND, 0) <= started

    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(job, range(64)))
    final = cache.stats_snapshot()
    assert final.misses[KIND] == len(computed) == 4
    assert final.hits[KIND] == 64 - 4
