"""Ball–Larus numbering: bijectivity, regeneration, and agreement between the
increment-based profiler and the trace-splitting oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp.profiler import BallLarusProfiler, TraceProfiler
from repro.ir import Cfg, ENTRY, EXIT
from repro.profiles import (
    BallLarusNumbering,
    recording_edges,
    split_trace,
)

from conftest import random_cfgs, random_walks

import pytest


def diamond_loop() -> tuple[Cfg, frozenset]:
    cfg = Cfg(
        edges=[
            (ENTRY, "a"),
            ("a", "b"),
            ("a", "c"),
            ("b", "d"),
            ("c", "d"),
            ("d", "a"),
            ("d", EXIT),
        ]
    )
    return cfg, recording_edges(cfg)


class TestNumbering:
    def test_num_paths_diamond(self):
        cfg, rec = diamond_loop()
        numbering = BallLarusNumbering(cfg, rec)
        # From a: two ways to d (via b or c), then either the backedge
        # (recording) or the exit edge (recording): 4 paths.
        assert numbering.num_paths_from("a") == 4

    def test_ids_are_a_bijection(self):
        cfg, rec = diamond_loop()
        numbering = BallLarusNumbering(cfg, rec)
        for start in numbering.start_vertices:
            n = numbering.num_paths_from(start)
            seen = set()
            for pid in range(n):
                path = numbering.regenerate(start, pid)
                back = numbering.path_id(path)
                assert back == (start, pid)
                seen.add(tuple(path.vertices))
            assert len(seen) == n

    def test_regenerate_range_checked(self):
        cfg, rec = diamond_loop()
        numbering = BallLarusNumbering(cfg, rec)
        n = numbering.num_paths_from("a")
        with pytest.raises(ValueError):
            numbering.regenerate("a", n)
        with pytest.raises(ValueError):
            numbering.regenerate("a", -1)

    def test_path_id_rejects_malformed_paths(self):
        from repro.profiles import BLPath

        cfg, rec = diamond_loop()
        numbering = BallLarusNumbering(cfg, rec)
        with pytest.raises(ValueError, match="not a recording edge"):
            numbering.path_id(BLPath(("a", "b")))  # (a,b) is not recording

    def test_cyclic_without_recording_rejected(self):
        cfg = Cfg(edges=[(ENTRY, "a"), ("a", "b"), ("b", "a"), ("a", EXIT)])
        with pytest.raises(ValueError, match="cyclic"):
            BallLarusNumbering(cfg, frozenset({(ENTRY, "a"), ("a", EXIT)}))

    def test_total_potential_paths(self):
        cfg, rec = diamond_loop()
        numbering = BallLarusNumbering(cfg, rec)
        assert numbering.total_potential_paths == sum(
            numbering.num_paths_from(s) for s in numbering.start_vertices
        )

    @given(random_cfgs())
    @settings(max_examples=60, deadline=None)
    def test_bijection_on_random_graphs(self, cfg):
        rec = recording_edges(cfg)
        numbering = BallLarusNumbering(cfg, rec)
        for start in numbering.start_vertices:
            n = min(numbering.num_paths_from(start), 50)
            for pid in range(n):
                path = numbering.regenerate(start, pid)
                assert numbering.path_id(path) == (start, pid)
                assert path.edges()[-1] in rec
                for edge in path.edges()[:-1]:
                    assert edge not in rec


class TestProfilerAgreement:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_increment_profiler_equals_oracle(self, data):
        cfg = data.draw(random_cfgs())
        rec = recording_edges(cfg)
        bl = BallLarusProfiler(cfg, rec)
        oracle = TraceProfiler(cfg, rec)
        walks = data.draw(st.integers(min_value=1, max_value=5))
        for _ in range(walks):
            trace = data.draw(random_walks(cfg))
            for profiler in (bl, oracle):
                profiler.enter()
                for u, v in zip(trace, trace[1:]):
                    profiler.edge(u, v)
                profiler.leave()
        assert bl.profile() == oracle.profile()

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_profile_weight_equals_trace_length(self, data):
        """Interior-vertex frequencies partition the trace exactly."""
        cfg = data.draw(random_cfgs())
        rec = recording_edges(cfg)
        trace = data.draw(random_walks(cfg))
        paths = split_trace(trace, rec)
        interiors = [v for p in paths for v in p.interior()]
        # Every trace vertex except the final EXIT is some path's interior.
        assert interiors == trace[1:-1] or interiors == trace[:-1]

    def test_raw_counts_shape(self):
        cfg, rec = diamond_loop()
        bl = BallLarusProfiler(cfg, rec)
        bl.enter()
        for u, v in zip(t := [ENTRY, "a", "b", "d", EXIT], t[1:]):
            bl.edge(u, v)
        bl.leave()
        raw = bl.raw_counts()
        assert len(raw) == 1
        ((start, pid), count), = raw.items()
        assert start == "a" and count == 1
        numbering = BallLarusNumbering(cfg, rec)
        assert numbering.regenerate(start, pid).vertices == ("a", "b", "d", EXIT)
