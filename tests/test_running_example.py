"""The paper's running example, end to end (Figures 1–8).

These tests pin the reproduction to the paper's own numbers: the Figure 2
profile, the constants the paper reports for its Figure 5 hot-path graph
(x = a+b is 6, 5 or 4 at different duplicates of H; i++ is 1 at the
first-iteration copies; n is 1 at the hot copy of I), and the §5 weights.
"""

import pytest

from repro.core import run_qualified
from repro.dataflow import BOT
from repro.ir import EXIT, validate_module
from repro.profiles import BLPath


class TestFigure2Profile:
    def test_profile_counts(self, example_profile):
        expected = {
            ("A", "B", "C", "E", "F", "H", "I", EXIT): 70,
            ("A", "B", "D", "E", "F", "H", "B"): 30,
            ("B", "D", "E", "G", "H", "B"): 105,
            ("B", "D", "E", "F", "H", "I", EXIT): 30,
        }
        actual = {p.vertices: c for p, c in example_profile.items()}
        assert actual == expected

    def test_profilers_agree(self, example_run):
        assert example_run.profiles["work"] == example_run.trace_profiles["work"]

    def test_module_validates(self, example_module):
        validate_module(example_module)


class TestBaseline:
    def test_wz_finds_only_the_assignments(self, example_qualified):
        """'Without path qualification, only the assignments of constants
        are constant instructions.'"""
        qa = example_qualified
        consts = {
            v: qa.baseline.pure_constant_sites(v)
            for v in qa.cfg.vertices
            if qa.baseline.pure_constant_sites(v)
        }
        assert consts == {
            "A": {0: 0},  # i = 0
            "C": {0: 2},  # a = 2
            "D": {0: 1},  # a = 1
            "F": {0: 4},  # b = 4
            "G": {0: 3},  # b = 3
        }

    def test_x_is_unknown_at_h(self, example_qualified):
        qa = example_qualified
        assert qa.baseline.site_values("H")[0] is BOT  # x = a + b
        assert qa.baseline.site_values("H")[2] is BOT  # i = i + 1


class TestHotPathGraphConstants:
    def test_the_papers_constants_appear(self, example_qualified):
        """x = a+b is 6 at one duplicate of H, 5 at two, 4 at one; i++ is 1
        at the two first-iteration duplicates; n = 1 at one duplicate of I."""
        qa = example_qualified
        x_values = sorted(
            consts[0]
            for v in qa.hpg.cfg.vertices
            if v[0] == "H" and 0 in (consts := qa.hpg_analysis.pure_constant_sites(v))
        )
        assert x_values == [4, 5, 5, 6]

        i_plus_plus = [
            consts[2]
            for v in qa.hpg.cfg.vertices
            if v[0] == "H" and 2 in (consts := qa.hpg_analysis.pure_constant_sites(v))
        ]
        assert i_plus_plus == [1, 1]

        n_values = [
            consts[0]
            for v in qa.hpg.cfg.vertices
            if v[0] == "I" and 0 in (consts := qa.hpg_analysis.pure_constant_sites(v))
        ]
        assert n_values == [1]

    def test_four_hot_paths_selected_at_full_coverage(self, example_qualified):
        assert len(example_qualified.hot_paths) == 4

    def test_hpg_growth_is_modest(self, example_qualified):
        """9 original blocks; the traced graph isolates 4 hot paths without
        exploding (the paper's Figure 5 is similarly sized)."""
        qa = example_qualified
        assert qa.original_size == 9
        assert 9 < qa.hpg_size <= 30

    def test_qualified_solution_never_below_baseline(self, example_qualified):
        """Theorem 1's corollary: meeting the qualified solutions over the
        duplicates of v is never less precise than... and in particular any
        baseline constant is still a constant at every duplicate."""
        qa = example_qualified
        for v in qa.cfg.vertices:
            base = qa.baseline.pure_constant_sites(v)
            for dup in qa.hpg.duplicates(v):
                if not qa.hpg_analysis.is_executable(dup):
                    continue
                dup_consts = qa.hpg_analysis.pure_constant_sites(dup)
                for idx, value in base.items():
                    assert dup_consts.get(idx) == value


class TestFigure8Reduction:
    def test_paper_example_cutoff(self, example_module, example_profile):
        """With CR chosen so only the two heaviest H copies are hot (the
        paper picks H13/H14), low-value duplicates of H merge."""
        fn = example_module.function("work")
        qa = run_qualified(fn, example_profile, ca=1.0, cr=0.6)
        hot_originals = [v[0] for v in qa.reduction.hot_vertices]
        assert hot_originals == ["H", "H"]  # the 140- and 105-weight copies
        h_class_sizes = sorted(
            len(c) for c in qa.reduction.refined if c[0][0] == "H"
        )
        assert sum(h_class_sizes) == len(qa.hpg.duplicates("H"))
        assert len(h_class_sizes) < len(qa.hpg.duplicates("H"))

    def test_both_hot_h_constants_survive(self, example_module, example_profile):
        fn = example_module.function("work")
        qa = run_qualified(fn, example_profile, ca=1.0, cr=0.6)
        surviving_x = sorted(
            consts[0]
            for v in qa.reduced.cfg.vertices
            if v[0] == "H"
            and 0 in (consts := qa.reduced_analysis.pure_constant_sites(v))
        )
        # 6 (H14-analogue) and 4 (H13-analogue) must survive; the 5s may merge.
        assert 6 in surviving_x and 4 in surviving_x


class TestCa0Degenerates:
    def test_ca_zero_is_plain_wz(self, example_module, example_profile):
        fn = example_module.function("work")
        qa = run_qualified(fn, example_profile, ca=0.0)
        assert not qa.traced
        assert qa.hot_paths == ()
        assert qa.final_analysis() is qa.baseline
        assert qa.hpg_size == qa.original_size == qa.reduced_size

    def test_empty_profile_degenerates(self, example_module):
        from repro.profiles import PathProfile

        fn = example_module.function("work")
        qa = run_qualified(fn, PathProfile(), ca=0.97)
        assert not qa.traced
