"""Parallel-vs-serial equivalence for the sweep driver.

``ParallelDriver`` must be a pure speed knob: running the coverage sweep with
a process pool (``jobs=4``) yields byte-identical figure and table artifacts
to the deterministic serial path (``jobs=1``).  The full-workload check is
marked ``slow``; a two-workload variant keeps the property in the fast tier.
"""

from __future__ import annotations

import pytest

from repro.pipeline import ArtifactCache, ParallelDriver
from repro.workloads import WORKLOAD_NAMES

FAST_WORKLOADS = ("compress95", "li95")
FAST_CAS = (0.0, 0.97)


def _artifacts(jobs, workloads, cas, cache_dir=None):
    driver = ParallelDriver(jobs=jobs, cache_dir=cache_dir)
    return driver.sweep(workloads, cas).artifacts()


def test_rejects_nonpositive_jobs():
    with pytest.raises(ValueError):
        ParallelDriver(jobs=0)


def test_sweep_emits_all_artifacts():
    artifacts = _artifacts(1, FAST_WORKLOADS, FAST_CAS)
    assert set(artifacts) == {"fig9", "fig11", "table1", "table2"}
    for name, text in artifacts.items():
        assert text.strip(), name
        for workload in FAST_WORKLOADS:
            assert workload in text, (name, workload)


def test_parallel_matches_serial_on_fast_subset(tmp_path):
    serial = _artifacts(1, FAST_WORKLOADS, FAST_CAS, tmp_path / "s")
    parallel = _artifacts(2, FAST_WORKLOADS, FAST_CAS, tmp_path / "p")
    assert parallel == serial


def test_parallel_reuses_a_shared_cache(tmp_path):
    cache_dir = tmp_path / "shared"
    first = _artifacts(2, FAST_WORKLOADS, FAST_CAS, cache_dir)
    # The second sweep over the same cache must be compute-free for the
    # compile/profile stages and still produce the same bytes.
    driver = ParallelDriver(jobs=2, cache_dir=cache_dir)
    result = driver.sweep(FAST_WORKLOADS, FAST_CAS)
    assert result.artifacts() == first
    assert result.cache_stats.misses.get("module", 0) == 0
    assert result.cache_stats.misses.get("train-run", 0) == 0
    assert result.cache_stats.misses.get("ref-run", 0) == 0


def test_uncached_parallel_matches_cached_serial(tmp_path):
    assert _artifacts(2, FAST_WORKLOADS, FAST_CAS) == _artifacts(
        1, FAST_WORKLOADS, FAST_CAS, tmp_path
    )


@pytest.mark.slow
def test_full_sweep_parallel_matches_serial(tmp_path):
    """The acceptance check: jobs=4 vs jobs=1 over every seed workload."""
    cas = (0.0, 0.97, 1.0)
    serial = _artifacts(1, WORKLOAD_NAMES, cas, tmp_path / "serial")
    parallel = _artifacts(4, WORKLOAD_NAMES, cas, tmp_path / "parallel")
    assert parallel == serial
