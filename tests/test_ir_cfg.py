"""Tests for CFG construction, traversal, dominators, and reducibility."""

from hypothesis import given, settings

from repro.ir import Cfg, ENTRY, EXIT, IRBuilder

from conftest import random_cfgs


def diamond() -> Cfg:
    return Cfg(
        edges=[
            (ENTRY, "a"),
            ("a", "b"),
            ("a", "c"),
            ("b", "d"),
            ("c", "d"),
            ("d", EXIT),
        ]
    )


def loop_cfg() -> Cfg:
    return Cfg(
        edges=[
            (ENTRY, "head"),
            ("head", "body"),
            ("body", "head"),
            ("head", "tail"),
            ("tail", EXIT),
        ]
    )


def irreducible_cfg() -> Cfg:
    """The classic two-entry loop: a->b, a->c, b<->c."""
    return Cfg(
        edges=[
            (ENTRY, "a"),
            ("a", "b"),
            ("a", "c"),
            ("b", "c"),
            ("c", "b"),
            ("b", EXIT),
        ]
    )


class TestConstruction:
    def test_virtual_vertices_always_present(self):
        cfg = Cfg()
        assert ENTRY in cfg and EXIT in cfg

    def test_parallel_edges_collapse(self):
        cfg = Cfg()
        cfg.add_edge("a", "b")
        cfg.add_edge("a", "b")
        assert cfg.succs("a") == ("b",)

    def test_succs_preds_symmetry(self):
        cfg = diamond()
        for u, v in cfg.edges:
            assert v in cfg.succs(u)
            assert u in cfg.preds(v)

    def test_from_function_adds_entry_and_exit_edges(self):
        b = IRBuilder("f")
        b.block("start")
        b.branch("c", "left", "right")
        b.block("left")
        b.ret()
        b.block("right")
        b.ret()
        cfg = Cfg.from_function(b.finish())
        assert cfg.succs(ENTRY) == ("start",)
        assert set(cfg.preds(EXIT)) == {"left", "right"}

    def test_real_vertices_excludes_virtual(self):
        assert set(diamond().real_vertices()) == {"a", "b", "c", "d"}


class TestTraversal:
    def test_dfs_preorder_starts_at_entry(self):
        order = diamond().dfs_preorder()
        assert order[0] == ENTRY
        assert set(order) == {ENTRY, "a", "b", "c", "d", EXIT}

    def test_reachable_excludes_disconnected(self):
        cfg = diamond()
        cfg.add_vertex("orphan")
        assert "orphan" not in cfg.reachable()

    def test_retreating_edges_of_loop(self):
        assert loop_cfg().retreating_edges() == (("body", "head"),)

    def test_acyclic_graph_has_no_retreating_edges(self):
        assert diamond().retreating_edges() == ()

    def test_is_acyclic_without(self):
        cfg = loop_cfg()
        assert not cfg.is_acyclic_without([])
        assert cfg.is_acyclic_without([("body", "head")])


class TestDominators:
    def test_diamond_idoms(self):
        idom = diamond().immediate_dominators()
        assert idom["d"] == "a"
        assert idom["b"] == "a"
        assert idom["a"] == ENTRY
        assert idom[ENTRY] == ENTRY

    def test_dominates(self):
        cfg = diamond()
        assert cfg.dominates("a", "d")
        assert not cfg.dominates("b", "d")
        assert cfg.dominates(ENTRY, EXIT)

    def test_loop_header_dominates_body(self):
        assert loop_cfg().dominates("head", "body")


class TestReducibility:
    def test_natural_loop_is_reducible(self):
        assert loop_cfg().is_reducible()

    def test_diamond_is_reducible(self):
        assert diamond().is_reducible()

    def test_two_entry_loop_is_irreducible(self):
        assert not irreducible_cfg().is_reducible()


class TestRandomGraphProperties:
    @given(random_cfgs())
    @settings(max_examples=60, deadline=None)
    def test_removing_retreating_edges_acyclifies(self, cfg):
        assert cfg.is_acyclic_without(cfg.retreating_edges())

    @given(random_cfgs())
    @settings(max_examples=60, deadline=None)
    def test_every_vertex_reachable(self, cfg):
        # The generator promises a connected routine-shaped graph.
        assert cfg.reachable() == set(cfg.vertices)

    @given(random_cfgs())
    @settings(max_examples=60, deadline=None)
    def test_entry_dominates_everything(self, cfg):
        idom = cfg.immediate_dominators()
        for v in cfg.vertices:
            assert cfg.dominates(cfg.entry, v), v
        assert set(idom) == set(cfg.vertices)

    @given(random_cfgs())
    @settings(max_examples=40, deadline=None)
    def test_dfs_preorder_deterministic(self, cfg):
        assert cfg.dfs_preorder() == cfg.dfs_preorder()


class TestNaturalLoops:
    def test_simple_loop_body(self):
        loops = loop_cfg().natural_loops()
        assert loops == {("body", "head"): frozenset({"head", "body"})}

    def test_nested_loops(self):
        cfg = Cfg(
            edges=[
                (ENTRY, "h1"),
                ("h1", "h2"),
                ("h2", "b"),
                ("b", "h2"),
                ("h2", "t1"),
                ("t1", "h1"),
                ("h1", EXIT),
            ]
        )
        loops = cfg.natural_loops()
        inner = loops[("b", "h2")]
        outer = loops[("t1", "h1")]
        assert inner == frozenset({"h2", "b"})
        assert inner < outer
        assert outer == frozenset({"h1", "h2", "b", "t1"})

    def test_irreducible_retreating_edge_excluded(self):
        loops = irreducible_cfg().natural_loops()
        # b <-> c: neither header dominates the other's latch.
        assert loops == {}

    def test_acyclic_graph_has_no_loops(self):
        assert diamond().natural_loops() == {}
